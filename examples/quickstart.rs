//! Quickstart: the full Figure 1 interaction in ~100 lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use privacy_aware_buildings::prelude::*;
use tippers_policy::BuildingPolicy;

fn main() {
    let ontology = Ontology::standard();

    // A simulated Donald Bren Hall with a small population.
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            population: Population::small(),
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();

    // (1) The admin defines policies in TIPPERS.
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
            .with_setting(BuildingPolicy::location_setting()),
    );
    register_service(&mut bms, &Concierge::new());
    println!("(1) admin defined {} policies", bms.policies().len());

    // (2)–(3) Sensors capture data; TIPPERS stores what is authorized.
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 11, 0));
    let (stored, dropped) = bms.ingest(&trace.observations);
    println!("(2-3) ingested a morning: stored {stored} rows, dropped {dropped}");

    // (4) Policies are published through an IoT Resource Registry.
    let mut bus = DiscoveryBus::new(NetworkConfig::default());
    let irr = bus.add_registry("DBH IRR", building.building);
    let published = bms
        .publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0))
        .expect("publish");
    println!("(4) published {published} machine-readable policies to the IRR");

    // Mary, a privacy-conscious grad student, walks in with her IoTA.
    let mary = sim
        .occupants()
        .iter()
        .find(|o| o.group == UserGroup::GradStudent)
        .map(|o| o.user)
        .expect("a grad student");
    let mut iota = Iota::new(
        mary,
        UserGroup::GradStudent,
        SensitivityProfile::fundamentalist(&ontology),
    );

    // (5) Her IoTA discovers nearby registries and fetches policies.
    let now = Timestamp::at(0, 11, 0);
    let ads = iota.poll(&bus, &building.model, building.offices[0], now);
    println!("(5) IoTA discovered {} advertisement(s)", ads.len());

    // (6)–(7) It notifies her about the practices she cares about.
    for note in iota.review(&ads, &ontology, now) {
        println!("(6) notification: {} — {}", note.title, note.body);
    }

    // (8) It configures her privacy settings with TIPPERS.
    let created = iota.configure(&mut bms).expect("settings apply");
    println!(
        "(8) IoTA configured {} setting(s) on Mary's behalf",
        created.len()
    );

    // (9)–(10) A service asks for Mary's location; enforcement answers.
    let concierge = Concierge::new();
    match concierge.nearest(&mut bms, mary, RoomUse::Kitchen, now) {
        Ok(d) => println!("(9-10) concierge: {}", d.path.describe(&building.model)),
        Err(e) => println!("(9-10) concierge refused: {e}"),
    }

    // The mandatory emergency policy still works, and Mary is notified.
    let emergency = EmergencyResponse::new();
    let roster = emergency.muster(&mut bms, None, now);
    println!(
        "      emergency muster located {} occupant(s), {} unaccounted",
        roster.located.len(),
        roster.unaccounted.len()
    );
    for note in bms.take_notifications(mary) {
        println!("      IoTA inbox: {}", note.text);
    }
}
