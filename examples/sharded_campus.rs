//! Sharded campus: DBH's enforcement state partitioned across 8
//! crash-isolated shards, one of which is killed mid-load.
//!
//! ```bash
//! cargo run --example sharded_campus
//! ```
//!
//! The walk-through: stand DBH up on an 8-shard runtime, drive a
//! morning of sensor traffic and service requests, inject a panic into
//! one shard's worker, and watch the router fail *closed* for that
//! shard's occupants — audited `ShardUnavailable` denials, zero effect
//! on the other seven shards — until the supervisor rebuilds the shard
//! from its WAL partition and service resumes byte-identically.

use privacy_aware_buildings::prelude::*;
use tippers::{DecisionBasis, FaultPoint, HealthStatus, Priority};
use tippers_policy::{ActionSet, BuildingPolicy};

fn request_for(user: UserId, ontology: &Ontology, now: Timestamp) -> DataRequest {
    let c = ontology.concepts().clone();
    DataRequest {
        service: ServiceId::new("Concierge"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(user),
        from: Timestamp::at(0, 0, 0),
        to: now,
        requester_space: None,
        priority: Priority::Interactive,
        deadline: None,
    }
}

fn main() {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            population: Population::small(),
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let c = ontology.concepts().clone();

    // DBH on 8 crash-isolated shards, each owning its slice of the
    // (zone, user-id hash) keyspace: store, enforcer, and quota state.
    let mut bms = ShardedTippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards: 8,
            ..ShardSpec::default()
        },
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Network logging",
            building.building,
            c.wifi_association,
            c.logging,
        )
        .with_actions(ActionSet::ALL),
    );
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    println!(
        "(1) DBH on {} shards, {} occupants, {} policies",
        bms.shard_count(),
        sim.occupants().len(),
        bms.policies().len()
    );

    // A morning of sensor load: every up shard observes the full batch
    // (sensing is global), but stores only the observations it owns.
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 11, 0));
    let (stored, dropped) = bms.ingest(&trace.observations);
    println!("(2) ingested a morning: stored {stored} rows, dropped {dropped}");

    // Pick a victim occupant and note which shard owns them.
    let victim = sim.occupants()[0].user;
    let victim_shard = bms.shard_of_user(victim);
    let bystander = sim
        .occupants()
        .iter()
        .map(|o| o.user)
        .find(|&u| bms.shard_of_user(u) != victim_shard)
        .expect("another shard owns someone");
    let now = Timestamp::at(0, 11, 5);
    let healthy = bms.handle_request(&request_for(victim, &ontology, now), now);
    println!(
        "(3) shard {victim_shard} owns user {}: {} records released pre-crash",
        victim.0,
        healthy.results[0].records.len()
    );

    // Kill that shard mid-load: the next job it executes panics. The
    // panic is caught at the shard boundary — the worker dies, the
    // supervisor quarantines the shard, and nothing else is touched.
    bms.config_fault_plan()
        .arm_limited(FaultPoint::ShardPanic, 1.0, 1);
    let denied = bms.handle_request(&request_for(victim, &ontology, now), now);
    assert_eq!(
        denied.results[0].decision.basis,
        DecisionBasis::ShardUnavailable
    );
    println!(
        "(4) injected a panic into shard {victim_shard}: user {} now fails \
         closed (audited ShardUnavailable denial, {} router-audit entries)",
        victim.0,
        bms.router_audit().entries().len()
    );

    // Blast radius is zero: every other shard keeps answering normally.
    let unaffected = bms.handle_request(&request_for(bystander, &ontology, now), now);
    assert_ne!(
        unaffected.results[0].decision.basis,
        DecisionBasis::ShardUnavailable
    );
    println!(
        "(5) user {} on shard {} is unaffected: {} records released while \
         shard {victim_shard} is down",
        bystander.0,
        bms.shard_of_user(bystander),
        unaffected.results[0].records.len()
    );

    // One second later the supervisor's backoff has elapsed: the shard
    // is rebuilt from its WAL partition and service resumes.
    let later = now + 1;
    let recovered = bms.handle_request(&request_for(victim, &ontology, later), later);
    assert_eq!(
        recovered.results[0].records.len(),
        healthy.results[0].records.len()
    );
    let stats = bms.stats();
    println!(
        "(6) shard {victim_shard} rebuilt from its WAL: {} records released \
         again ({} panic, {} restart, {} fail-closed denial, recovery took \
         {}us)",
        recovered.results[0].records.len(),
        stats.panics,
        stats.restarts,
        stats.unavailable_denials,
        bms.recovery_times_us()[0]
    );
    assert_eq!(bms.health(), HealthStatus::Healthy);
    println!("(7) health: all {} shards up", bms.shard_count());
}
