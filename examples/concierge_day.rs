//! A day with the building services: the Smart Concierge, Smart Meeting
//! and the third-party food-delivery company serve occupants with
//! different privacy preferences (§III.B's motivating workloads).
//!
//! ```bash
//! cargo run --example concierge_day
//! ```

use privacy_aware_buildings::prelude::*;
use tippers_policy::{PreferenceId, PreferenceScope, UserPreference};

fn main() {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 2024,
            population: Population {
                staff: 8,
                faculty: 8,
                grads: 12,
                undergrads: 10,
                visitors: 2,
            },
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());

    // Building policies + all four services.
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    register_service(&mut bms, &EmergencyResponse::new());
    register_service(&mut bms, &Concierge::new());
    register_service(&mut bms, &SmartMeeting::new(building.meeting_rooms.clone()));
    register_service(&mut bms, &FoodDelivery::new());

    // Three occupants, three privacy stances.
    let users: Vec<UserId> = sim.occupants().iter().map(|o| o.user).collect();
    let (open_olivia, private_pete, pragmatic_pam) = (users[0], users[1], users[2]);
    let c = ontology.concepts().clone();
    let t0 = Timestamp::at(0, 9, 0);

    // Pete opts out of location entirely but grants the Concierge
    // (Preferences 2 + 3).
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), private_pete, &ontology),
        t0,
    );
    bms.submit_preference(
        catalog::preference3_concierge_location(PreferenceId(0), private_pete, &ontology),
        t0,
    );
    // Pam shares location at floor granularity only.
    bms.submit_preference(
        catalog::preference_coarse_location(
            PreferenceId(0),
            pragmatic_pam,
            Granularity::Floor,
            &ontology,
        ),
        t0,
    );
    // Olivia opts in to lunch delivery.
    bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            open_olivia,
            PreferenceScope {
                data: Some(c.location),
                service: Some(catalog::services::food_delivery()),
                ..Default::default()
            },
            Effect::Allow,
        )
        .with_priority(10),
        t0,
    );

    // Run the morning and ingest.
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 12, 0));
    let (stored, dropped) = bms.ingest(&trace.observations);
    println!("morning ingest: {stored} stored / {dropped} dropped");

    let noon = Timestamp::at(0, 12, 0);
    let concierge = Concierge::new();
    for (name, user) in [
        ("Olivia (open)", open_olivia),
        ("Pete (private)", private_pete),
        ("Pam (coarse)", pragmatic_pam),
    ] {
        match concierge.nearest(&mut bms, user, RoomUse::Kitchen, noon) {
            Ok(d) => println!(
                "{name}: directions at {} granularity, {} hops",
                d.location_granularity,
                d.path.hops()
            ),
            Err(e) => println!("{name}: concierge refused — {e}"),
        }
    }

    // Lunch delivery.
    let delivery = FoodDelivery::new();
    for (name, user) in [("Olivia", open_olivia), ("Pete", private_pete)] {
        println!(
            "{name}'s lunch: {:?}",
            delivery.deliver_lunch(&mut bms, user, noon)
        );
    }

    // Meeting scheduling: Olivia grants Preference 4, Pete does not.
    bms.submit_preference(
        catalog::preference4_smart_meeting(PreferenceId(0), open_olivia, &ontology),
        noon,
    );
    let meeting = SmartMeeting::new(building.meeting_rooms.clone());
    match meeting.schedule(&mut bms, &[open_olivia, private_pete], noon) {
        Ok(p) => println!(
            "meeting in {} at {}: confirmed {:?}, unconfirmed {:?}",
            building.model.space(p.room).name(),
            p.start,
            p.confirmed,
            p.unconfirmed
        ),
        Err(e) => println!("meeting failed: {e}"),
    }

    // Policy 1's HVAC loop.
    let active = bms
        .thermostat_commands(&building.floors, noon)
        .into_iter()
        .filter(|cmd| cmd.active)
        .count();
    println!(
        "HVAC active on {active} of {} floors",
        building.floors.len()
    );
}
