//! The building admin's workflow (Figure 1, steps 1 and 4): author a
//! policy, validate its machine-readable form, publish it, and watch the
//! MUD pipeline auto-register every deployed sensor.
//!
//! ```bash
//! cargo run --example policy_authoring
//! ```

use privacy_aware_buildings::prelude::*;
use tippers_irr::{advertise_device, MudProfile};
use tippers_policy::{
    validate_document, BuildingPolicy, Modality, PolicyCodec, PolicyId, Severity, Timestamp,
};
use tippers_sensors::{deploy, DeploymentConfig};

fn main() {
    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts();

    // 1. Author a policy in the normalized form.
    let policy = BuildingPolicy::new(
        PolicyId(0),
        "Camera surveillance in corridors",
        building.building,
        c.image,
        c.surveillance,
    )
    .with_description("Corridor cameras record footage for building security")
    .with_sensor_class(c.camera)
    .with_retention("P90D".parse().expect("valid duration"))
    .with_modality(Modality::Required);

    // 2. Export it to the wire format and validate before advertising.
    let codec = PolicyCodec::new(&ontology, &building.model);
    let document = codec.to_document(&policy);
    println!(
        "wire form:\n{}\n",
        serde_json::to_string_pretty(&document).expect("serializable")
    );
    let issues = validate_document(&document);
    if issues.is_empty() {
        println!("validator: clean");
    }
    for issue in &issues {
        println!("validator: {issue}");
    }
    assert!(issues.iter().all(|i| i.severity < Severity::Error));

    // 3. Publish through the BMS and an IRR.
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.add_policy(policy);
    let mut bus = DiscoveryBus::new(NetworkConfig::default());
    let irr = bus.add_registry("DBH IRR", building.building);
    let published = bms
        .publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0))
        .expect("publish");
    println!("\npublished {published} admin-authored policy document(s)");

    // 4. MUD auto-registration (§V.B): every deployed device advertises its
    // own manufacturer-declared practices without manual authoring.
    let devices = deploy(&building, &ontology, &DeploymentConfig::default());
    let profiles = MudProfile::standard_profiles(&ontology);
    let mut auto = 0;
    for device in devices.iter() {
        if let Some(profile) = MudProfile::for_device(&profiles, device) {
            let doc = advertise_device(profile, device, &ontology, &building.model);
            bus.registry_mut(irr)
                .unwrap()
                .publish(doc, device.space, Timestamp::at(0, 8, 0), 86_400)
                .expect("MUD documents are always advertisable");
            auto += 1;
        }
    }
    println!(
        "auto-registered {auto} of {} deployed devices via MUD profiles",
        devices.len()
    );

    // 5. What a user standing in an office would now discover.
    let (found, _) = bus.discover(&building.model, building.offices[0]);
    let (ads, _) = bus
        .fetch_near(
            found[0],
            &building.model,
            building.offices[0],
            Timestamp::at(0, 9, 0),
        )
        .expect("lossless fetch");
    println!(
        "an IoTA in {} sees {} advertisement(s) relevant to its vicinity",
        building.model.space(building.offices[0]).name(),
        ads.len()
    );
}
