//! The §II.A inference attack, end to end: an attacker holding the WiFi
//! log infers occupant locations, roles, and (with public schedules)
//! identities — and privacy enforcement degrades each inference.
//!
//! ```bash
//! cargo run --release --example inference_attack
//! ```

use std::collections::HashMap;

use privacy_aware_buildings::prelude::*;
use tippers_policy::PreferenceId;
use tippers_sensors::attack::{wifi_log, Attacker};
use tippers_sensors::{DeploymentConfig, MacAddress};

fn run(scenario: &str, opt_out_fraction: f64) {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 7,
            population: Population {
                staff: 10,
                faculty: 10,
                grads: 15,
                undergrads: 15,
                visitors: 0,
            },
            tick_secs: 900,
            deployment: DeploymentConfig {
                cameras: 0,
                wifi_aps: 240,
                beacons: 0,
                power_meters: 0,
                motion_everywhere: false,
                hvac_per_floor: false,
                badge_readers: false,
            },
            identify_probability: 0.0,
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));

    // A fraction of occupants opt out of location capture; their MACs are
    // suppressed at the devices themselves.
    let occupants: Vec<_> = sim.occupants().to_vec();
    let n_opt_out = (occupants.len() as f64 * opt_out_fraction) as usize;
    for o in occupants.iter().take(n_opt_out) {
        bms.submit_preference(
            catalog::preference2_no_location(PreferenceId(0), o.user, &ontology),
            Timestamp::at(0, 0, 0),
        );
    }
    bms.sync_capture_settings(&mut sim);

    // One simulated work week.
    let trace = sim.run_days(5);

    // The attacker gets exactly the WiFi log plus public knowledge.
    let log = wifi_log(&trace.observations);
    let c = ontology.concepts();
    let ap_locations: HashMap<_, _> = sim
        .devices()
        .of_class(c.wifi_ap)
        .into_iter()
        .map(|id| (id, sim.devices().get(id).unwrap().space))
        .collect();
    let model = building.model.clone();
    let attacker = Attacker::new(log, ap_locations, &model);

    // Score the three inferences against ground truth.
    let mac_of: HashMap<UserId, MacAddress> = occupants.iter().map(|o| (o.user, o.mac)).collect();
    let mut room_hits = 0usize;
    let mut samples = 0usize;
    for g in trace.ground_truth.iter().step_by(41) {
        samples += 1;
        if attacker.locate(mac_of[&g.user], g.time, 1800) == Some(g.space) {
            room_hits += 1;
        }
    }
    let mut role_hits = 0usize;
    let mut role_total = 0usize;
    for o in &occupants {
        if let Some(guess) = attacker.infer_role(o.mac) {
            role_total += 1;
            if guess.group == o.group {
                role_hits += 1;
            }
        }
    }
    let links = attacker.link_identities(sim.teaching_schedule(), 2);
    let correct_links = links
        .iter()
        .filter(|(mac, user)| occupants.iter().any(|o| o.mac == **mac && o.user == **user))
        .count();

    println!(
        "=== {scenario} (opt-out: {:.0}%) ===",
        opt_out_fraction * 100.0
    );
    println!(
        "  location: {:.1}% of samples located to the exact room",
        100.0 * room_hits as f64 / samples.max(1) as f64
    );
    println!(
        "  role:     {}/{} occupants classified, {:.1}% correctly",
        role_total,
        occupants.len(),
        100.0 * role_hits as f64 / role_total.max(1) as f64
    );
    println!(
        "  identity: {} MAC(s) linked to names, {} correctly",
        links.len(),
        correct_links
    );
}

fn main() {
    println!("Reproducing the paper's §II.A threat analysis:\n");
    run("no protection", 0.0);
    run("half the building opts out", 0.5);
    run("everyone opts out", 1.0);
    println!("\nCapture-time suppression removes opted-out occupants from the");
    println!("log entirely, collapsing all three inferences for them.");
}
