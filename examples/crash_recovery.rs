//! Crash recovery: a durable BMS survives a torn write.
//!
//! ```bash
//! cargo run --example crash_recovery
//! ```
//!
//! A BMS opened with [`Tippers::open`] journals every mutation to a
//! write-ahead log on disk. This example ingests a morning of sensor
//! data, records an occupant's opt-out, then injects a torn append (the
//! classic power-loss-mid-write failure) and "crashes". Reopening the
//! same directory replays the log: the preferences and the stored rows
//! are intact, the torn tail is truncated and counted — never silently
//! accepted — and the opted-out occupant is still denied.

use privacy_aware_buildings::prelude::*;
use tippers::{FaultPlan, FaultPoint};
use tippers_policy::{ActionSet, BuildingPolicy, DataAction, PreferenceScope, UserPreference};

fn occupancy_analytics_policy(
    building: tippers_spatial::SpaceId,
    ontology: &Ontology,
) -> BuildingPolicy {
    let c = ontology.concepts();
    BuildingPolicy::new(
        PolicyId(0),
        "Occupancy analytics",
        building,
        c.occupancy,
        c.analytics,
    )
    .with_actions(ActionSet::of(&[DataAction::Store, DataAction::Share]))
}

fn main() {
    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let dir = std::env::temp_dir().join(format!("tippers-crash-recovery-{}", std::process::id()));

    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 11,
            population: Population::small(),
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    let opted_out = occupants[0].user;

    // The fault plan is shared with the BMS so we can arm the torn write
    // later, mid-run.
    let plan = FaultPlan::seeded(11);
    let (mut bms, report) = Tippers::open(
        &dir,
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            fault_plan: plan.clone(),
            ..TippersConfig::default()
        },
    )
    .expect("fresh log opens");
    assert_eq!(report.records_replayed, 0);
    println!("(1) opened durable BMS at {}", dir.display());

    // Admin config (re-applied on every start), then logged mutations:
    // two policies, one opt-out, and a morning of observations.
    bms.register_occupants(&occupants);
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(occupancy_analytics_policy(building.building, &ontology));
    bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            opted_out,
            PreferenceScope {
                data: Some(c.occupancy),
                ..Default::default()
            },
            Effect::Deny,
        ),
        Timestamp::at(0, 7, 0),
    );
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 10, 0));
    let (stored, _) = bms.ingest(&trace.observations);
    let rows_before = bms.store().len();
    let prefs_before = bms.preferences().len();
    println!("(2) stored {stored} rows, recorded {prefs_before} preference(s)");

    let request = DataRequest {
        service: catalog::services::smart_meeting(),
        purpose: c.analytics,
        data: c.occupancy,
        subjects: SubjectSelector::One(opted_out),
        from: Timestamp::at(0, 8, 0),
        to: Timestamp::at(0, 10, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let now = Timestamp::at(0, 10, 30);
    let before = bms.handle_request(&request, now);
    assert_eq!(before.results[0].decision.effect, Effect::Deny);
    println!("(3) pre-crash: opted-out occupant is denied");

    // Power fails mid-append: the next ingest's record reaches the disk
    // only partially, and the process dies before anyone notices.
    plan.arm_limited(FaultPoint::WalAppendTorn, 1.0, 1);
    let lost = sim.run_until(Timestamp::at(0, 10, 15));
    bms.ingest(&lost.observations);
    drop(bms);
    println!("(4) crash! the last ingest tore mid-write");

    // Restart: replay the log with a clean fault plan.
    let (mut recovered, report) = Tippers::open(
        &dir,
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    )
    .expect("recovery never errors on a torn log");
    recovered.register_occupants(&occupants);
    println!(
        "(5) recovered: {} records replayed, {} torn tail(s) truncated ({} bytes discarded)",
        report.records_replayed, report.truncated_tails, report.bytes_discarded
    );
    assert_eq!(report.truncated_tails, 1, "the torn tail was detected");
    assert_eq!(recovered.wal_truncations(), 1);
    assert_eq!(
        recovered.store().len(),
        rows_before,
        "every pre-crash row survived; only the torn batch is gone"
    );
    assert_eq!(recovered.preferences().len(), prefs_before);

    let after = recovered.handle_request(&request, now);
    assert_eq!(
        after.results[0].decision.effect,
        Effect::Deny,
        "the opt-out still denies after recovery"
    );
    println!("(6) post-crash: preferences intact, occupant still denied");

    std::fs::remove_dir_all(&dir).ok();
}
