//! Policy/preference conflict audit: load the paper's Figures 2–4, express
//! all eight worked examples, run the reasoner, and print the audit trail
//! (§III.B and §V.A).
//!
//! ```bash
//! cargo run --example conflict_audit
//! ```

use privacy_aware_buildings::prelude::*;
use tippers_policy::{
    conflict, figures, validate_document, BuildingPolicy, PolicyCodec, PreferenceId,
};

fn main() {
    let ontology = Ontology::standard();
    let building = dbh();

    // Parse and validate the paper's own JSON listings.
    println!("== the paper's figures, parsed ==");
    let fig2 = figures::fig2_document();
    println!(
        "figure 2: `{}`, retention {}",
        fig2.resources[0].info.name,
        fig2.resources[0].retention.unwrap().duration
    );
    for issue in validate_document(&fig2) {
        println!("  validator: {issue}");
    }
    let fig3 = figures::fig3_document();
    println!(
        "figure 3: service `{}` with {} observation(s)",
        fig3.purpose.service_id.as_deref().unwrap_or("?"),
        fig3.observations.len()
    );
    let fig4 = figures::fig4_document();
    println!(
        "figure 4: {} location-sensing option(s)",
        fig4.settings[0].select.len()
    );

    // Import Figure 2 into a normalized policy and set up the catalog.
    let codec = PolicyCodec::new(&ontology, &building.model);
    let imported = codec.from_document(&fig2, 100).expect("imports");
    println!(
        "\nfigure 2 imports as: required={} data={} purpose={}",
        imported[0].is_required(),
        ontology.data.key_of(imported[0].data),
        ontology.purposes.key_of(imported[0].purpose),
    );

    let policies: Vec<BuildingPolicy> = vec![
        catalog::policy1_thermostat(PolicyId(1), building.building, &ontology),
        catalog::policy2_emergency_location(PolicyId(2), building.building, &ontology),
        catalog::policy3_meeting_room_access(
            PolicyId(3),
            building.building,
            building.meeting_rooms.clone(),
            &ontology,
        ),
        catalog::policy4_event_proximity(PolicyId(4), vec![building.lobby], &ontology),
    ];
    let mary = UserId(1);
    let preferences = vec![
        catalog::preference1_afterhours_occupancy(
            PreferenceId(1),
            mary,
            building.offices[0],
            &ontology,
        ),
        catalog::preference2_no_location(PreferenceId(2), mary, &ontology),
        catalog::preference3_concierge_location(PreferenceId(3), mary, &ontology),
        catalog::preference4_smart_meeting(PreferenceId(4), mary, &ontology),
    ];

    println!("\n== conflict analysis (policies 1-4 x preferences 1-4) ==");
    for strategy in [
        ResolutionStrategy::PolicyPrevails,
        ResolutionStrategy::PreferencePrevails,
        ResolutionStrategy::Strictest,
    ] {
        let found = conflict::detect_conflicts_naive(
            &policies,
            &preferences,
            &ontology,
            &building.model,
            strategy,
        );
        println!("strategy {strategy:?}: {} conflict(s)", found.len());
        for c in &found {
            println!(
                "  {} vs {} ({:?}) -> enforce {:?}",
                c.policy, c.preference, c.kind, c.resolved_effect
            );
            println!("    notice: {}", c.notice);
        }
    }

    // Live enforcement trail under the default strategy.
    println!("\n== live audit trail ==");
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    for p in policies {
        bms.add_policy(p);
    }
    register_service(&mut bms, &Concierge::new());
    for p in preferences {
        bms.submit_preference(p, Timestamp::at(0, 9, 0));
    }
    let c = ontology.concepts();
    let _ = bms.locate(
        catalog::services::concierge(),
        c.navigation,
        mary,
        Timestamp::at(0, 12, 0),
    );
    let _ = bms.locate(
        catalog::services::emergency(),
        c.emergency_response,
        mary,
        Timestamp::at(0, 12, 0),
    );
    for e in bms.audit().entries() {
        println!(
            "  {} {} {} -> {:?} ({:?})",
            e.time,
            e.service
                .as_ref()
                .map_or("<internal>", tippers_policy::ServiceId::as_str),
            ontology.data.key_of(e.data),
            e.effect,
            e.basis
        );
    }
    for n in bms.take_notifications(mary) {
        println!("  notification to Mary: {}", n.text);
    }
}
