//! Retention GC, retroactive purges, and noise injection — the remaining
//! §V.C enforcement *whens* and *hows*.

use privacy_aware_buildings::prelude::*;
use tippers::{DataRequest, ReleasedValue, SubjectSelector};
use tippers_policy::{
    ActionSet, BuildingPolicy, PolicyId, PreferenceId, PreferenceScope, Timestamp, UserPreference,
};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload};

fn bms_with_power_data() -> (Tippers, UserId, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let c = ontology.concepts().clone();
    let user = UserId(1);
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Energy metering",
            building.building,
            c.power_consumption,
            c.energy_management,
        )
        .with_actions(ActionSet::ALL)
        .with_retention("P30D".parse().unwrap()),
    );
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Network logging",
            building.building,
            c.wifi_association,
            c.logging,
        )
        .with_actions(ActionSet::ALL),
    );
    let mut observations = Vec::new();
    for hour in 9..17 {
        observations.push(Observation {
            device: DeviceId(0),
            timestamp: Timestamp::at(0, hour, 0),
            space: building.offices[0],
            payload: ObservationPayload::PowerReading { watts: 100.0 },
            subject: Some(user),
        });
        observations.push(Observation {
            device: DeviceId(1),
            timestamp: Timestamp::at(0, hour, 0),
            space: building.offices[0],
            payload: ObservationPayload::WifiAssociation {
                mac: MacAddress::for_user(1),
                ap: DeviceId(1),
            },
            subject: Some(user),
        });
    }
    let (stored, _) = bms.ingest(&observations);
    assert_eq!(stored, 16);
    (bms, user, building)
}

#[test]
fn noise_effect_perturbs_scalars_only() {
    let (mut bms, user, _building) = bms_with_power_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            user,
            PreferenceScope {
                data: Some(c.power_consumption),
                ..Default::default()
            },
            Effect::Noise { sigma: 10.0 },
        ),
        Timestamp::at(0, 8, 0),
    );
    let request = DataRequest {
        service: ServiceId::new("analytics"),
        purpose: c.energy_management,
        data: c.power_consumption,
        subjects: SubjectSelector::One(user),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let response = bms.handle_request(&request, Timestamp::at(0, 18, 0));
    let result = &response.results[0];
    assert!(result.decision.permits());
    assert_eq!(result.records.len(), 8);
    let values: Vec<f64> = result
        .records
        .iter()
        .map(|r| match r.value {
            ReleasedValue::Scalar(v) => v,
            ref other => panic!("expected scalar, got {other:?}"),
        })
        .collect();
    // All true readings are 100.0; noised releases must differ and vary.
    assert!(values.iter().any(|v| (v - 100.0).abs() > 0.5));
    let distinct = values
        .iter()
        .map(|v| (v * 1000.0) as i64)
        .collect::<std::collections::HashSet<_>>();
    assert!(distinct.len() > 1, "noise must vary across records");
    // Noise is bounded-ish: CLT gaussian with sigma 10 stays within ±60.
    assert!(values.iter().all(|v| (v - 100.0).abs() < 60.0));
}

#[test]
fn retroactive_purge_deletes_covered_rows() {
    let (mut bms, user, _building) = bms_with_power_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    assert_eq!(bms.store().len(), 16);
    let pref = bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            user,
            PreferenceScope {
                data: Some(c.power_consumption),
                ..Default::default()
            },
            Effect::Deny,
        ),
        Timestamp::at(0, 18, 0),
    );
    let purged = bms.apply_retroactively(pref);
    assert_eq!(purged, 8, "all power rows go; wifi rows stay");
    assert_eq!(bms.store().len(), 8);
}

#[test]
fn retroactive_purge_respects_mandatory_policies() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    // Policy 2 (required) governs wifi data.
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    let user = UserId(1);
    let obs = Observation {
        device: DeviceId(0),
        timestamp: Timestamp::at(0, 9, 0),
        space: building.offices[0],
        payload: ObservationPayload::WifiAssociation {
            mac: MacAddress::for_user(1),
            ap: DeviceId(0),
        },
        subject: Some(user),
    };
    bms.ingest(&[obs]);
    assert_eq!(bms.store().len(), 1);
    let ont = bms.ontology().clone();
    let pref = bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), user, &ont),
        Timestamp::at(0, 10, 0),
    );
    // The mandatory policy pins the log; nothing is purged.
    assert_eq!(bms.apply_retroactively(pref), 0);
    assert_eq!(bms.store().len(), 1);
}

#[test]
fn conditional_and_allow_preferences_never_purge() {
    let (mut bms, user, _building) = bms_with_power_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    // Conditional deny: not retroactively applicable.
    let conditional = bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            user,
            PreferenceScope {
                data: Some(c.power_consumption),
                condition: tippers_policy::Condition::during(
                    tippers_policy::TimeWindow::after_hours(),
                ),
                ..Default::default()
            },
            Effect::Deny,
        ),
        Timestamp::at(0, 18, 0),
    );
    assert_eq!(bms.apply_retroactively(conditional), 0);
    // Allow: nothing to purge.
    let allow = bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            user,
            PreferenceScope {
                data: Some(c.power_consumption),
                ..Default::default()
            },
            Effect::Allow,
        ),
        Timestamp::at(0, 18, 0),
    );
    assert_eq!(bms.apply_retroactively(allow), 0);
    assert_eq!(bms.store().len(), 16);
}

#[test]
fn different_retentions_expire_independently() {
    let (mut bms, _user, _building) = bms_with_power_data();
    // Power rows carry P30D; wifi rows carry none.
    let thirty_days = 30 * 86_400;
    assert_eq!(bms.gc(Timestamp(thirty_days - 1)), 0);
    assert_eq!(bms.gc(Timestamp(thirty_days + 86_400)), 8);
    assert_eq!(bms.store().len(), 8);
    // The remaining (unlimited-retention) rows survive arbitrarily long.
    assert_eq!(bms.gc(Timestamp(thirty_days * 100)), 0);
}
