//! Experiment E6: each of the paper's §III.B user preferences expressed
//! and enforced against live requests.

use privacy_aware_buildings::prelude::*;
use tippers::{DataRequest, SubjectSelector};
use tippers_policy::{ActionSet, BuildingPolicy, PolicyId, PreferenceId, Timestamp};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload};

/// A BMS whose store holds hand-crafted observations about two users, with
/// a full complement of policies so preferences (not missing
/// authorizations) decide outcomes.
fn bms_with_data() -> (Tippers, UserId, UserId, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let alice = UserId(1);
    let bob = UserId(2);
    let c = ontology.concepts().clone();

    // Policies: emergency location (required), an occupancy policy for the
    // comfort loop, and opt-out service policies for Concierge / Smart
    // Meeting sharing.
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Occupancy sensing",
            building.building,
            c.occupancy,
            c.comfort,
        )
        .with_actions(ActionSet::ALL),
    );
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Concierge location",
            building.building,
            c.location_room,
            c.navigation,
        )
        .with_actions(ActionSet::ALL)
        .with_service(catalog::services::concierge()),
    );
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Meeting data",
            building.building,
            c.meeting_details,
            c.scheduling,
        )
        .with_actions(ActionSet::ALL)
        .with_modality(tippers_policy::Modality::OptIn)
        .with_service(catalog::services::smart_meeting()),
    );

    // Observations: WiFi (location) rows for both users during the day and
    // after hours; motion (occupancy) rows in Alice's office.
    let office = building.offices[0];
    let mut observations = Vec::new();
    for (user, mac_seed) in [(alice, 1u64), (bob, 2u64)] {
        for hour in [10, 14, 22] {
            observations.push(Observation {
                device: DeviceId(0),
                timestamp: Timestamp::at(0, hour, 0),
                space: office,
                payload: ObservationPayload::WifiAssociation {
                    mac: MacAddress::for_user(mac_seed),
                    ap: DeviceId(0),
                },
                subject: Some(user),
            });
        }
    }
    for hour in [10, 22] {
        observations.push(Observation {
            device: DeviceId(1),
            timestamp: Timestamp::at(0, hour, 0),
            space: office,
            payload: ObservationPayload::Motion { detected: true },
            subject: Some(alice),
        });
    }
    let (stored, _) = bms.ingest(&observations);
    assert!(stored >= 8, "seed data stored, got {stored}");
    (bms, alice, bob, building)
}

fn occupancy_request(bms: &Tippers, user: UserId) -> DataRequest {
    let c = bms.ontology().concepts();
    DataRequest {
        service: catalog::services::concierge(),
        purpose: c.comfort,
        data: c.occupancy,
        subjects: SubjectSelector::One(user),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    }
}

/// Preference 1: "Do not share the occupancy status of my office in
/// after-hours" — daytime requests succeed, after-hours requests fail.
#[test]
fn preference1_after_hours_occupancy() {
    let (mut bms, alice, _bob, building) = bms_with_data();
    let ont = bms.ontology().clone();
    bms.submit_preference(
        catalog::preference1_afterhours_occupancy(
            PreferenceId(0),
            alice,
            building.offices[0],
            &ont,
        ),
        Timestamp::at(0, 9, 0),
    );
    let noon = bms.handle_request(&occupancy_request(&bms, alice), Timestamp::at(0, 12, 0));
    assert!(
        noon.results[0].decision.permits(),
        "daytime sharing allowed"
    );
    let night = bms.handle_request(&occupancy_request(&bms, alice), Timestamp::at(0, 22, 0));
    assert!(
        !night.results[0].decision.permits(),
        "after-hours sharing denied"
    );
}

/// Preference 2: "Do not share my location with anyone" — all services are
/// refused; only the mandatory emergency purpose still works.
#[test]
fn preference2_blanket_location_optout() {
    let (mut bms, alice, bob, _building) = bms_with_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), alice, &ont),
        Timestamp::at(0, 9, 0),
    );
    let now = Timestamp::at(0, 14, 30);
    // Alice: denied for the Concierge.
    assert!(bms
        .locate(catalog::services::concierge(), c.navigation, alice, now)
        .is_none());
    // Bob (no preference): allowed by the opt-out default.
    assert!(bms
        .locate(catalog::services::concierge(), c.navigation, bob, now)
        .is_some());
    // Alice is still locatable for emergencies (Policy 2 is mandatory).
    assert!(bms
        .locate(
            catalog::services::emergency(),
            c.emergency_response,
            alice,
            now
        )
        .is_some());
}

/// Preference 3: the Concierge exception over a blanket opt-out.
#[test]
fn preference3_concierge_exception() {
    let (mut bms, alice, _bob, _building) = bms_with_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), alice, &ont),
        Timestamp::at(0, 9, 0),
    );
    bms.submit_preference(
        catalog::preference3_concierge_location(PreferenceId(0), alice, &ont),
        Timestamp::at(0, 9, 0),
    );
    let now = Timestamp::at(0, 14, 30);
    // The Concierge gets her location for navigation...
    assert!(bms
        .locate(catalog::services::concierge(), c.navigation, alice, now)
        .is_some());
    // ...but the food-delivery third party does not.
    assert!(bms
        .locate(catalog::services::food_delivery(), c.delivery, alice, now)
        .is_none());
}

/// Preference 4: the Smart Meeting grant flips its opt-in policy.
#[test]
fn preference4_smart_meeting_grant() {
    let (mut bms, alice, _bob, _building) = bms_with_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    let meeting_request = DataRequest {
        service: catalog::services::smart_meeting(),
        purpose: c.scheduling,
        data: c.meeting_details,
        subjects: SubjectSelector::One(alice),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let now = Timestamp::at(0, 14, 0);
    // Opt-in policy, no grant: denied by default.
    let before = bms.handle_request(&meeting_request, now);
    assert!(!before.results[0].decision.permits());
    // After Preference 4: allowed.
    bms.submit_preference(
        catalog::preference4_smart_meeting(PreferenceId(0), alice, &ont),
        now,
    );
    let after = bms.handle_request(&meeting_request, now);
    assert!(after.results[0].decision.permits());
}

/// Degrade preferences produce degraded (never finer) locations.
#[test]
fn degrade_preference_coarsens_releases() {
    let (mut bms, alice, _bob, building) = bms_with_data();
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    bms.submit_preference(
        catalog::preference_coarse_location(PreferenceId(0), alice, Granularity::Floor, &ont),
        Timestamp::at(0, 9, 0),
    );
    let loc = bms
        .locate(
            catalog::services::concierge(),
            c.navigation,
            alice,
            Timestamp::at(0, 14, 30),
        )
        .expect("degraded location still flows");
    assert_eq!(loc.granularity, Granularity::Floor);
    let space = loc.space.expect("floor-level space");
    assert_eq!(
        building.model.space(space).kind(),
        tippers_spatial::SpaceKind::Floor
    );
}

/// Conflict notification: submitting Preference 2 against mandatory
/// Policy 2 informs the user immediately (§III.B).
#[test]
fn conflicting_preference_notifies_on_submission() {
    let (mut bms, alice, _bob, _building) = bms_with_data();
    let ont = bms.ontology().clone();
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), alice, &ont),
        Timestamp::at(0, 9, 0),
    );
    let notes = bms.take_notifications(alice);
    assert_eq!(notes.len(), 1);
    assert!(notes[0].text.contains("mandatory"));
    // And the conflict is visible to the reasoner.
    assert_eq!(bms.detect_conflicts().len(), 1);
}
