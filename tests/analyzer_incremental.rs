//! WAL-driven incremental re-linting: the settings-mutation tail that
//! `tippers::InvalidationTail` derives from log records names exactly
//! the units the analyzer must re-check, and the incrementally spliced
//! report always matches a full re-analysis of the mutated deployment.

use proptest::prelude::*;
use tippers::{InvalidationTail, SettingsMutation, WalRecord};
use tippers_analyzer::{analyze, Analyzer, DeploymentCorpus, UnitId};
use tippers_ontology::Ontology;
use tippers_policy::{
    ActionSet, BuildingPolicy, Effect, PolicyId, PreferenceId, PreferenceScope, Timestamp, UserId,
    UserPreference,
};
use tippers_spatial::fixtures;

/// Maps a core-vocabulary mutation onto the analyzer's unit space.
fn unit(m: SettingsMutation) -> UnitId {
    match m {
        SettingsMutation::Everything => UnitId::Global,
        SettingsMutation::Policy(id) => UnitId::Policy(id.0),
        SettingsMutation::Preference(id) => UnitId::Preference(id.0),
    }
}

/// Mirrors a WAL record onto the linted corpus, using the tail's
/// allocator-derived ids (the record payloads carry pre-assignment ids).
fn apply(corpus: &mut DeploymentCorpus, record: &WalRecord, muts: &[SettingsMutation]) {
    match (record, muts) {
        (WalRecord::AddPolicy { policy }, [SettingsMutation::Policy(id)]) => {
            let mut p = policy.clone();
            p.id = *id;
            corpus.policies.push(p);
        }
        (WalRecord::RemovePolicy { policy }, _) => {
            corpus.policies.retain(|p| p.id != *policy);
        }
        (WalRecord::SubmitPreference { preference, .. }, [SettingsMutation::Preference(id)]) => {
            let mut a = preference.clone();
            a.id = *id;
            corpus.preferences.push(a);
        }
        // Setting choices and retroactive purges dirty a unit without
        // changing the deployment spec — the analyzer must tolerate the
        // over-approximate invalidation.
        _ => {}
    }
}

#[test]
fn a_wal_tail_drives_incremental_relint() {
    let dbh = fixtures::dbh();
    let corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model.clone());
    let c = corpus.ontology.concepts().clone();
    let mut analyzer = Analyzer::new(corpus.clone());
    let mut mirror = corpus;
    let mut tail = InvalidationTail::new();

    let sharing = {
        let mut p = BuildingPolicy::new(
            PolicyId(999),
            "WiFi share",
            dbh.building,
            c.wifi_association,
            c.emergency_response,
        );
        p.actions = ActionSet::ALL;
        p
    };
    let records = vec![
        WalRecord::AddPolicy {
            policy: BuildingPolicy::new(
                PolicyId(999),
                "Comfort sensing",
                dbh.building,
                c.occupancy,
                c.comfort,
            ),
        },
        WalRecord::AddPolicy { policy: sharing },
        WalRecord::SubmitPreference {
            preference: UserPreference::new(
                PreferenceId(0),
                UserId(3),
                PreferenceScope {
                    data: Some(c.location),
                    ..Default::default()
                },
                Effect::Deny,
            ),
            now: Timestamp(10),
        },
        WalRecord::SettingChoice {
            user: UserId(3),
            policy: PolicyId(0),
            setting_key: "share".into(),
            option_index: 0,
        },
        WalRecord::RemovePolicy {
            policy: PolicyId(1),
        },
        WalRecord::Gc { now: Timestamp(99) },
    ];
    for record in records {
        let muts = tail.observe(&record);
        apply(&mut mirror, &record, &muts);
        let changed: Vec<UnitId> = muts.into_iter().map(unit).collect();
        if changed.is_empty() {
            // Data-plane record: nothing to re-lint.
            continue;
        }
        analyzer.update(mirror.clone(), &changed);
        assert_eq!(
            analyzer.report(),
            &analyze(&mirror),
            "drift after {record:?}"
        );
    }
}

proptest! {
    /// Random WAL tails over a random starting corpus: after every
    /// record, splicing the dirty units matches a full re-analysis.
    #[test]
    fn random_wal_tails_match_full_reanalysis(seed in any::<u64>(), steps in 1usize..10) {
        let dbh = fixtures::dbh();
        let corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model.clone());
        let datas: Vec<_> = corpus
            .ontology
            .data
            .iter()
            .map(tippers_ontology::Concept::id)
            .collect();
        let purposes: Vec<_> = corpus
            .ontology
            .purposes
            .iter()
            .map(tippers_ontology::Concept::id)
            .collect();
        let spaces: Vec<_> = corpus.model.iter().map(tippers_spatial::Space::id).collect();

        let mut analyzer = Analyzer::new(corpus.clone());
        let mut mirror = corpus;
        let mut tail = InvalidationTail::new();
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for step in 0..steps {
            let record = match next() % 5 {
                0 | 1 => {
                    let mut p = BuildingPolicy::new(
                        PolicyId(777),
                        format!("policy {step}"),
                        spaces[next() % spaces.len()],
                        datas[next() % datas.len()],
                        purposes[next() % purposes.len()],
                    );
                    if next() % 2 == 0 {
                        p.actions = ActionSet::ALL;
                    }
                    WalRecord::AddPolicy { policy: p }
                }
                2 => WalRecord::SubmitPreference {
                    preference: UserPreference::new(
                        PreferenceId(777),
                        UserId((next() % 4) as u64),
                        PreferenceScope {
                            data: Some(datas[next() % datas.len()]),
                            ..Default::default()
                        },
                        if next() % 2 == 0 { Effect::Deny } else { Effect::Allow },
                    ),
                    now: Timestamp(step as i64),
                },
                3 => WalRecord::RemovePolicy {
                    policy: PolicyId((next() % (step + 2)) as u64),
                },
                _ => WalRecord::SettingChoice {
                    user: UserId(1),
                    policy: PolicyId((next() % (step + 2)) as u64),
                    setting_key: "share".into(),
                    option_index: 0,
                },
            };
            let muts = tail.observe(&record);
            apply(&mut mirror, &record, &muts);
            let changed: Vec<UnitId> = muts.into_iter().map(unit).collect();
            analyzer.update(mirror.clone(), &changed);
            prop_assert_eq!(analyzer.report(), &analyze(&mirror));
        }
    }
}
