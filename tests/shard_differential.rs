//! Sharded ≡ unsharded differential: the same deployment driven through
//! [`EnforcementCore`] on a single `Tippers` and on `ShardedTippers` at
//! 1, 2, and 8 shards must produce **byte-identical** transcripts —
//! every assigned id, every decision basis, every released record, every
//! notification.
//!
//! Documented exclusions (see `tippers::shard`): `Effect::Noise`
//! preferences (per-shard RNG sequences) and behavior while shards are
//! quarantined (covered by the chaos suite instead) — this scenario uses
//! neither.

use privacy_aware_buildings::prelude::*;
use tippers::{
    DataRequest, EnforcementCore, Priority, ShardSpec, ShardedTippers, SubjectSelector,
    Tippers as Bms,
};
use tippers_policy::{
    catalog, ActionSet, BuildingPolicy, PolicyId, PreferenceId, PreferenceScope, Timestamp,
    UserGroup, UserPreference,
};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload, Occupant};

const USERS: u64 = 40;

fn occupants(building: &tippers_spatial::fixtures::Dbh) -> Vec<Occupant> {
    (0..USERS)
        .map(|u| {
            let group = match u % 4 {
                0 => UserGroup::Faculty,
                1 => UserGroup::GradStudent,
                2 => UserGroup::Undergrad,
                _ => UserGroup::Visitor,
            };
            let mut o = Occupant::new(UserId(u), format!("occupant-{u}"), group);
            o.office = Some(building.offices[(u as usize) % building.offices.len()]);
            o
        })
        .collect()
}

fn observations(building: &tippers_spatial::fixtures::Dbh) -> Vec<Observation> {
    let mut obs = Vec::new();
    for minute in (0..60).step_by(10) {
        for u in 0..USERS {
            obs.push(Observation {
                device: DeviceId(0),
                timestamp: Timestamp::at(0, 9, minute),
                space: building.offices[(u as usize) % building.offices.len()],
                payload: ObservationPayload::WifiAssociation {
                    mac: MacAddress::for_user(u),
                    ap: DeviceId(0),
                },
                subject: Some(UserId(u)),
            });
        }
        // Subjectless ambient readings: routed by capture zone.
        for (i, &office) in building.offices.iter().enumerate() {
            obs.push(Observation {
                device: DeviceId(1),
                timestamp: Timestamp::at(0, 9, minute),
                space: office,
                payload: ObservationPayload::Temperature {
                    celsius: 21.0 + (i as f64) * 0.1,
                },
                subject: None,
            });
        }
    }
    obs
}

/// Drives the full scenario through the shared trait and records every
/// observable outcome as one JSON-ish transcript line per step.
fn drive<E: EnforcementCore>(bms: &mut E) -> Vec<String> {
    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts().clone();
    let mut t = Vec::new();

    bms.register_occupants(&occupants(&building));

    // Policy plane: the paper's catalog plus a broad WiFi-logging policy,
    // one of which is later removed.
    let p_hvac = bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    let p_emergency = bms.add_policy(
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
            .with_setting(BuildingPolicy::location_setting()),
    );
    let p_wifi = bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Network logging",
            building.building,
            c.wifi_association,
            c.logging,
        )
        .with_actions(ActionSet::ALL),
    );
    let p_analytics = bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Space analytics",
            building.building,
            c.occupancy,
            c.analytics,
        )
        .with_actions(ActionSet::ALL),
    );
    t.push(format!(
        "policies {p_hvac:?} {p_emergency:?} {p_wifi:?} {p_analytics:?}"
    ));

    // Preference plane: deterministic per-user mix (no Noise effects).
    for u in 0..USERS {
        let effect = match u % 3 {
            0 => Effect::Deny,
            1 => Effect::Allow,
            _ => Effect::Degrade(tippers_spatial::Granularity::Floor),
        };
        let scope = PreferenceScope {
            data: Some(if u % 2 == 0 {
                c.wifi_association
            } else {
                c.occupancy
            }),
            purpose: (u % 5 == 0).then_some(c.logging),
            ..Default::default()
        };
        let id = bms.submit_preference(
            UserPreference::new(PreferenceId(0), UserId(u), scope, effect),
            Timestamp::at(0, 8, 30 + (u % 20) as u32),
        );
        t.push(format!("pref {u} -> {id:?}"));
    }

    // IoTA setting choices on the emergency policy (valid and invalid).
    for u in 0..USERS / 2 {
        let choice =
            bms.apply_setting_choice(UserId(u), p_emergency, "location-sensing", (u % 3) as usize);
        t.push(format!("choice {u} -> {choice:?}"));
    }
    t.push(format!(
        "bad-choice -> {:?}",
        bms.apply_setting_choice(UserId(0), p_emergency, "location-sensing", 99)
    ));
    t.push(format!(
        "bad-key -> {:?}",
        bms.apply_setting_choice(UserId(0), p_emergency, "no-such-setting", 0)
    ));

    // Data plane.
    let (stored, dropped) = bms.ingest(&observations(&building));
    t.push(format!("ingest {stored} {dropped}"));

    // Policy churn mid-run.
    t.push(format!("remove {:?}", bms.remove_policy(p_analytics)));
    t.push(format!("remove-again {:?}", bms.remove_policy(p_analytics)));

    // Request plane: every user singly, then fan-out selectors.
    let now = Timestamp::at(0, 10, 0);
    for u in 0..USERS {
        let req = DataRequest {
            service: ServiceId::new("Concierge"),
            purpose: c.logging,
            data: c.wifi_association,
            subjects: SubjectSelector::One(UserId(u)),
            from: Timestamp::at(0, 9, 0),
            to: Timestamp::at(0, 10, 0),
            requester_space: None,
            priority: Priority::Interactive,
            deadline: None,
        };
        let resp = bms.handle_request(&req, now);
        t.push(format!(
            "one {u} {}",
            serde_json::to_string(&resp).expect("response serializes")
        ));
    }
    for (name, subjects, data, purpose) in [
        (
            "all-wifi",
            SubjectSelector::All,
            c.wifi_association,
            c.logging,
        ),
        ("all-occ", SubjectSelector::All, c.occupancy, c.analytics),
        (
            "in-space",
            SubjectSelector::InSpace(building.building),
            c.wifi_association,
            c.logging,
        ),
    ] {
        let req = DataRequest {
            service: ServiceId::new("SpaceAnalytics"),
            purpose,
            data,
            subjects,
            from: Timestamp::at(0, 9, 0),
            to: Timestamp::at(0, 10, 0),
            requester_space: None,
            priority: Priority::Interactive,
            deadline: None,
        };
        let resp = bms.handle_request(&req, now);
        t.push(format!(
            "{name} {}",
            serde_json::to_string(&resp).expect("response serializes")
        ));
    }

    // Retention sweep and notification drain.
    t.push(format!("sweep {}", bms.sweep(Timestamp::at(2, 0, 0))));
    for u in 0..USERS {
        let notes: Vec<String> = bms
            .take_notifications(UserId(u))
            .into_iter()
            .map(|n| n.text)
            .collect();
        if !notes.is_empty() {
            t.push(format!("notes {u} {notes:?}"));
        }
    }
    t.push(format!("health {:?}", bms.health()));
    t
}

fn unsharded_transcript() -> Vec<String> {
    let building = dbh();
    let mut bms = Bms::new(
        Ontology::standard(),
        building.model.clone(),
        TippersConfig::default(),
    );
    drive(&mut bms)
}

fn sharded_transcript(shards: usize) -> Vec<String> {
    let building = dbh();
    let mut bms = ShardedTippers::new(
        Ontology::standard(),
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards,
            ..ShardSpec::default()
        },
    );
    let t = drive(&mut bms);
    // The run was fault-free: no shard ever went down, nothing failed
    // closed, nothing was queued.
    let stats = bms.stats();
    assert_eq!(stats.down, 0);
    assert_eq!(stats.panics + stats.stalls, 0);
    assert_eq!(stats.unavailable_denials + stats.unavailable_drops, 0);
    t
}

fn assert_identical(shards: usize) {
    let reference = unsharded_transcript();
    let sharded = sharded_transcript(shards);
    assert_eq!(
        reference.len(),
        sharded.len(),
        "transcript length diverged at {shards} shards"
    );
    for (i, (a, b)) in reference.iter().zip(&sharded).enumerate() {
        assert_eq!(a, b, "transcript line {i} diverged at {shards} shards");
    }
}

#[test]
fn one_shard_is_byte_identical_to_unsharded() {
    assert_identical(1);
}

#[test]
fn two_shards_are_byte_identical_to_unsharded() {
    assert_identical(2);
}

#[test]
fn eight_shards_are_byte_identical_to_unsharded() {
    assert_identical(8);
}

/// The simulation executor is transcript-transparent: the same
/// fault-free scenario, with the whole sharded runtime (workers,
/// channels, watchdogs) scheduled cooperatively inside a
/// [`SimExecutor`], produces byte-identical transcripts to both the
/// threaded sharded run and the unsharded reference — and a different
/// seed (a different legal interleaving) cannot change them.
#[test]
fn sim_executed_shards_are_byte_identical_to_threaded_and_unsharded() {
    use std::sync::{Arc, Mutex};
    use tippers_resilience::sim::{Schedule, SimExecutor};

    let reference = unsharded_transcript();
    let threaded = sharded_transcript(4);

    let sim_transcript = |seed: u64| {
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&out);
        let outcome = SimExecutor::run(&Schedule::seeded(seed, 0), move || {
            *sink.lock().expect("unpoisoned") = sharded_transcript(4);
        });
        assert!(
            !outcome.failed(),
            "fault-free sim run failed at seed {seed}: {:?}",
            outcome.violation
        );
        Arc::try_unwrap(out)
            .expect("sim tasks joined")
            .into_inner()
            .expect("unpoisoned")
    };

    let sim = sim_transcript(42);
    assert_eq!(
        sim, threaded,
        "sim-executed transcript diverged from the threaded run"
    );
    assert_eq!(
        sim, reference,
        "sim-executed transcript diverged from the unsharded reference"
    );
    assert_eq!(
        sim_transcript(7),
        sim,
        "a different interleaving changed a fault-free transcript"
    );
}

#[test]
fn batched_requests_match_sequential_routing() {
    let building = dbh();
    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let mut sharded = ShardedTippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards: 4,
            ..ShardSpec::default()
        },
    );
    sharded.register_occupants(&occupants(&building));
    sharded.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Network logging",
            building.building,
            c.wifi_association,
            c.logging,
        )
        .with_actions(ActionSet::ALL),
    );
    sharded.ingest(&observations(&building));
    let now = Timestamp::at(0, 10, 0);
    let requests: Vec<DataRequest> = (0..USERS)
        .map(|u| DataRequest {
            service: ServiceId::new("Concierge"),
            purpose: c.logging,
            data: c.wifi_association,
            subjects: SubjectSelector::One(UserId(u)),
            from: Timestamp::at(0, 9, 0),
            to: Timestamp::at(0, 10, 0),
            requester_space: None,
            priority: Priority::Interactive,
            deadline: None,
        })
        .collect();
    let batched = sharded.handle_batch(&requests, now);
    assert_eq!(batched.len(), requests.len());
    for (req, batch_resp) in requests.iter().zip(&batched) {
        let solo = sharded.handle_request(req, now);
        assert_eq!(
            serde_json::to_string(&solo).unwrap(),
            serde_json::to_string(batch_resp).unwrap(),
        );
    }
}

#[test]
fn durable_reopen_rebuilds_router_state() {
    let dir = std::env::temp_dir().join(format!("tippers-shard-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let building = dbh();
    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let spec = ShardSpec {
        shards: 4,
        ..ShardSpec::default()
    };
    let policy = BuildingPolicy::new(
        PolicyId(0),
        "Network logging",
        building.building,
        c.wifi_association,
        c.logging,
    )
    .with_actions(ActionSet::ALL);
    let request = |u: u64| DataRequest {
        service: ServiceId::new("Concierge"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(UserId(u)),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(0, 10, 0),
        requester_space: None,
        priority: Priority::Interactive,
        deadline: None,
    };

    // Seed: commit a policy and one preference, then drop the runtime.
    let seeded_pref = {
        let (mut bms, _) = ShardedTippers::open(
            &dir,
            ontology.clone(),
            building.model.clone(),
            TippersConfig::default(),
            spec.clone(),
        )
        .expect("open fresh");
        bms.register_occupants(&occupants(&building));
        bms.add_policy(policy.clone());
        bms.submit_preference(
            UserPreference::new(
                PreferenceId(0),
                UserId(3),
                PreferenceScope {
                    data: Some(c.wifi_association),
                    ..Default::default()
                },
                Effect::Deny,
            ),
            Timestamp::at(0, 9, 0),
        )
    };

    // Reopen: per-shard WAL replay must restore the shards, and the
    // router must rebuild its policy mirror and id allocator from them —
    // otherwise the next assigned id would collide with a replayed one.
    let (mut bms, reports) = ShardedTippers::open(
        &dir,
        ontology,
        building.model.clone(),
        TippersConfig::default(),
        spec,
    )
    .expect("reopen");
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().any(|r| r.records_replayed > 0));
    bms.register_occupants(&occupants(&building));
    assert_eq!(bms.policies(), std::slice::from_ref(&policy));
    let now = Timestamp::at(0, 10, 0);
    let denied = bms.handle_request(&request(3), now);
    assert!(!denied.results[0].decision.permits());
    let allowed = bms.handle_request(&request(4), now);
    assert!(allowed.results[0].decision.permits());
    let next = bms.submit_preference(
        UserPreference::new(
            PreferenceId(0),
            UserId(5),
            PreferenceScope {
                data: Some(c.occupancy),
                ..Default::default()
            },
            Effect::Deny,
        ),
        now,
    );
    assert!(
        next.0 > seeded_pref.0,
        "the rebuilt allocator must not re-issue a replayed id"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
