//! Experiment E1: the complete ten-step interaction of the paper's
//! Figure 1, with a user named Mary.
//!
//! (1) the admin defines policies; (2) sensors capture data about
//! inhabitants; (3) it is stored; (4) policies are published through an
//! IRR; (5) Mary's IoTA discovers the registry and fetches the policies;
//! (6) it notifies her about the relevant ones; (7) it consults her
//! preference model; (8) it configures her privacy settings with TIPPERS;
//! (9) a service asks TIPPERS for Mary's location; (10) the request is
//! processed per her settings.

use privacy_aware_buildings::prelude::*;
use tippers_policy::BuildingPolicy;

#[test]
fn figure1_ten_step_walkthrough() {
    let ontology = Ontology::standard();

    // The building and its sensors (simulated DBH).
    let sim_config = SimulatorConfig {
        seed: 42,
        population: Population {
            staff: 5,
            faculty: 5,
            grads: 8,
            undergrads: 8,
            visitors: 1,
        },
        tick_secs: 600,
        deployment: tippers_sensors::DeploymentConfig {
            cameras: 6,
            wifi_aps: 240,
            beacons: 40,
            power_meters: 20,
            motion_everywhere: true,
            hvac_per_floor: true,
            badge_readers: true,
        },
        identify_probability: 0.3,
    };
    let mut sim = BuildingSimulator::new(sim_config, &ontology);
    let building = sim.dbh().clone();

    // Step 1 — the building admin defines policies in TIPPERS.
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
            .with_setting(BuildingPolicy::location_setting()),
    );
    register_service(&mut bms, &Concierge::new());

    // Steps 2–3 — sensors are actuated, data about inhabitants is
    // captured and stored.
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 11, 0));
    let (stored, dropped) = bms.ingest(&trace.observations);
    assert!(stored > 0, "authorized observations must be stored");
    assert!(
        dropped > 0,
        "practices no policy authorizes (e.g. badge swipes with no \
         access-control policy) must be dropped"
    );

    // Step 4 — policies are made publicly available through an IRR.
    let mut bus = DiscoveryBus::new(NetworkConfig::default());
    let irr = bus.add_registry("DBH IRR", building.building);
    let published = bms
        .publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0))
        .expect("publishing succeeds");
    assert_eq!(published, 3);

    // Mary walks in carrying her smartphone with an IoTA installed. Pick a
    // grad student who is in the building at 11:00.
    let now = Timestamp::at(0, 11, 0);
    let mary = sim
        .occupants()
        .iter()
        .find(|o| o.group == UserGroup::GradStudent)
        .map(|o| o.user)
        .expect("a grad student exists");
    let mary_space = building.offices[0];

    // Steps 5–7 — the IoTA discovers registries near Mary, fetches the
    // machine-readable policies, and notifies her of the relevant ones
    // based on her (privacy-fundamentalist) preference model.
    let mut iota = Iota::new(
        mary,
        UserGroup::GradStudent,
        SensitivityProfile::fundamentalist(&ontology),
    );
    let ads = iota.poll(&bus, &building.model, mary_space, now);
    assert!(!ads.is_empty(), "step 5: the IoTA must discover the IRR");
    let notifications = iota.review(&ads, &ontology, now);
    assert!(
        !notifications.is_empty(),
        "step 6: a location-sensitive user must be notified about \
         WiFi-based location tracking"
    );

    // Step 8 — the IoTA configures Mary's available privacy settings.
    let created = iota.configure(&mut bms).expect("settings apply");
    assert!(!created.is_empty());
    // A fundamentalist opts out of location sensing entirely.
    assert!(bms
        .preferences()
        .iter()
        .any(|p| p.user == mary && p.effect == Effect::Deny));

    // Steps 9–10 — a service requests Mary's location; the request is
    // processed according to her settings: the Concierge is refused...
    let concierge = Concierge::new();
    let err = concierge
        .nearest(&mut bms, mary, RoomUse::Kitchen, now)
        .unwrap_err();
    assert_eq!(err, tippers_services::ConciergeError::LocationUnavailable);

    // ...while the mandatory emergency policy still locates her, and her
    // IoTA is told about the conflict/override (§III.B).
    let emergency = EmergencyResponse::new();
    let roster = emergency.muster(&mut bms, None, now);
    let mary_located = roster.located.iter().any(|(u, _)| *u == mary);
    let mary_unaccounted = roster.unaccounted.contains(&mary);
    assert!(
        mary_located || mary_unaccounted,
        "mary appears in the muster either way"
    );
    let notes = bms.take_notifications(mary);
    assert!(
        !notes.is_empty(),
        "step 8/10: conflict with the mandatory policy must be notified"
    );
}

/// The audit log reflects every step-9/10 decision.
#[test]
fn decisions_are_audited() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    register_service(&mut bms, &Concierge::new());
    let user = UserId(1);
    let c = ontology.concepts();
    let request = tippers::DataRequest {
        service: catalog::services::concierge(),
        purpose: c.navigation,
        data: c.location_room,
        subjects: tippers::SubjectSelector::One(user),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(0, 23, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let _ = bms.handle_request(&request, Timestamp::at(0, 12, 0));
    assert_eq!(bms.audit().entries_for(user).len(), 1);
}
