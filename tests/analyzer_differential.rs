//! Differential test: the analyzer's conflict pre-flight pass (TA006) finds
//! exactly the conflicts the runtime's naive pairwise detector finds — both
//! directions, over a seeded corpus, under every resolution strategy.

use std::collections::BTreeSet;

use tippers_analyzer::{analyze, DeploymentCorpus, LintCode};
use tippers_bench::{gen_policies, gen_preferences, service_pool};
use tippers_ontology::Ontology;
use tippers_policy::{conflict, PolicyId, PreferenceId, ResolutionStrategy};
use tippers_spatial::fixtures;

/// Recovers the (policy, preference) pair from a TA006 diagnostic's
/// evidence (`["policy#N", "pref#M", kind]`).
fn pair_from_evidence(evidence: &[String]) -> (PolicyId, PreferenceId) {
    let p = evidence[0]
        .strip_prefix("policy#")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("bad policy evidence {evidence:?}"));
    let u = evidence[1]
        .strip_prefix("pref#")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("bad preference evidence {evidence:?}"));
    (PolicyId(p), PreferenceId(u))
}

#[test]
fn preflight_equals_naive_conflict_detection() {
    let dbh = fixtures::dbh();
    let ontology = Ontology::standard();
    let services = service_pool(4);

    for seed in [1u64, 42, 0xBEEF, 7_777_777] {
        let policies = gen_policies(40, &ontology, &dbh, &services, seed);
        let preferences = gen_preferences(6, 5, &ontology, &dbh, &services, seed);

        for strategy in [
            ResolutionStrategy::PolicyPrevails,
            ResolutionStrategy::PreferencePrevails,
            ResolutionStrategy::Strictest,
        ] {
            let naive: BTreeSet<(PolicyId, PreferenceId)> = conflict::detect_conflicts_naive(
                &policies,
                &preferences,
                &ontology,
                &dbh.model,
                strategy,
            )
            .into_iter()
            .map(|c| (c.policy, c.preference))
            .collect();

            let mut corpus = DeploymentCorpus::new(ontology.clone(), dbh.model.clone());
            corpus.policies = policies.clone();
            corpus.preferences = preferences.clone();
            corpus.strategy = strategy;
            let report = analyze(&corpus);
            let preflight: BTreeSet<(PolicyId, PreferenceId)> = report
                .diagnostics
                .iter()
                .filter(|d| d.code == LintCode::ConflictPreflight)
                .map(|d| pair_from_evidence(&d.evidence))
                .collect();

            assert_eq!(
                preflight, naive,
                "seed {seed}, strategy {strategy:?}: analyzer and naive detector disagree"
            );
        }
    }
}

#[test]
fn preflight_is_empty_when_nothing_conflicts() {
    // Opt-in-only policies can never conflict with preferences.
    let dbh = fixtures::dbh();
    let ontology = Ontology::standard();
    let services = service_pool(2);
    let mut policies = gen_policies(10, &ontology, &dbh, &services, 3);
    for p in &mut policies {
        p.modality = tippers_policy::Modality::OptIn;
    }
    let preferences = gen_preferences(3, 4, &ontology, &dbh, &services, 3);

    let mut corpus = DeploymentCorpus::new(ontology, dbh.model.clone());
    corpus.policies = policies;
    corpus.preferences = preferences;
    let report = analyze(&corpus);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.code != LintCode::ConflictPreflight));
}
