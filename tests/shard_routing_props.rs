//! Property tests for shard routing (jump consistent hash).
//!
//! For *any* user id and *any* shard count the routing function must be
//! deterministic and total; and under *any* shard-count change the
//! mapping must be stable except for the minimal rehashed residue —
//! growth by one shard only ever relocates keys *onto the new shard*,
//! and multi-step growth never moves a key "backwards" through shards
//! it already passed.

use proptest::prelude::*;
use tippers::{jump_hash, ShardRouter};
use tippers_policy::UserId;

proptest! {
    /// Total and deterministic for any key and any shard count.
    #[test]
    fn routing_is_total_and_deterministic(user in any::<u64>(), shards in 1usize..=128) {
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        let got = a.shard_of_user(UserId(user));
        prop_assert!(got < shards);
        prop_assert_eq!(got, b.shard_of_user(UserId(user)));
    }

    /// Growing `n -> n + 1` either leaves a key in place or moves it onto
    /// the new shard — never between surviving shards.
    #[test]
    fn single_step_growth_only_moves_keys_onto_the_new_shard(
        user in any::<u64>(),
        shards in 1usize..=64,
    ) {
        let old = ShardRouter::new(shards).shard_of_user(UserId(user));
        let new = ShardRouter::new(shards + 1).shard_of_user(UserId(user));
        prop_assert!(new == old || new == shards, "user {} moved {} -> {}", user, old, new);
    }

    /// Jump hash is monotone in the bucket count: a key's bucket index
    /// never decreases as buckets grow, so every key's shard history
    /// under repeated growth is a non-decreasing sequence of "stay or
    /// jump to the newest shard".
    #[test]
    fn growth_never_moves_a_key_backwards(key in any::<u64>(), upto in 2u32..=48) {
        let mut prev = jump_hash(key, 1);
        prop_assert_eq!(prev, 0);
        for buckets in 2..=upto {
            let next = jump_hash(key, buckets);
            prop_assert!(next == prev || next == buckets - 1);
            prop_assert!(next >= prev);
            prev = next;
        }
    }

    /// Zone pins override exactly their own zone: every pinned zone
    /// routes to its declared shard, every unpinned zone and every user
    /// routes exactly as the pinless router does.
    #[test]
    fn zone_pins_override_only_their_own_zone(
        shards in 1usize..=16,
        picks in proptest::collection::vec(any::<u64>(), 0..4),
        targets in proptest::collection::vec(any::<u64>(), 4),
        user in any::<u64>(),
    ) {
        let model = tippers_spatial::fixtures::dbh().model;
        let zones: Vec<tippers_spatial::SpaceId> =
            model.iter().map(tippers_spatial::Space::id).collect();
        let mut pins: Vec<(tippers_spatial::SpaceId, usize)> = Vec::new();
        for (&pick, &target) in picks.iter().zip(&targets) {
            let zone = zones[usize::try_from(pick).unwrap_or(0) % zones.len()];
            let shard = usize::try_from(target).unwrap_or(0) % shards;
            // Split pins are a construction error (the router refuses
            // them); generate only coherent tables here.
            if !pins.iter().any(|&(z, s)| z == zone && s != shard) {
                pins.push((zone, shard));
            }
        }
        let plain = ShardRouter::new(shards);
        let pinned = ShardRouter::with_zone_pins(shards, pins.iter().copied());
        for &(zone, shard) in &pins {
            prop_assert_eq!(pinned.shard_of_zone(zone), shard);
            prop_assert_eq!(pinned.zone_pin(zone), Some(shard));
        }
        for &zone in &zones {
            if !pins.iter().any(|&(z, _)| z == zone) {
                prop_assert_eq!(pinned.shard_of_zone(zone), plain.shard_of_zone(zone));
                prop_assert_eq!(pinned.zone_pin(zone), None);
            }
        }
        prop_assert_eq!(
            pinned.shard_of_user(UserId(user)),
            plain.shard_of_user(UserId(user))
        );
    }

    /// Across a whole cohort, the residue moved by one growth step stays
    /// near the theoretical `1/(n + 1)` minimum (loose 3x bound: this is
    /// a property test over arbitrary cohorts, not a statistics suite).
    #[test]
    fn rehashed_residue_is_minimal(base in any::<u32>(), shards in 1u64..=16) {
        let shards = shards as usize;
        let cohort: Vec<u64> = (0..2_000u64).map(|i| u64::from(base) + i * 7).collect();
        let old = ShardRouter::new(shards);
        let new = ShardRouter::new(shards + 1);
        let moved = cohort
            .iter()
            .filter(|&&u| old.shard_of_user(UserId(u)) != new.shard_of_user(UserId(u)))
            .count();
        let expected = cohort.len() / (shards + 1);
        prop_assert!(
            moved <= expected * 3,
            "{} of {} keys moved at {} -> {} shards (minimum ~{})",
            moved, cohort.len(), shards, shards + 1, expected
        );
    }
}
