//! Jepsen-style partition fuzz over the replicated enforcement cluster.
//!
//! A seeded nemesis drives partitions, primary crashes, clock skew, frame
//! loss, frame reorder and ack delay against a three-node cluster while
//! the harness keeps writing privacy-relevant mutations and reading from
//! every node. The invariants, checked continuously and at the end:
//!
//! * **Durability** — no committed write (decision-relevant policy,
//!   preference or setting mutation) is ever lost: the committed prefix
//!   only grows, and every failover's new primary history extends it.
//! * **No split-brain** — a write submitted to a deposed primary is never
//!   acknowledged as committed; once the fence is learned it is rejected
//!   outright and counted.
//! * **Fail-closed staleness** — a replica that cannot prove bounded
//!   staleness denies every subject with `DecisionBasis::StaleReplica`
//!   inside a degraded response.
//! * **Replica fidelity** — a fresh replica's decisions equal those of a
//!   reference BMS replaying exactly the replica's durable prefix (so
//!   replica permits are a subset of primary permits on the shared
//!   prefix).
//! * **Convergence** — after the storm heals, anti-entropy drives every
//!   node to an identical frame history, epoch and snapshot.
//!
//! Seeds 7, 42 and 4711 run in CI via `TIPPERS_FAULT_SEED`.

use privacy_aware_buildings::policy::{BuildingPolicy, Effect};
use privacy_aware_buildings::prelude::*;
use privacy_aware_buildings::sensors::Occupant;
use tippers::replication::{replay, Cluster, Frame, ReplicationConfig, WriteOutcome};
use tippers::{
    DataResponse, DecisionBasis, FaultPlan, FaultPoint, Nemesis, NemesisAction, VirtualClock,
    MILLIS_PER_SEC,
};

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

const NODES: usize = 3;

struct Fixture {
    cluster: Cluster,
    users: Vec<UserId>,
    pid: PolicyId,
    ontology: Ontology,
    model: SpatialModel,
    config: TippersConfig,
    occupants: Vec<Occupant>,
}

/// Boots a three-node cluster over the shared DBH population, commits the
/// catalog policies (thermostat carrying the Figure-4 location setting,
/// emergency location) and a morning of sensor data.
fn build(plan: &FaultPlan, clock: &VirtualClock) -> Fixture {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 7,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 3,
                undergrads: 3,
                visitors: 0,
            },
            tick_secs: 600,
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    let users: Vec<UserId> = occupants.iter().map(|o| o.user).collect();
    let config = TippersConfig {
        // The retention sweeper rides the storm: the primary's scheduled
        // sweeps fire from the read path, and their bracketed records
        // replicate like any write.
        sweep_every_secs: Some(600),
        ..TippersConfig::default()
    };
    let mut cluster = Cluster::new(
        ReplicationConfig::default(),
        plan.clone(),
        clock.clone(),
        ontology.clone(),
        building.model.clone(),
        config.clone(),
        occupants.clone(),
    )
    .expect("cluster boot");

    let p1 = catalog::policy1_thermostat(PolicyId(0), building.building, &ontology)
        .with_setting(BuildingPolicy::location_setting());
    let p2 = catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology);
    // Short-retention metering rows, already expired when the storm
    // starts: the first authoritative read's scheduled sweep reaps them
    // and the deletion certificate replicates to every node.
    let c = ontology.concepts().clone();
    let metering = BuildingPolicy::new(
        PolicyId(0),
        "Storm metering",
        building.building,
        c.power_consumption,
        c.energy_management,
    )
    .with_actions(tippers_policy::ActionSet::ALL)
    .with_retention("PT1H".parse().unwrap());
    let mut pid = PolicyId(0);
    let outcome = cluster
        .write_to(0, |bms| {
            pid = bms.add_policy(p1);
            bms.add_policy(p2);
            bms.add_policy(metering);
        })
        .expect("seed policies");
    assert!(
        matches!(outcome, WriteOutcome::Committed { .. }),
        "policy seeding must commit on a healthy cluster: {outcome:?}"
    );
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 8, 30));
    let expired: Vec<tippers_sensors::Observation> = occupants
        .iter()
        .enumerate()
        .map(|(i, o)| tippers_sensors::Observation {
            device: tippers_sensors::DeviceId(i as u32),
            timestamp: Timestamp::at(0, 6, 0),
            space: building.offices[0],
            payload: tippers_sensors::ObservationPayload::PowerReading { watts: 100.0 },
            subject: Some(o.user),
        })
        .collect();
    cluster
        .write_to(0, |bms| {
            bms.ingest(&trace.observations);
            bms.ingest(&expired);
        })
        .expect("seed observations");

    Fixture {
        cluster,
        users,
        pid,
        ontology,
        model: building.model,
        config,
        occupants,
    }
}

fn decisions(response: &DataResponse) -> Vec<(bool, DecisionBasis)> {
    response
        .results
        .iter()
        .map(|r| (r.decision.permits(), r.decision.basis.clone()))
        .collect()
}

#[test]
fn nemesis_storm_loses_no_commit_acks_no_split_brain_and_converges() {
    let seed = fault_seed();
    let plan = FaultPlan::seeded(seed);
    let clock = VirtualClock::at_ms(Timestamp::at(0, 8, 0).0 * MILLIS_PER_SEC);
    let mut fx = build(&plan, &clock);
    let c = fx.ontology.concepts().clone();
    let mut nemesis = Nemesis::new(seed, NODES, plan.clone(), clock.clone());

    let mk_request = |round: usize, user: UserId, to: Timestamp| {
        if round.is_multiple_of(2) {
            DataRequest {
                service: catalog::services::emergency(),
                purpose: c.emergency_response,
                data: c.wifi_association,
                subjects: SubjectSelector::One(user),
                from: Timestamp::at(0, 8, 0),
                to,
                requester_space: None,
                priority: Default::default(),
                deadline: None,
            }
        } else {
            DataRequest {
                service: catalog::services::concierge(),
                purpose: c.navigation,
                data: c.location,
                subjects: SubjectSelector::One(user),
                from: Timestamp::at(0, 8, 0),
                to,
                requester_space: None,
                priority: Default::default(),
                deadline: None,
            }
        }
    };

    // The committed prefix: the quorum-durable history that must survive
    // every subsequent failover, byte for byte.
    let mut committed: Vec<Frame> = {
        let p = fx.cluster.primary();
        fx.cluster.frames(p)[..fx.cluster.committed_len() as usize].to_vec()
    };
    assert!(!committed.is_empty(), "seeding committed something");

    let mut deposed: Option<usize> = None;
    let mut promotions = 0usize;
    let mut stale_denials = 0usize;
    let mut fenced_probes = 0u64;

    for round in 0..48 {
        let action = nemesis.step();
        match action {
            NemesisAction::CrashPrimary => {
                let p = fx.cluster.primary();
                if !fx.cluster.is_down(p) {
                    fx.cluster.crash(p);
                }
            }
            NemesisAction::RestartCrashed => {
                for i in 0..NODES {
                    if fx.cluster.is_down(i) {
                        fx.cluster.restart(i).expect("restart");
                    }
                }
            }
            _ => {}
        }

        // Election: when the primary is gone, isolated, or has lost its
        // authority, promote the most up-to-date reachable node (if a
        // quorum is reachable at all).
        let p = fx.cluster.primary();
        let isolated =
            plan.is_armed(FaultPoint::Partition) && plan.param(FaultPoint::Partition) == p as i64;
        if !fx.cluster.is_authoritative(p) || isolated {
            if let Some(cand) = fx.cluster.best_candidate() {
                if cand != p {
                    deposed = Some(p);
                }
                fx.cluster.promote(cand).expect("promote");
                promotions += 1;
            }
        }

        // A privacy-relevant write on whoever is primary now.
        let p = fx.cluster.primary();
        let now = Timestamp(clock.now_ms() / MILLIS_PER_SEC);
        let user = fx.users[round % fx.users.len()];
        let pid = fx.pid;
        let outcome = match round % 3 {
            0 => {
                let pref = catalog::preference2_no_location(PreferenceId(0), user, &fx.ontology);
                fx.cluster.write_to(p, move |bms| {
                    bms.submit_preference(pref, now);
                })
            }
            1 => {
                let opt = round % 3;
                fx.cluster.write_to(p, move |bms| {
                    let _ = bms.apply_setting_choice(user, pid, "location-sensing", opt);
                })
            }
            _ => fx.cluster.write_to(p, move |bms| {
                bms.gc(now);
            }),
        }
        .expect("write");
        if let WriteOutcome::Committed { index } = outcome {
            let new_prefix = fx.cluster.frames(p)[..=index as usize].to_vec();
            assert!(
                new_prefix.len() >= committed.len()
                    && new_prefix[..committed.len()] == committed[..],
                "round {round}: committed history is not append-only"
            );
            committed = new_prefix;
        }

        // Probe the deposed primary: its writes must NEVER be acknowledged
        // as committed (and once it learns the fence, they are rejected).
        if let Some(d) = deposed {
            if d != fx.cluster.primary() && !fx.cluster.is_down(d) {
                let pref = catalog::preference2_no_location(PreferenceId(0), user, &fx.ontology);
                let probe = fx
                    .cluster
                    .write_to(d, move |bms| {
                        bms.submit_preference(pref, now);
                    })
                    .expect("probe write");
                assert!(
                    !matches!(probe, WriteOutcome::Committed { .. }),
                    "round {round}: split-brain write acknowledged on deposed \
                     primary {d}: {probe:?}"
                );
                if matches!(probe, WriteOutcome::Fenced { .. }) {
                    fenced_probes += 1;
                }
            }
        }

        fx.cluster.tick().expect("tick");

        // Read from every alive node; staleness must fail closed.
        let read_now = Timestamp(clock.now_ms() / MILLIS_PER_SEC);
        let request = mk_request(round, user, read_now);
        for i in 0..NODES {
            let Some(response) = fx.cluster.read_from(i, &request, read_now) else {
                continue;
            };
            for (permitted, basis) in decisions(&response) {
                if basis == DecisionBasis::StaleReplica {
                    stale_denials += 1;
                    assert!(!permitted, "a StaleReplica decision must deny");
                    assert!(
                        response.degraded,
                        "a stale denial must ride in a degraded response"
                    );
                }
            }
        }

        // Periodic differential: a node that served a fresh read must
        // decide exactly as a reference BMS replaying its durable prefix
        // (hence replica permits ⊆ primary permits on the shared prefix).
        if round % 8 == 4 {
            for i in 0..NODES {
                if fx.cluster.is_down(i) {
                    continue;
                }
                let frames = fx.cluster.frames(i).to_vec();
                let response = fx
                    .cluster
                    .read_from(i, &request, read_now)
                    .expect("alive node serves");
                if response.degraded {
                    continue; // stale — fail-closed path already asserted
                }
                let mut reference =
                    replay(&frames, &fx.ontology, &fx.model, &fx.config, &fx.occupants)
                        .expect("replay reference");
                let expected = reference.handle_request(&request, read_now);
                assert_eq!(
                    decisions(&response),
                    decisions(&expected),
                    "round {round}: node {i} diverged from its replayed prefix"
                );
            }
        }
    }

    // Heal everything and let the cluster converge.
    nemesis.quiesce();
    for i in 0..NODES {
        if fx.cluster.is_down(i) {
            fx.cluster.restart(i).expect("final restart");
        }
    }
    let cand = fx
        .cluster
        .best_candidate()
        .expect("all nodes reachable after heal");
    fx.cluster.promote(cand).expect("final promotion");
    for _ in 0..4 {
        fx.cluster.tick().expect("pump");
        clock.advance_ms(50);
    }

    // Deterministic stale-read probe: isolate one replica past the
    // staleness bound — it must fail closed.
    let replica = (0..NODES)
        .find(|&i| i != fx.cluster.primary())
        .expect("three nodes have a replica");
    plan.arm_with_param(FaultPoint::Partition, 1.0, replica as i64);
    clock.advance_ms(6 * MILLIS_PER_SEC);
    fx.cluster.tick().expect("tick past the bound");
    let probe_now = Timestamp(clock.now_ms() / MILLIS_PER_SEC);
    let probe = mk_request(0, fx.users[0], probe_now);
    let response = fx
        .cluster
        .read_from(replica, &probe, probe_now)
        .expect("replica alive");
    assert!(response.degraded, "stale replica response must be degraded");
    assert!(
        response
            .results
            .iter()
            .all(|r| !r.decision.permits() && r.decision.basis == DecisionBasis::StaleReplica),
        "an out-of-bound replica must deny every subject as StaleReplica"
    );
    stale_denials += response.results.len();
    plan.disarm(FaultPoint::Partition);

    let report = fx.cluster.reconcile().expect("reconcile");

    // Durability: the committed prefix survived every failover.
    let primary = fx.cluster.primary();
    let final_frames = fx.cluster.frames(primary).to_vec();
    assert!(
        final_frames.len() >= committed.len() && final_frames[..committed.len()] == committed[..],
        "a committed write was lost across failover"
    );
    // Convergence: identical history, epoch and snapshot everywhere.
    let final_snapshot = fx.cluster.snapshot(primary);
    let final_epoch = fx.cluster.node_epoch(primary);
    for i in 0..NODES {
        assert_eq!(
            fx.cluster.frames(i),
            &final_frames[..],
            "node {i} frame history diverged post-heal"
        );
        assert_eq!(
            fx.cluster.node_epoch(i),
            final_epoch,
            "node {i} epoch diverged post-heal"
        );
        assert_eq!(
            fx.cluster.snapshot(i),
            final_snapshot,
            "node {i} snapshot diverged post-heal"
        );
    }
    // The scheduled sweep fired on some authoritative read during the
    // storm, and its deletion certificate replicated: every node holds an
    // identical, non-empty certificate ledger.
    let primary_certs = fx.cluster.node_bms(primary).deletion_certificates();
    assert!(
        primary_certs.iter().map(|cert| cert.rows).sum::<u64>() >= fx.users.len() as u64,
        "the storm never ran a scheduled sweep over the expired rows"
    );
    for i in 0..NODES {
        assert_eq!(
            fx.cluster.node_bms(i).deletion_certificates(),
            primary_certs,
            "node {i} certificate ledger diverged post-heal"
        );
    }
    // The storm actually exercised the machinery.
    assert!(promotions >= 1, "the nemesis never forced a failover");
    assert!(stale_denials >= 1, "no stale read ever failed closed");
    assert!(
        fx.cluster.split_brain_rejections() >= fenced_probes,
        "every fenced probe is an audited split-brain rejection"
    );
    let _ = report;
}

/// Scripted anti-entropy scenario: a partitioned primary keeps taking
/// setting updates while the survivors elect a successor and move on.
/// After the heal, divergent choices merge by (epoch, version)
/// last-writer-wins, the losing user is durably re-notified on every
/// node, and all nodes converge.
#[test]
fn partition_heal_merges_divergent_settings_and_renotifies_losers() {
    let plan = FaultPlan::seeded(1);
    let clock = VirtualClock::at_ms(Timestamp::at(0, 9, 0).0 * MILLIS_PER_SEC);
    let mut fx = build(&plan, &clock);
    let (u, v) = (fx.users[2], fx.users[3]);
    let pid = fx.pid;

    // u commits "fine grained" (option 0) while node 0 is primary.
    let out = fx
        .cluster
        .write_to(0, |bms| {
            let _ = bms.apply_setting_choice(u, pid, "location-sensing", 0);
        })
        .expect("write");
    assert!(matches!(out, WriteOutcome::Committed { .. }), "{out:?}");

    // The primary is cut off; the two survivors are a quorum and elect
    // node 1 under a fresh, durably recorded epoch.
    plan.arm_with_param(FaultPoint::Partition, 1.0, 0);
    let cand = fx.cluster.best_candidate().expect("survivors are a quorum");
    assert_eq!(cand, 1, "most up-to-date reachable node");
    let old_epoch = fx.cluster.node_epoch(0);
    let new_epoch = fx.cluster.promote(cand).expect("promote");
    assert!(new_epoch > old_epoch, "epochs are monotone");

    // Trunk: u moves to "coarse" (option 1), committed at the new epoch.
    let out = fx
        .cluster
        .write_to(1, |bms| {
            let _ = bms.apply_setting_choice(u, pid, "location-sensing", 1);
        })
        .expect("write");
    assert!(matches!(out, WriteOutcome::Committed { .. }), "{out:?}");

    // Branch: the isolated deposed primary, unaware, keeps accepting
    // updates — v opts out entirely, u also picks opt-out. Neither can
    // reach a quorum, so both stay Pending (never acknowledged).
    let out = fx
        .cluster
        .write_to(0, |bms| {
            let _ = bms.apply_setting_choice(v, pid, "location-sensing", 2);
        })
        .expect("write");
    assert!(matches!(out, WriteOutcome::Pending { .. }), "{out:?}");
    let out = fx
        .cluster
        .write_to(0, |bms| {
            let _ = bms.apply_setting_choice(u, pid, "location-sensing", 2);
        })
        .expect("write");
    assert!(matches!(out, WriteOutcome::Pending { .. }), "{out:?}");

    // Heal. The deposed primary's next append reaches peers that answer
    // with the newer epoch: first write learns the fence (still only
    // Pending), the one after is rejected outright as split-brain.
    plan.disarm(FaultPoint::Partition);
    let now = Timestamp(clock.now_ms() / MILLIS_PER_SEC);
    let pref = catalog::preference2_no_location(PreferenceId(0), fx.users[4], &fx.ontology);
    let out = fx
        .cluster
        .write_to(0, move |bms| {
            bms.submit_preference(pref, now);
        })
        .expect("write");
    assert!(
        matches!(out, WriteOutcome::Pending { .. }),
        "first post-heal append learns the fence: {out:?}"
    );
    let pref = catalog::preference2_no_location(PreferenceId(0), fx.users[5], &fx.ontology);
    let out = fx
        .cluster
        .write_to(0, move |bms| {
            bms.submit_preference(pref, now);
        })
        .expect("write");
    assert!(
        matches!(out, WriteOutcome::Fenced { .. }),
        "a fenced node rejects writes: {out:?}"
    );
    assert!(fx.cluster.split_brain_rejections() >= 1);

    // Anti-entropy folds the branch into the trunk.
    let report = fx.cluster.reconcile().expect("reconcile");
    assert_eq!(report.rebuilt, vec![0], "the divergent node is rebuilt");
    assert_eq!(report.merged, 1, "v's branch-only opt-out folds in");
    assert_eq!(report.notices, 1, "u's losing branch choice is re-notified");

    // Effective settings after the merge: u keeps the trunk's newer-epoch
    // coarse choice; v's opt-out (made only on the branch) survives.
    let snapshot = fx.cluster.snapshot(fx.cluster.primary());
    let marker = format!("setting:{pid}:location-sensing");
    let effect_of = |user: UserId| {
        snapshot
            .preferences
            .iter()
            .find(|p| p.user == user && p.note == marker)
            .map(|p| p.effect)
            .expect("setting-derived preference present")
    };
    assert_eq!(
        effect_of(u),
        Effect::Degrade(Granularity::Floor),
        "newer-epoch trunk choice wins LWW for u"
    );
    assert_eq!(
        effect_of(v),
        Effect::Deny,
        "branch-only opt-out is preserved by the merge"
    );

    // Convergence: identical histories and snapshots; the supersession
    // notice replicated to every node (any node u's IoTA polls re-notifies).
    let primary = fx.cluster.primary();
    let frames = fx.cluster.frames(primary).to_vec();
    let epoch = fx.cluster.node_epoch(primary);
    for i in 0..NODES {
        assert_eq!(fx.cluster.frames(i), &frames[..], "node {i} history");
        assert_eq!(fx.cluster.node_epoch(i), epoch, "node {i} epoch");
        assert_eq!(
            fx.cluster.snapshot(i),
            snapshot,
            "node {i} snapshot diverged"
        );
        assert!(
            fx.cluster.node_bms(i).audit().pending_notifications() >= 1,
            "node {i} lost the supersession notice"
        );
    }
}
