//! Group- and user-scoped policies (§IV.A.2: profiles "can be based on
//! groups (students, faculty, staff etc.) and share common properties
//! (e.g., access permissions)").

use privacy_aware_buildings::prelude::*;
use tippers::{DataRequest, SubjectSelector};
use tippers_policy::{ActionSet, BuildingPolicy, PolicyId, SubjectScope, Timestamp};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload, Occupant};

/// A BMS with one occupant per group and a WiFi row for each.
fn bms_with_groups() -> (Tippers, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let occupants: Vec<Occupant> = UserGroup::ALL
        .iter()
        .enumerate()
        .map(|(i, &g)| Occupant::new(UserId(i as u64), format!("{g}"), g))
        .collect();
    bms.register_occupants(&occupants);
    let c = ontology.concepts().clone();
    // Attendance monitoring: location sharing for analytics, but ONLY for
    // undergrads (a classic group-scoped building policy).
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Undergrad attendance analytics",
            building.building,
            c.wifi_association,
            c.analytics,
        )
        .with_actions(ActionSet::ALL)
        .with_subjects(SubjectScope::Groups(vec![UserGroup::Undergrad])),
    );
    let observations: Vec<Observation> = (0..5)
        .map(|i| Observation {
            device: DeviceId(0),
            timestamp: Timestamp::at(0, 10, 0),
            space: building.classrooms[0],
            payload: ObservationPayload::WifiAssociation {
                mac: MacAddress::for_user(i),
                ap: DeviceId(0),
            },
            subject: Some(UserId(i)),
        })
        .collect();
    bms.ingest(&observations);
    (bms, building)
}

#[test]
fn group_scoped_storage() {
    let (bms, _) = bms_with_groups();
    // Only the undergrad's row was authorized for storage.
    assert_eq!(bms.store().len(), 1);
    let stored_subject = bms.store().iter().next().unwrap().observation.subject;
    let undergrad = UserGroup::ALL
        .iter()
        .position(|&g| g == UserGroup::Undergrad)
        .unwrap() as u64;
    assert_eq!(stored_subject, Some(UserId(undergrad)));
}

#[test]
fn group_scoped_sharing() {
    let (mut bms, _) = bms_with_groups();
    let c = bms.ontology().concepts().clone();
    let request = DataRequest {
        service: ServiceId::new("Registrar"),
        purpose: c.analytics,
        data: c.location_room,
        subjects: SubjectSelector::All,
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let response = bms.handle_request(&request, Timestamp::at(0, 11, 0));
    for result in &response.results {
        let group = bms.group_of(result.user);
        if group == UserGroup::Undergrad {
            assert!(result.decision.permits(), "undergrads are in scope");
        } else {
            assert!(
                !result.decision.permits(),
                "{group}: out-of-scope groups must be denied"
            );
        }
    }
}

#[test]
fn user_scoped_policy() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let c = ontology.concepts().clone();
    let vip = UserId(42);
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Executive location service",
            building.building,
            c.location_room,
            c.navigation,
        )
        .with_actions(ActionSet::ALL)
        .with_subjects(SubjectScope::Users(vec![vip])),
    );
    let now = Timestamp::at(0, 12, 0);
    // Not even stored data is needed to see the decision difference.
    let request = |user| DataRequest {
        service: ServiceId::new("ExecApp"),
        purpose: c.navigation,
        data: c.location_room,
        subjects: SubjectSelector::One(user),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let vip_response = bms.handle_request(&request(vip), now);
    assert!(vip_response.results[0].decision.permits());
    let other_response = bms.handle_request(&request(UserId(7)), now);
    assert!(!other_response.results[0].decision.permits());
}
