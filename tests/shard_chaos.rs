//! Seeded shard-chaos harness: kill and stall shards under request storm
//! and prove the three isolation properties the sharded runtime sells —
//!
//! 1. **Zero cross-shard blast radius** — while shard `s` is down, every
//!    user on every other shard gets byte-identical answers to a
//!    fault-free control instance.
//! 2. **Zero lost committed mutations** — every policy/preference the
//!    router accepted (including while the owner shard was down) is
//!    enforced after recovery, byte-identically to the control.
//! 3. **Fail-closed during rebuild** — a down shard's subjects are
//!    denied with an audited `DecisionBasis::ShardUnavailable`, never
//!    answered from stale or half-rebuilt state.
//!
//! The suite is seed-parameterized: set `TIPPERS_FAULT_SEED` to replay
//! any schedule bit-for-bit (CI sweeps 7, 42, and 4711). Faults are
//! armed at probability 1.0 with a budget of one so the shared
//! fault-plan RNG is never drawn concurrently — the kill/stall schedule
//! itself is derived from the seed.

use privacy_aware_buildings::prelude::*;
use tippers::{
    DataRequest, DecisionBasis, EnforcementCore, FaultPoint, HealthStatus, Priority, SettingsError,
    ShardSpec, ShardedTippers, SubjectSelector, Tippers as Bms,
};
use tippers_policy::{
    ActionSet, BuildingPolicy, PolicyId, PreferenceId, PreferenceScope, Timestamp, UserGroup,
    UserPreference,
};
use tippers_sensors::Occupant;

const USERS: u64 = 48;
const SHARDS: usize = 8;

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Deterministic schedule RNG (xorshift64*), independent of the fault
/// plan's own RNG.
struct Schedule(u64);

impl Schedule {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn occupants() -> Vec<Occupant> {
    (0..USERS)
        .map(|u| Occupant::new(UserId(u), format!("occupant-{u}"), UserGroup::GradStudent))
        .collect()
}

/// A sharded instance plus an identical fault-free single-engine control.
fn pair() -> (ShardedTippers, Bms, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut sharded = ShardedTippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards: SHARDS,
            ..ShardSpec::default()
        },
    );
    let mut control = Bms::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let c = ontology.concepts().clone();
    let policy = BuildingPolicy::new(
        PolicyId(0),
        "Network logging",
        building.building,
        c.wifi_association,
        c.logging,
    )
    .with_actions(ActionSet::ALL);
    for core in [&mut sharded as &mut dyn EnforcementCore, &mut control] {
        core.register_occupants(&occupants());
        core.add_policy(policy.clone());
    }
    (sharded, control, building)
}

fn request_for(user: u64) -> DataRequest {
    let c = Ontology::standard().concepts().clone();
    DataRequest {
        service: ServiceId::new("Concierge"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(UserId(user)),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(30, 0, 0),
        requester_space: None,
        priority: Priority::Interactive,
        deadline: None,
    }
}

fn deny_pref(user: u64) -> UserPreference {
    let c = Ontology::standard().concepts().clone();
    UserPreference::new(
        PreferenceId(0),
        UserId(user),
        PreferenceScope {
            data: Some(c.wifi_association),
            ..Default::default()
        },
        Effect::Deny,
    )
}

/// A user owned by `shard` (there is one on every shard at this
/// population).
fn user_on(sharded: &ShardedTippers, shard: usize) -> u64 {
    (0..USERS)
        .find(|&u| sharded.shard_of_user(UserId(u)) == shard)
        .expect("every shard owns at least one of 48 users")
}

#[test]
fn a_panicking_shard_fails_closed_and_rebuilds_from_its_wal() {
    let (mut sharded, mut control, _b) = pair();
    let victim = user_on(&sharded, 3);
    let victim_shard = sharded.shard_of_user(UserId(victim));

    // Commit a mutation that must survive the crash.
    let now = Timestamp::at(0, 9, 0);
    sharded.submit_preference(deny_pref(victim), now);
    control.submit_preference(deny_pref(victim), now);

    // Kill the victim's shard on its next job.
    sharded
        .config_fault_plan()
        .arm_limited(FaultPoint::ShardPanic, 1.0, 1);
    let down = sharded.handle_request(&request_for(victim), Timestamp::at(0, 9, 1));
    assert!(down.degraded);
    assert_eq!(down.results.len(), 1);
    assert_eq!(
        down.results[0].decision.basis,
        DecisionBasis::ShardUnavailable
    );
    assert_eq!(down.results[0].decision.effect, Effect::Deny);
    assert!(down.results[0].records.is_empty());
    let stats = sharded.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.down, 1);
    assert_eq!(stats.unavailable_denials, 1);
    // The fail-closed denial is audited at the router.
    assert_eq!(sharded.router_audit().entries().len(), 1);

    // Blast radius: every other user answers exactly like the control,
    // while the victim shard is still quarantined.
    for u in 0..USERS {
        if sharded.shard_of_user(UserId(u)) == victim_shard {
            continue;
        }
        let got = sharded.handle_request(&request_for(u), Timestamp::at(0, 9, 1));
        let want = control.handle_request(&request_for(u), Timestamp::at(0, 9, 1));
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap(),
            "blast radius reached user {u}"
        );
    }
    assert_eq!(sharded.health(), HealthStatus::Degraded);

    // Advance virtual time past the backoff: the next request triggers a
    // WAL-replay rebuild, and the committed preference still decides.
    let later = Timestamp::at(0, 9, 10);
    let recovered = sharded.handle_request(&request_for(victim), later);
    let want = control.handle_request(&request_for(victim), later);
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&want).unwrap(),
        "committed mutation lost across rebuild"
    );
    assert_eq!(sharded.stats().restarts, 1);
    assert_eq!(sharded.stats().down, 0);
    assert_eq!(sharded.health(), HealthStatus::Healthy);
    assert_eq!(sharded.recovery_times_us().len(), 1);
}

#[test]
fn a_stalled_shard_is_quarantined_by_the_watchdog() {
    let (mut sharded, mut control, _b) = pair();
    let victim = user_on(&sharded, 5);
    sharded.submit_preference(deny_pref(victim), Timestamp::at(0, 9, 0));
    control.submit_preference(deny_pref(victim), Timestamp::at(0, 9, 0));

    sharded
        .config_fault_plan()
        .arm_limited(FaultPoint::ShardStall, 1.0, 1);
    let down = sharded.handle_request(&request_for(victim), Timestamp::at(0, 9, 1));
    assert_eq!(
        down.results[0].decision.basis,
        DecisionBasis::ShardUnavailable
    );
    assert_eq!(sharded.stats().stalls, 1);

    // The stalled op was never applied: recovery serves the pre-stall
    // state, identical to the control.
    let later = Timestamp::at(0, 9, 10);
    let recovered = sharded.handle_request(&request_for(victim), later);
    let want = control.handle_request(&request_for(victim), later);
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&want).unwrap(),
    );
    assert_eq!(sharded.stats().restarts, 1);
}

#[test]
fn restart_loss_extends_quarantine_with_doubled_backoff() {
    let (mut sharded, mut control, _b) = pair();
    let victim = user_on(&sharded, 1);
    sharded.submit_preference(deny_pref(victim), Timestamp::at(0, 9, 0));
    control.submit_preference(deny_pref(victim), Timestamp::at(0, 9, 0));

    sharded
        .config_fault_plan()
        .arm_limited(FaultPoint::ShardPanic, 1.0, 1);
    sharded.handle_request(&request_for(victim), Timestamp::at(0, 9, 1));
    // The next two rebuilds are lost mid-flight.
    sharded
        .config_fault_plan()
        .arm_limited(FaultPoint::ShardRestartLoss, 1.0, 2);

    // Backoff base is 250ms: by 9:02 the first restart is due — and lost.
    let r = sharded.handle_request(&request_for(victim), Timestamp::at(0, 9, 2));
    assert_eq!(r.results[0].decision.basis, DecisionBasis::ShardUnavailable);
    assert_eq!(sharded.stats().restart_losses, 1);
    // Second attempt after the doubled (500ms) backoff — also lost.
    let r = sharded.handle_request(&request_for(victim), Timestamp::at(0, 9, 3));
    assert_eq!(r.results[0].decision.basis, DecisionBasis::ShardUnavailable);
    assert_eq!(sharded.stats().restart_losses, 2);
    // A mutation submitted while down (still inside the doubled backoff
    // window: same virtual second as the lost restart) is queued, not
    // lost.
    let c = Ontology::standard().concepts().clone();
    let queued = UserPreference::new(
        PreferenceId(0),
        UserId(victim),
        PreferenceScope {
            purpose: Some(c.logging),
            ..Default::default()
        },
        Effect::Deny,
    );
    sharded.submit_preference(queued.clone(), Timestamp::at(0, 9, 3));
    control.submit_preference(queued, Timestamp::at(0, 9, 3));
    // Third attempt (budget exhausted) succeeds and replays the queue.
    let later = Timestamp::at(0, 9, 20);
    let recovered = sharded.handle_request(&request_for(victim), later);
    let want = control.handle_request(&request_for(victim), later);
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&want).unwrap(),
        "queued mutation lost across delayed rebuild"
    );
    let stats = sharded.stats();
    assert_eq!(stats.restarts, 1);
    assert!(
        stats.pending_replayed >= 1,
        "catch-up queue was not replayed"
    );
}

/// A worker that outlives its watchdog keeps running against its
/// abandoned engine — but its WAL handle is fenced at quarantine, so the
/// late commit never reaches the partition, the reserved preference id
/// is not consumed, and the retry after recovery assigns the very same
/// id the unsharded control does.
#[test]
fn a_slow_worker_is_fenced_and_its_setting_choice_id_is_not_reused() {
    let ontology = Ontology::standard();
    let building = dbh();
    // A short real-time watchdog: the injected slow job sleeps 2x this.
    let mut sharded = ShardedTippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards: 2,
            watchdog_ms: 50,
            ..ShardSpec::default()
        },
    );
    let mut control = Bms::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let c = ontology.concepts().clone();
    let policy = BuildingPolicy::new(
        PolicyId(0),
        "Network logging",
        building.building,
        c.wifi_association,
        c.logging,
    )
    .with_actions(ActionSet::ALL)
    .with_setting(BuildingPolicy::location_setting());
    for core in [&mut sharded as &mut dyn EnforcementCore, &mut control] {
        core.register_occupants(&occupants());
        core.add_policy(policy.clone());
    }
    let user = 0u64;

    sharded
        .config_fault_plan()
        .arm_limited(FaultPoint::ShardSlowJob, 1.0, 1);
    let got = sharded.apply_setting_choice(UserId(user), PolicyId(0), "location-sensing", 2);
    assert!(
        matches!(got, Err(SettingsError::ShardUnavailable)),
        "watchdog expiry must fail closed, got {got:?}"
    );
    assert_eq!(sharded.stats().stalls, 1);

    // Let the abandoned worker wake up and finish the job against its
    // fenced handle: the append is rejected, never written.
    std::thread::sleep(std::time::Duration::from_millis(300));
    assert!(
        sharded.stats().fenced_writes >= 1,
        "the late commit never hit the fence"
    );

    // The id the lost attempt reserved was not consumed: after recovery
    // the same choice lands under the same id as the unsharded control.
    let want = control
        .apply_setting_choice(UserId(user), PolicyId(0), "location-sensing", 2)
        .unwrap();
    let later = Timestamp::at(0, 9, 10);
    let _ = sharded.handle_request(&request_for(user), later); // restart
    assert_eq!(sharded.stats().restarts, 1);
    let id = sharded
        .apply_setting_choice(UserId(user), PolicyId(0), "location-sensing", 2)
        .unwrap();
    assert_eq!(id, want, "reserved id leaked or was reused");
    let got = sharded.handle_request(&request_for(user), later);
    let want = control.handle_request(&request_for(user), later);
    assert_eq!(
        serde_json::to_string(&got).unwrap(),
        serde_json::to_string(&want).unwrap(),
        "slow-worker chaos diverged from the control"
    );
}

/// A preference accepted while its owner shard is down is committed
/// durably through the standby engine — it survives a whole-process
/// crash during the quarantine window, and its id is never reissued.
#[test]
fn a_preference_accepted_while_down_survives_a_process_crash() {
    let dir = std::env::temp_dir().join(format!(
        "tippers-shard-crash-survive-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let ontology = Ontology::standard();
    let building = dbh();
    let spec = ShardSpec {
        shards: 2,
        ..ShardSpec::default()
    };
    let c = ontology.concepts().clone();
    let policy = BuildingPolicy::new(
        PolicyId(0),
        "Network logging",
        building.building,
        c.wifi_association,
        c.logging,
    )
    .with_actions(ActionSet::ALL);
    let victim = 0u64;
    {
        let (mut sharded, _reports) = ShardedTippers::open(
            &dir,
            ontology.clone(),
            building.model.clone(),
            TippersConfig::default(),
            spec.clone(),
        )
        .unwrap();
        sharded.register_occupants(&occupants());
        sharded.add_policy(policy.clone());
        let now = Timestamp::at(0, 9, 0);
        sharded
            .config_fault_plan()
            .arm_limited(FaultPoint::ShardPanic, 1.0, 1);
        let down = sharded.handle_request(&request_for(victim), now);
        assert_eq!(
            down.results[0].decision.basis,
            DecisionBasis::ShardUnavailable
        );
        // Accepted inside the quarantine window (same virtual second):
        // the standby engine commits it straight into the partition.
        let id = sharded.submit_preference(deny_pref(victim), now);
        assert_eq!(id, PreferenceId(0));
        assert_eq!(sharded.stats().pending_replayed, 1);
        // Whole-process crash: the runtime drops here, shard still down.
    }
    let (mut sharded, _reports) = ShardedTippers::open(
        &dir,
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        spec,
    )
    .unwrap();
    sharded.register_occupants(&occupants());
    let resp = sharded.handle_request(&request_for(victim), Timestamp::at(0, 9, 1));
    assert_eq!(resp.results[0].decision.effect, Effect::Deny);
    assert_ne!(
        resp.results[0].decision.basis,
        DecisionBasis::ShardUnavailable,
        "accepted preference did not survive the crash"
    );
    // The id allocator replays past the accepted preference.
    let next = sharded.submit_preference(deny_pref(1), Timestamp::at(0, 9, 2));
    assert_eq!(next, PreferenceId(1), "accepted-while-down id was reissued");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full storm: ten rounds of seeded kill/stall chaos over eight
/// shards under continuous mutation + request load, checked against a
/// fault-free control every round and after final recovery.
#[test]
fn seeded_storm_has_zero_blast_radius_and_loses_no_committed_mutation() {
    let seed = fault_seed();
    let (mut sharded, mut control, _b) = pair();
    let mut schedule = Schedule(seed);

    for round in 0u64..10 {
        let now = Timestamp::at(0, 10, u32::try_from(round).unwrap() * 2);

        // Continuous mutation load: one new preference per round, on a
        // schedule-chosen user (possibly one whose shard is down).
        let user = schedule.next() % USERS;
        let mut pref = deny_pref(user);
        pref.priority = 3 + (round % 5) as u8;
        sharded.submit_preference(pref.clone(), now);
        control.submit_preference(pref, now);

        // Chaos: kill or stall one schedule-chosen shard.
        let target = (schedule.next() % SHARDS as u64) as usize;
        let point = if schedule.next().is_multiple_of(2) {
            FaultPoint::ShardPanic
        } else {
            FaultPoint::ShardStall
        };
        let trigger = user_on(&sharded, target);
        sharded.config_fault_plan().arm_limited(point, 1.0, 1);
        let r = sharded.handle_request(&request_for(trigger), now);
        assert_eq!(
            r.results[0].decision.basis,
            DecisionBasis::ShardUnavailable,
            "round {round}: chaos trigger was not contained"
        );

        // Storm the whole population; healthy shards must answer
        // byte-identically to the control, down shards fail closed.
        for u in 0..USERS {
            let got = sharded.handle_request(&request_for(u), now);
            if sharded
                .shard_health(sharded.shard_of_user(UserId(u)))
                .is_up()
            {
                let want = control.handle_request(&request_for(u), now);
                assert_eq!(
                    serde_json::to_string(&got).unwrap(),
                    serde_json::to_string(&want).unwrap(),
                    "round {round}: blast radius reached user {u}"
                );
            } else {
                assert!(got.degraded);
                assert_eq!(
                    got.results[0].decision.basis,
                    DecisionBasis::ShardUnavailable
                );
                assert!(
                    got.results[0].records.is_empty(),
                    "fail-open during rebuild"
                );
            }
        }
    }

    // Let every quarantined shard recover, then prove nothing committed
    // was lost anywhere.
    let end = Timestamp::at(0, 11, 0);
    for u in 0..USERS {
        let got = sharded.handle_request(&request_for(u), end);
        let want = control.handle_request(&request_for(u), end);
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap(),
            "seed {seed}: user {u} diverged after recovery"
        );
    }
    let stats = sharded.stats();
    assert_eq!(
        stats.down, 0,
        "seed {seed}: shards still quarantined at end"
    );
    assert_eq!(
        stats.panics + stats.stalls,
        10,
        "every round injected one fault"
    );
    assert!(
        stats.unavailable_denials > 0,
        "storm never exercised fail-closed"
    );
    assert_eq!(
        u64::try_from(sharded.router_audit().entries().len()).unwrap(),
        stats.unavailable_denials,
        "every fail-closed denial must be audited"
    );
    assert_eq!(sharded.health(), HealthStatus::Healthy);
}
