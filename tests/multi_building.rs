//! Multi-building campus: two buildings with separate BMS instances and
//! IRRs on one discovery bus; an IoTA roams between them, and enforcement
//! stays consistent across the two enforcer implementations.

use privacy_aware_buildings::prelude::*;
use tippers_policy::{BuildingPolicy, PolicyId, PreferenceId, Timestamp};
use tippers_spatial::{SpaceKind, SpatialModel};

/// One campus model holding two buildings, plus each building's offices.
fn campus() -> (
    SpatialModel,
    Vec<tippers_spatial::SpaceId>,
    Vec<tippers_spatial::SpaceId>,
) {
    let mut model = SpatialModel::new("uci");
    let mut buildings = Vec::new();
    let mut offices = Vec::new();
    for name in ["DBH", "ICS"] {
        let b = model.add_space(name, SpaceKind::Building, model.root());
        let f = model.add_space(format!("{name}-1"), SpaceKind::Floor, b);
        let o = model.add_space(
            format!("{name}-101"),
            SpaceKind::room(tippers_spatial::RoomUse::Office),
            f,
        );
        buildings.push(b);
        offices.push(o);
    }
    (model, buildings, offices)
}

#[test]
fn roaming_iota_sees_each_buildings_policies() {
    let ontology = Ontology::standard();
    let (model, buildings, offices) = campus();

    // Each building runs its own BMS with different policies and its own
    // IRR on the shared discovery bus.
    let mut bus = DiscoveryBus::new(NetworkConfig::default());
    let now = Timestamp::at(0, 8, 0);
    let mut registries = Vec::new();
    for (i, &building) in buildings.iter().enumerate() {
        let mut bms = Tippers::new(ontology.clone(), model.clone(), TippersConfig::default());
        let mut policy = catalog::policy2_emergency_location(PolicyId(0), building, &ontology);
        policy.name = format!("Location tracking in building {i}");
        bms.add_policy(policy);
        let irr = bus.add_registry(format!("irr-{i}"), building);
        bms.publish_policies(&mut bus, irr, now).unwrap();
        registries.push(irr);
    }

    let mut iota = Iota::new(
        UserId(1),
        UserGroup::Faculty,
        SensitivityProfile::fundamentalist(&ontology),
    );
    // In DBH the IoTA sees only DBH's policy...
    let ads0 = iota.poll(&bus, &model, offices[0], now);
    assert_eq!(ads0.len(), 1);
    assert!(ads0[0].1.document.resources[0]
        .info
        .name
        .contains("building 0"));
    let n0 = iota.review(&ads0, &ontology, now);
    assert_eq!(n0.len(), 1);
    // ...walking to ICS it discovers that building's registry and gets a
    // *new* notification (different advertisement).
    let ads1 = iota.poll(&bus, &model, offices[1], now + 600);
    assert_eq!(ads1.len(), 1);
    assert!(ads1[0].1.document.resources[0]
        .info
        .name
        .contains("building 1"));
    let n1 = iota.review(&ads1, &ontology, now + 600);
    assert_eq!(n1.len(), 1);
    // Returning to DBH is quiet: the advertisement was already seen.
    let again = iota.poll(&bus, &model, offices[0], now + 1200);
    assert!(iota.review(&again, &ontology, now + 1200).is_empty());
}

/// The facade produces identical responses under both enforcer kinds —
/// D1's equivalence, checked at the whole-system level rather than the
/// unit level.
#[test]
fn facade_equivalent_under_both_enforcers() {
    let ontology = Ontology::standard();
    let building = dbh();
    let run = |kind: EnforcerKind| {
        let mut bms = Tippers::new(
            ontology.clone(),
            building.model.clone(),
            TippersConfig {
                enforcer: kind,
                ..TippersConfig::default()
            },
        );
        bms.add_policy(catalog::policy2_emergency_location(
            PolicyId(0),
            building.building,
            &ontology,
        ));
        bms.add_policy(
            BuildingPolicy::new(
                PolicyId(0),
                "Concierge location",
                building.building,
                ontology.concepts().location_room,
                ontology.concepts().navigation,
            )
            .with_actions(tippers_policy::ActionSet::ALL)
            .with_service(catalog::services::concierge()),
        );
        for user in 0..6u64 {
            if user % 2 == 0 {
                bms.submit_preference(
                    catalog::preference2_no_location(PreferenceId(0), UserId(user), &ontology),
                    Timestamp::at(0, 8, 0),
                );
            }
            if user % 3 == 0 {
                bms.submit_preference(
                    catalog::preference3_concierge_location(
                        PreferenceId(0),
                        UserId(user),
                        &ontology,
                    ),
                    Timestamp::at(0, 8, 0),
                );
            }
        }
        let c = ontology.concepts();
        let mut decisions = Vec::new();
        for user in 0..6u64 {
            for (purpose, service) in [
                (c.navigation, catalog::services::concierge()),
                (c.delivery, catalog::services::food_delivery()),
                (c.emergency_response, catalog::services::emergency()),
            ] {
                let request = tippers::DataRequest {
                    service,
                    purpose,
                    data: c.location_room,
                    subjects: tippers::SubjectSelector::One(UserId(user)),
                    from: Timestamp::at(0, 0, 0),
                    to: Timestamp::at(1, 0, 0),
                    requester_space: None,
                    priority: Default::default(),
                    deadline: None,
                };
                let response = bms.handle_request(&request, Timestamp::at(0, 12, 0));
                decisions.push(response.results[0].decision.clone());
            }
        }
        decisions
    };
    assert_eq!(run(EnforcerKind::Naive), run(EnforcerKind::Indexed));
}
