//! Recovery fuzz harness for the write-ahead log.
//!
//! A seeded workload of 200+ BMS mutations (policy publishes and
//! retractions, preference submissions, retroactive purges, ingest
//! batches, retention sweeps, checkpoints) runs against an in-memory log
//! whose directory is deep-copied after every mutation. The harness then
//! simulates a crash at every one of those record boundaries — plus torn
//! cuts and bit flips *inside* the final record — and asserts that every
//! recovered BMS equals the in-memory state at exactly that prefix, that
//! corrupt tails are truncated and counted (never silently accepted, and
//! never an error), and that post-recovery enforcement decisions are
//! identical to an uncrashed run of the same prefix.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (CI runs 7, 42 and 4711).

use privacy_aware_buildings::prelude::*;
use tippers::wal::{record_boundaries, MemLog};
use tippers::{DataRequest, DecisionBasis, FaultPlan, FaultPoint, RecoveryReport, StoredRow};
use tippers_bench::{apply_mutation, gen_mutations, Mutation};
use tippers_policy::{BuildingPolicy, UserPreference};
use tippers_sensors::Occupant;
use tippers_spatial::fixtures::Dbh;

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

struct Fixture {
    ontology: Ontology,
    building: Dbh,
    occupants: Vec<Occupant>,
    mutations: Vec<Mutation>,
}

fn fixture(n: usize) -> Fixture {
    let ontology = Ontology::standard();
    let (building, occupants, mutations) = gen_mutations(n, &ontology, fault_seed());
    Fixture {
        ontology,
        building,
        occupants,
        mutations,
    }
}

/// The durable state the log is accountable for. Occupant registration is
/// administrative configuration the operator re-applies on startup, like
/// the ontology and spatial model, so it is deliberately absent.
type DurableState = (Vec<StoredRow>, Vec<UserPreference>, Vec<BuildingPolicy>);

fn durable_state(bms: &Tippers) -> DurableState {
    (
        bms.store().iter().cloned().collect(),
        bms.preferences().to_vec(),
        bms.policies().to_vec(),
    )
}

fn recover(log: &MemLog, fx: &Fixture) -> (Tippers, RecoveryReport) {
    Tippers::open_with(
        Box::new(log.clone()),
        fx.ontology.clone(),
        fx.building.model.clone(),
        TippersConfig::default(),
    )
    .expect("recovery must never error on a crashed log")
}

/// An uncrashed, non-durable BMS that applied exactly `prefix` mutations —
/// the reference the recovered instance must be indistinguishable from.
fn reference_at(fx: &Fixture, prefix: usize) -> Tippers {
    let mut bms = Tippers::new(
        fx.ontology.clone(),
        fx.building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(&fx.occupants);
    for m in &fx.mutations[..prefix] {
        apply_mutation(&mut bms, m);
    }
    bms
}

/// Every (permit, basis) outcome for a grid of emergency-locate and
/// concierge-navigation requests over all occupants.
fn decision_grid(bms: &mut Tippers, fx: &Fixture, now: Timestamp) -> Vec<(bool, DecisionBasis)> {
    let c = fx.ontology.concepts().clone();
    let mut out = Vec::new();
    for occupant in &fx.occupants {
        for (service, purpose, data) in [
            (
                catalog::services::emergency(),
                c.emergency_response,
                c.wifi_association,
            ),
            (catalog::services::concierge(), c.navigation, c.location),
        ] {
            let request = DataRequest {
                service,
                purpose,
                data,
                subjects: SubjectSelector::One(occupant.user),
                from: Timestamp::at(0, 8, 0),
                to: now,
                requester_space: None,
                priority: Default::default(),
                deadline: None,
            };
            let response = bms.handle_request(&request, now);
            let result = &response.results[0];
            out.push((result.decision.permits(), result.decision.basis.clone()));
        }
    }
    out
}

fn total_bytes(log: &MemLog) -> usize {
    log.file_names()
        .iter()
        .filter_map(|n| log.file_bytes(n))
        .map(|b| b.len())
        .sum()
}

fn current_segment(log: &MemLog) -> String {
    log.file_names()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .max()
        .expect("log has a current segment")
}

/// Runs the full workload against a fresh durable BMS, deep-copying the
/// log directory and capturing the in-memory state after every mutation.
fn run_workload(fx: &Fixture) -> (Vec<MemLog>, Vec<DurableState>) {
    let log = MemLog::new();
    let (mut bms, report) = recover(&log, fx);
    assert_eq!(report.records_replayed, 0);
    assert!(bms.wal_enabled());
    bms.register_occupants(&fx.occupants);

    let mut copies = vec![log.deep_copy()];
    let mut expected = vec![durable_state(&bms)];
    for m in &fx.mutations {
        apply_mutation(&mut bms, m);
        copies.push(log.deep_copy());
        expected.push(durable_state(&bms));
    }
    assert_eq!(bms.wal_append_failures(), 0, "clean run loses no appends");
    let peak_rows = expected.iter().map(|s| s.0.len()).max().unwrap_or(0);
    assert!(
        peak_rows > 50,
        "workload must actually store rows (peak {peak_rows})"
    );
    assert!(bms.preferences().len() > 10);
    (copies, expected)
}

#[test]
fn crash_after_every_record_boundary_recovers_exact_prefix_state() {
    let fx = fixture(220);
    assert!(fx.mutations.len() >= 200, "acceptance floor: 200 mutations");
    let (copies, expected) = run_workload(&fx);

    for (i, (copy, want)) in copies.iter().zip(&expected).enumerate() {
        // Every append is synced before the mutation returns, so a crash
        // here loses nothing — and recovery must prove it.
        copy.crash();
        let (recovered, report) = recover(copy, &fx);
        assert_eq!(report.truncated_tails, 0, "boundary {i}");
        assert_eq!(recovered.wal_truncations(), 0, "boundary {i}");
        assert_eq!(&durable_state(&recovered), want, "boundary {i}");
        assert!(
            recovered.store().index_consistent(),
            "boundary {i}: dangling subject index after recovery"
        );
    }

    // Post-recovery enforcement decisions are identical to an uncrashed
    // run of the same prefix — at the midpoint and at the full workload.
    let now = Timestamp::at(1, 0, 0);
    for prefix in [copies.len() / 2, copies.len() - 1] {
        let mut reference = reference_at(&fx, prefix);
        let (mut recovered, _) = recover(&copies[prefix], &fx);
        recovered.register_occupants(&fx.occupants);
        assert_eq!(
            decision_grid(&mut reference, &fx, now),
            decision_grid(&mut recovered, &fx, now),
            "decision divergence after recovering prefix {prefix}"
        );
    }
}

#[test]
fn torn_and_corrupt_tails_truncate_to_previous_boundary() {
    let fx = fixture(220);
    let (copies, expected) = run_workload(&fx);

    let mut torn_checked = 0usize;
    let mut flips_checked = 0usize;
    for i in 1..copies.len() {
        // Only mutations that appended a record have a tail to tear;
        // checkpoints rewrite segments wholesale and are covered by the
        // wal module's own compaction-crash tests.
        if matches!(fx.mutations[i - 1], Mutation::Checkpoint)
            || total_bytes(&copies[i]) <= total_bytes(&copies[i - 1])
        {
            continue;
        }
        let name = current_segment(&copies[i]);
        let bytes = copies[i].file_bytes(&name).expect("segment exists");
        let bounds = record_boundaries(&bytes);
        let last_end = *bounds.last().expect("segment has records");
        assert_eq!(last_end, bytes.len(), "clean run leaves no garbage");
        let last_start = if bounds.len() >= 2 {
            bounds[bounds.len() - 2]
        } else {
            0
        };

        // A crash mid-write: cut inside the final record's header, early
        // payload, middle, and one byte short of complete.
        let mut cuts = vec![
            last_start + 1,
            last_start + 5,
            last_start + (last_end - last_start) / 2,
            last_end - 1,
        ];
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            if cut <= last_start || cut >= last_end {
                continue;
            }
            let tampered = copies[i].deep_copy();
            tampered.set_file(&name, bytes[..cut].to_vec());
            let (recovered, report) = recover(&tampered, &fx);
            assert_eq!(
                durable_state(&recovered),
                expected[i - 1],
                "cut at byte {cut} of mutation {}: recovery must land on the previous boundary",
                i - 1
            );
            assert_eq!(report.truncated_tails, 1, "cut at {cut}");
            assert!(report.bytes_discarded > 0);
            assert!(report.corruption.is_some());
            assert_eq!(
                recovered.wal_truncations(),
                1,
                "the truncation must surface on the BMS's audit counter"
            );
            assert!(recovered.store().index_consistent());
            torn_checked += 1;
        }

        // Bit rot inside the final record.
        let mut flipped = bytes.clone();
        let pos = last_start + (last_end - last_start) / 2;
        flipped[pos] ^= 0x20;
        let tampered = copies[i].deep_copy();
        tampered.set_file(&name, flipped);
        let (recovered, report) = recover(&tampered, &fx);
        assert_eq!(
            durable_state(&recovered),
            expected[i - 1],
            "flip at byte {pos} of mutation {} went undetected",
            i - 1
        );
        assert!(report.truncated_tails >= 1);
        assert!(recovered.wal_truncations() >= 1);
        flips_checked += 1;
    }
    assert!(torn_checked >= 100, "torn-tail coverage: {torn_checked}");
    assert!(flips_checked >= 50, "bit-flip coverage: {flips_checked}");
}

#[test]
fn injected_storage_faults_recover_to_a_prefix_state() {
    let fx = fixture(220);
    let plan = FaultPlan::seeded(fault_seed());
    plan.arm(FaultPoint::WalSyncDrop, 0.15);
    plan.arm_limited(FaultPoint::WalAppendTorn, 0.05, 2);
    plan.arm(FaultPoint::WalSegmentRename, 0.3);

    let log = MemLog::new();
    let (mut bms, _) = Tippers::open_with(
        Box::new(log.clone()),
        fx.ontology.clone(),
        fx.building.model.clone(),
        TippersConfig {
            fault_plan: plan.clone(),
            ..TippersConfig::default()
        },
    )
    .expect("open");
    bms.register_occupants(&fx.occupants);

    let mut expected = vec![durable_state(&bms)];
    for m in &fx.mutations {
        apply_mutation(&mut bms, m);
        expected.push(durable_state(&bms));
    }
    assert!(
        plan.injected(FaultPoint::WalSyncDrop) > 0,
        "the sync-drop fault must actually have fired"
    );

    // Crash with faulty storage underneath: whatever survives must be
    // *some* prefix of the run — never a mix, never fabricated state.
    log.crash();
    let (recovered, _report) = recover(&log, &fx);
    let state = durable_state(&recovered);
    let prefix = expected
        .iter()
        .position(|s| *s == state)
        .unwrap_or_else(|| {
            panic!(
                "recovered state ({} rows, {} prefs, {} policies) matches no prefix of the run",
                state.0.len(),
                state.1.len(),
                state.2.len()
            )
        });
    assert!(recovered.store().index_consistent());

    // And the recovered prefix behaves exactly like an uncrashed run that
    // stopped there.
    let mut reference = reference_at(&fx, prefix);
    let mut recovered = recovered;
    recovered.register_occupants(&fx.occupants);
    let now = Timestamp::at(1, 0, 0);
    assert_eq!(
        decision_grid(&mut reference, &fx, now),
        decision_grid(&mut recovered, &fx, now),
        "decision divergence after faulty-storage recovery at prefix {prefix}"
    );
}
