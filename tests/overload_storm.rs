//! Overload storm harness: seeded, bursty open-loop load against the
//! admission-controlled enforcement point, plus slow-consumer and
//! packet-loss legs on the discovery plane.
//!
//! The invariants under a 4× overload storm:
//!
//! * **Emergency is never shed** — life-safety traffic bypasses every
//!   limiter.
//! * **Every shed fails closed** — a typed `DecisionBasis::Overload`
//!   denial, audited, zero records released, response flagged degraded.
//!   Overload never masquerades as a policy decision and never releases
//!   data.
//! * **Goodput holds** — admitted throughput stays within 70% of the
//!   configured admission capacity even when offered 4× that.
//! * **Queues stay bounded** — the IRR fetch mailbox never exceeds its
//!   configured capacity; excess load is pushed back, not buffered.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (CI runs 7, 42 and 4711).

use privacy_aware_buildings::prelude::*;
use tippers::wal::MemLog;
use tippers::{
    AdmissionConfig, AimdConfig, BrownoutLevel, DecisionBasis, Priority, TokenBucketConfig,
};
use tippers::{
    CaptureDropReason, CaptureFilter, FaultPlan, FaultPoint, IngestConfig, Nemesis, StoredRow,
    VirtualClock,
};
use tippers_bench::{gen_policies, gen_storm, service_pool, Lcg, StormConfig};
use tippers_irr::NetError;
use tippers_policy::{PreferenceScope, UserPreference};
use tippers_sensors::{
    DeviceId, LinkConfig, Observation, ObservationPayload, Occupant, SensorLink,
};

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

const USERS: usize = 10;
const STORM_DURATION_SECS: i64 = 120;

/// Admission sized so the default storm offers roughly 4× its capacity:
/// the storm's mean arrival rate is ~21/s against a 5/s refill.
fn admission() -> AdmissionConfig {
    AdmissionConfig {
        bucket: TokenBucketConfig {
            capacity: 32.0,
            refill_per_sec: 5.0,
        },
        aimd: AimdConfig::default(),
        batch_reserve: 0.25,
        service_time_ms: 5.0,
    }
}

fn storm_bms(admission: Option<AdmissionConfig>) -> Tippers {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            admission,
            // The retention sweeper rides the storm: the virtual-time
            // schedule fires from the request path even under overload.
            sweep_every_secs: Some(60),
            ..TippersConfig::default()
        },
    );
    let occupants: Vec<Occupant> = (0..USERS as u64)
        .map(|u| Occupant::new(UserId(u), format!("user-{u}"), UserGroup::GradStudent))
        .collect();
    bms.register_occupants(&occupants);
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        bms.ontology(),
    ));
    for p in gen_policies(12, &ontology, &building, &service_pool(3), 11) {
        bms.add_policy(p);
    }
    // Short-retention rows already expired when the storm starts at 9:00:
    // the first scheduled sweep must reap and certify them mid-storm.
    let c = ontology.concepts().clone();
    bms.add_policy(
        tippers_policy::BuildingPolicy::new(
            PolicyId(0),
            "Storm metering",
            building.building,
            c.power_consumption,
            c.energy_management,
        )
        .with_actions(tippers_policy::ActionSet::ALL)
        .with_retention("PT1H".parse().unwrap()),
    );
    let expired: Vec<tippers_sensors::Observation> = (0..USERS as u64)
        .map(|u| tippers_sensors::Observation {
            device: tippers_sensors::DeviceId(u as u32),
            timestamp: Timestamp::at(0, 6, 0),
            space: building.offices[0],
            payload: tippers_sensors::ObservationPayload::PowerReading { watts: 100.0 },
            subject: Some(UserId(u)),
        })
        .collect();
    assert_eq!(bms.ingest(&expired).0, USERS);
    bms
}

#[test]
fn storm_sheds_fail_closed_and_emergency_survives() {
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let start = Timestamp::at(0, 9, 0);
    let storm = gen_storm(
        StormConfig {
            seed,
            duration_secs: STORM_DURATION_SECS,
            ..StormConfig::default()
        },
        &ontology,
        USERS,
        start,
    );
    let offered = storm.len();
    let config = admission();
    let capacity =
        config.bucket.capacity + config.bucket.refill_per_sec * STORM_DURATION_SECS as f64;
    assert!(
        offered as f64 >= 3.5 * capacity,
        "storm must offer ~4x admission capacity: offered {offered}, capacity {capacity}"
    );

    let mut bms = storm_bms(Some(config));
    let mut goodput = 0usize;
    let mut sheds = 0usize;
    let mut max_level = BrownoutLevel::Normal;
    for arrival in &storm {
        let response = bms.handle_request(&arrival.request, arrival.at);
        assert!(
            !response.results.is_empty(),
            "every request is answered, even when shed"
        );
        let shed = response
            .results
            .iter()
            .any(|r| r.decision.basis == DecisionBasis::Overload);
        if shed {
            sheds += 1;
            assert_ne!(
                arrival.request.priority,
                Priority::Emergency,
                "Emergency must never be shed (seed {seed})"
            );
            assert!(response.degraded, "shed responses are flagged degraded");
            for r in &response.results {
                assert_eq!(r.decision.basis, DecisionBasis::Overload);
                assert_eq!(r.decision.effect, Effect::Deny, "sheds fail closed");
                assert!(r.records.is_empty(), "sheds never release data");
            }
        } else {
            goodput += 1;
        }
        max_level = max_level.max(bms.brownout_level());
    }

    let stats = bms.admission_stats().expect("admission is configured");
    assert_eq!(
        stats.shed_for(Priority::Emergency),
        0,
        "zero Emergency sheds (seed {seed})"
    );
    assert!(sheds > 0, "a 4x storm must shed something");
    assert_eq!(goodput + sheds, offered);
    assert!(
        goodput as f64 >= 0.7 * capacity,
        "goodput {goodput} under 4x overload must hold >= 70% of capacity {capacity} (seed {seed})"
    );
    // Priority shedding: Batch is shed at least as aggressively as
    // Interactive (the batch reserve refuses Batch while Interactive
    // still gets tokens).
    let shed_rate = |p: Priority| {
        let total = stats.admitted_for(p) + stats.shed_for(p);
        stats.shed_for(p) as f64 / total.max(1) as f64
    };
    assert!(
        shed_rate(Priority::Batch) >= shed_rate(Priority::Interactive),
        "Batch must shed first (seed {seed})"
    );
    // The brownout ladder engaged and its escalations were audited as
    // health degradation, not hidden.
    assert!(
        max_level > BrownoutLevel::Normal,
        "a 4x storm must engage the brownout ladder (seed {seed})"
    );
    // Every shed produced a typed Overload audit record.
    let audited_sheds = bms
        .audit()
        .entries()
        .iter()
        .filter(|e| e.basis == DecisionBasis::Overload)
        .count();
    assert_eq!(audited_sheds, sheds, "every shed is audited (seed {seed})");
    // The scheduled retention sweeper kept running under overload: the
    // expired pre-storm rows were reaped and certified mid-storm, and the
    // tamper-evident journal stayed intact.
    assert!(
        bms.deletion_certificates()
            .iter()
            .map(|cert| cert.rows)
            .sum::<u64>()
            >= USERS as u64,
        "the storm must not starve the sweep schedule (seed {seed})"
    );
    assert!(!bms.sweep_in_progress());
    bms.verify_audit_chain()
        .expect("chain stays verifiable under overload");
}

#[test]
fn expired_deadlines_are_dropped_fail_closed() {
    let mut bms = storm_bms(Some(admission()));
    let ontology = Ontology::standard();
    let c = ontology.concepts();
    let now = Timestamp::at(0, 9, 0);
    let request = DataRequest {
        service: ServiceId::new("svc-late"),
        purpose: c.comfort,
        data: c.location_room,
        subjects: SubjectSelector::One(UserId(1)),
        from: Timestamp(now.seconds() - 3600),
        to: Timestamp(now.seconds() + 1),
        requester_space: None,
        priority: Priority::Interactive,
        deadline: Some(Timestamp(now.seconds() - 1)),
    };
    let response = bms.handle_request(&request, now);
    assert!(response.degraded);
    assert_eq!(response.results.len(), 1);
    assert_eq!(response.results[0].decision.basis, DecisionBasis::Overload);
    assert_eq!(response.results[0].decision.effect, Effect::Deny);
    assert!(response.results[0].records.is_empty());
    let stats = bms.admission_stats().unwrap();
    assert_eq!(stats.shed_for(Priority::Interactive), 1);
}

#[test]
fn without_admission_nothing_is_shed() {
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let start = Timestamp::at(0, 9, 0);
    let storm = gen_storm(
        StormConfig {
            seed,
            duration_secs: 30,
            ..StormConfig::default()
        },
        &ontology,
        USERS,
        start,
    );
    let mut bms = storm_bms(None);
    for arrival in &storm {
        let response = bms.handle_request(&arrival.request, arrival.at);
        assert!(response
            .results
            .iter()
            .all(|r| r.decision.basis != DecisionBasis::Overload));
    }
    assert!(bms.admission_stats().is_none());
    assert_eq!(bms.brownout_level(), BrownoutLevel::Normal);
}

/// Slow-consumer leg: a registry that drains fetches slowly pushes back
/// instead of queueing without bound, and the queue depth never exceeds
/// the configured capacity.
#[test]
fn slow_consumer_registry_keeps_queue_bounded() {
    let seed = fault_seed();
    let building = dbh();
    let mut bus = DiscoveryBus::new(NetworkConfig {
        seed,
        fetch_queue_capacity: 8,
        fetch_service_ms: 500.0,
        ..NetworkConfig::default()
    });
    let irr = bus.add_registry("DBH IRR", building.building);
    bus.registry_mut(irr)
        .unwrap()
        .publish(
            tippers_policy::figures::fig2_document(),
            building.building,
            Timestamp::at(0, 8, 0),
            86_400,
        )
        .unwrap();
    let t0 = Timestamp::at(0, 9, 0);
    let mut rejected = 0usize;
    let mut served = 0usize;
    // A same-instant burst of 50 fetches against a consumer that drains
    // two per second.
    for _ in 0..50 {
        match bus.fetch_near(irr, &building.model, building.offices[0], t0) {
            Ok(_) => served += 1,
            Err(NetError::Backpressure(_)) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
        let depth = bus.fetch_queue_depth(irr, t0).unwrap();
        assert!(depth <= 8, "queue depth {depth} exceeded its bound");
    }
    assert_eq!(served, 8, "only the mailbox capacity is accepted at once");
    assert_eq!(rejected, 42, "the rest is pushed back, not buffered");
    assert_eq!(bus.stats().rejected, 42);
    // Virtual time drains the queue: the same client succeeds later.
    let later = t0 + 30;
    assert!(bus
        .fetch_near(irr, &building.model, building.offices[0], later)
        .is_ok());
}

/// Slow-consumer IoTA leg: an assistant polling a backpressured registry
/// falls back to its cached advertisements instead of failing its user.
#[test]
fn backpressured_iota_serves_cached_advertisements() {
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bus = DiscoveryBus::new(NetworkConfig {
        seed,
        fetch_queue_capacity: 2,
        fetch_service_ms: 2_000.0,
        ..NetworkConfig::default()
    });
    let irr = bus.add_registry("DBH IRR", building.building);
    bus.registry_mut(irr)
        .unwrap()
        .publish(
            tippers_policy::figures::fig2_document(),
            building.building,
            Timestamp::at(0, 8, 0),
            86_400,
        )
        .unwrap();
    let mut iota = Iota::new(
        UserId(1),
        UserGroup::GradStudent,
        SensitivityProfile::pragmatist(&ontology),
    );
    let t0 = Timestamp::at(0, 9, 0);
    // First poll fills the cache (the queue has room).
    let fresh = iota.poll(&bus, &building.model, building.offices[0], t0);
    assert!(!fresh.is_empty(), "first poll fetches fresh ads");
    // Saturate the registry's mailbox with a burst of direct fetches.
    while bus
        .fetch_near(irr, &building.model, building.offices[0], t0)
        .is_ok()
    {}
    // The IoTA's own fetch is now pushed back; its retries stay at the
    // same virtual instant, so it must serve from cache instead.
    let under_pressure = iota.poll(&bus, &building.model, building.offices[0], t0 + 1);
    assert_eq!(
        under_pressure.len(),
        fresh.len(),
        "backpressured poll serves cached advertisements"
    );
    assert!(iota.poll_stats().cache_fallbacks > 0);
}

/// Packet-loss leg: the storm's discovery plane loses 30% of fetches on
/// top of a bounded mailbox; polls across advancing time still make
/// progress and the queue bound still holds.
#[test]
fn lossy_bounded_discovery_still_makes_progress() {
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let building = dbh();
    let plan = FaultPlan::seeded(seed).with_fault(FaultPoint::RegistryFetch, 0.3);
    let mut bus = DiscoveryBus::with_fault_plan(
        NetworkConfig {
            seed,
            fetch_queue_capacity: 16,
            fetch_service_ms: 100.0,
            ..NetworkConfig::default()
        },
        plan,
    );
    let irr = bus.add_registry("DBH IRR", building.building);
    bus.registry_mut(irr)
        .unwrap()
        .publish(
            tippers_policy::figures::fig2_document(),
            building.building,
            Timestamp::at(0, 8, 0),
            86_400,
        )
        .unwrap();
    let mut iota = Iota::new(
        UserId(1),
        UserGroup::GradStudent,
        SensitivityProfile::pragmatist(&ontology),
    );
    let t0 = Timestamp::at(0, 9, 0);
    let mut rounds_with_ads = 0usize;
    for i in 0..40i64 {
        let now = t0 + i * 5;
        if !iota
            .poll(&bus, &building.model, building.offices[0], now)
            .is_empty()
        {
            rounds_with_ads += 1;
        }
        let depth = bus.fetch_queue_depth(irr, now).unwrap();
        assert!(depth <= 16, "queue depth {depth} exceeded its bound");
    }
    assert!(
        rounds_with_ads >= 30,
        "lossy + bounded discovery still served {rounds_with_ads}/40 rounds (seed {seed})"
    );
}

/// Sensor-firehose leg: an observation storm offered at 4× the capture
/// pipeline's mailbox capacity, through a bounded sensor link with capped
/// retry, while the capture nemesis interleaves torn group commits, link
/// drops and fsync stalls. The invariants mirror the request-path storm:
///
/// * **Queues stay bounded** — the link and every per-zone mailbox hold
///   their configured caps; overload becomes audited drops, not memory.
/// * **Zero raw stores** — no stored row violates the capture filter,
///   and identity-bearing rows never land outside the Emergency subtree
///   while the ladder is engaged.
/// * **Emergency zones are never degraded** — no ladder suppression
///   inside the Required emergency policy's subtree, and its rows keep
///   full fidelity.
/// * **Goodput holds** — ≥ 70% of admitted observations are durably
///   stored despite the ladder and the nemesis.
#[test]
fn sensor_firehose_degrades_on_the_ladder_and_stores_no_raw_rows() {
    const MAILBOX: usize = 32;
    const ROUNDS: usize = 40;
    const OVERLOAD: usize = 4;
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts().clone();
    let plan = FaultPlan::seeded(seed);
    let mut nemesis = Nemesis::new(seed, 1, plan.clone(), VirtualClock::new());

    let log = MemLog::new();
    let (mut bms, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            ingest: Some(IngestConfig {
                mailbox_capacity: MAILBOX,
                batch_max: 16,
                ..IngestConfig::default()
            }),
            fault_plan: plan.clone(),
            ..TippersConfig::default()
        },
    )
    .expect("open");
    let occupants: Vec<Occupant> = (0..USERS as u64)
        .map(|u| Occupant::new(UserId(u), format!("user-{u}"), UserGroup::GradStudent))
        .collect();
    bms.register_occupants(&occupants);
    // Everything is storable (the ladder, not authorization, is under
    // test); the Required emergency policy covers only floor 0, so its
    // subtree is essential and the rest of the building degrades.
    bms.add_policy(
        tippers_policy::BuildingPolicy::new(
            PolicyId(0),
            "Firehose telemetry baseline",
            building.building,
            c.data,
            c.logging,
        )
        .with_actions(tippers_policy::ActionSet::of(&[
            tippers_policy::DataAction::Collect,
            tippers_policy::DataAction::Store,
        ]))
        .with_retention("PT4H".parse().unwrap())
        .with_modality(tippers_policy::Modality::OptOut),
    );
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.floors[0],
        &ontology,
    ));
    // Occupant 0 opts out of location capture: their MAC must never be
    // stored, raw stream or not.
    bms.submit_preference(
        UserPreference::new(
            PreferenceId(7_000),
            occupants[0].user,
            PreferenceScope {
                data: Some(c.location),
                ..PreferenceScope::default()
            },
            Effect::Deny,
        ),
        Timestamp::at(0, 8, 0),
    );
    let macs: std::collections::HashMap<UserId, tippers_sensors::MacAddress> =
        occupants.iter().map(|o| (o.user, o.mac)).collect();
    let filter = CaptureFilter::derive(&ontology, bms.policies(), bms.preferences(), &macs);
    assert_eq!(filter.suppressed_macs(), [occupants[0].mac]);

    // One essential zone (floor 0) and three that must degrade.
    let essential_zone = building.offices[0];
    assert!(filter.essential_zone(&building.model, essential_zone));
    let degraded_zones: Vec<_> = building
        .offices
        .iter()
        .copied()
        .filter(|&z| !filter.essential_zone(&building.model, z))
        .take(3)
        .collect();
    assert_eq!(degraded_zones.len(), 3);
    let zones: Vec<_> = std::iter::once(essential_zone)
        .chain(degraded_zones.iter().copied())
        .collect();

    // ~20% of the stream carries identity (camera frames, WiFi MACs —
    // including the suppressed one); the rest is essential telemetry.
    let mut lcg = Lcg(seed ^ 0xF1DE);
    let mut link = SensorLink::with_fault_plan(
        LinkConfig {
            capacity: zones.len() * MAILBOX * OVERLOAD * 2,
            max_attempts: 3,
        },
        plan.clone(),
    );
    let mut offered: Vec<Observation> = Vec::new();
    let mut pipeline_offered = 0u64;
    for round in 0..ROUNDS {
        if round % 4 == 0 {
            let _ = nemesis.storm_step();
        }
        let t0 = Timestamp::at(0, 9, 0) + (round as i64) * 10;
        let mut burst = Vec::new();
        for &zone in &zones {
            for i in 0..MAILBOX * OVERLOAD {
                let t = t0 + i as i64 % 10;
                let who = &occupants[1 + lcg.below(occupants.len() - 1)];
                let payload = match lcg.below(10) {
                    0 => ObservationPayload::CameraFrame {
                        occupant_count: 1 + lcg.below(4) as u32,
                        identified: vec![who.user],
                    },
                    1 => ObservationPayload::WifiAssociation {
                        mac: if lcg.below(4) == 0 {
                            occupants[0].mac
                        } else {
                            who.mac
                        },
                        ap: DeviceId(40),
                    },
                    2..=5 => ObservationPayload::Temperature {
                        celsius: 20.0 + lcg.unit(),
                    },
                    _ => ObservationPayload::Motion {
                        detected: lcg.below(2) == 0,
                    },
                };
                burst.push(Observation {
                    device: DeviceId(41),
                    timestamp: t,
                    space: zone,
                    payload,
                    subject: None,
                });
            }
        }
        offered.extend(burst.iter().cloned());
        link.offer(burst);
        link.pump(|sent| {
            pipeline_offered += sent.len() as u64;
            bms.ingest_batched(&sent, round as i64).rejected
        });
        // Bounded everywhere, every round.
        let pipeline = bms.ingest_pipeline().unwrap();
        assert_eq!(pipeline.max_depth(), 0, "mailboxes drain within the call");
        for (_, mb) in pipeline.mailbox_stats() {
            assert!(mb.high_watermark <= MAILBOX, "mailbox bound violated");
        }
        assert!(link.depth() <= link.config().capacity);
    }
    nemesis.quiesce();

    let stats = bms.ingest_stats().unwrap();
    // The storm really offered ~4× what the bounded pipeline admitted.
    assert!(
        pipeline_offered >= 3 * stats.admitted,
        "storm must overload the pipeline: offered {pipeline_offered}, admitted {} (seed {seed})",
        stats.admitted
    );
    assert!(
        stats.admitted as usize >= ROUNDS * zones.len() * MAILBOX / 2,
        "the pipeline must keep admitting under the nemesis: {} (seed {seed})",
        stats.admitted
    );
    // The ladder engaged: suppress-rung observations and audited
    // degradation drops exist.
    assert!(
        stats.rung_observations[2] > 0,
        "a 4x firehose must reach the suppress rung (seed {seed})"
    );
    assert!(stats.suppressed > 0);

    // Zero raw stores: nothing the capture filter suppresses was stored,
    // and identity-bearing rows only ever landed in the essential subtree
    // (every degraded zone ran at the suppress rung throughout).
    let rows: Vec<StoredRow> = bms.store().iter().cloned().collect();
    assert!(!rows.is_empty());
    for row in &rows {
        if let Some(mac) = row.observation.payload.mac() {
            assert_ne!(mac, occupants[0].mac, "capture-suppressed MAC stored");
        }
        let identity_bearing = matches!(
            row.observation.payload,
            ObservationPayload::WifiAssociation { .. } | ObservationPayload::BadgeSwipe { .. }
        ) || matches!(
            &row.observation.payload,
            ObservationPayload::CameraFrame { identified, .. } if !identified.is_empty()
        );
        if identity_bearing {
            assert!(
                filter.essential_zone(&building.model, row.observation.space),
                "identity row stored outside the Emergency subtree under \
                 overload: {row:?} (seed {seed})"
            );
        }
    }

    // Emergency zones are never degraded: no ladder drop inside the
    // subtree, and its identity rows kept full fidelity (camera
    // identifications intact — nothing was coarsened away).
    let drops = bms.capture_drops();
    assert!(
        drops
            .iter()
            .filter(|d| d.reason == CaptureDropReason::Degraded)
            .all(|d| !filter.essential_zone(&building.model, d.zone)),
        "ladder suppression inside the Emergency subtree (seed {seed})"
    );
    let essential_cameras = rows
        .iter()
        .filter(|r| r.observation.space == essential_zone)
        .filter(|r| {
            matches!(
                &r.observation.payload,
                ObservationPayload::CameraFrame { identified, .. } if !identified.is_empty()
            )
        })
        .count();
    assert!(
        essential_cameras > 0,
        "the essential zone must keep storing full-fidelity identity (seed {seed})"
    );

    // Goodput: ≥ 70% of what the bounded pipeline admitted was durably
    // stored, despite suppress-rung shedding and the nemesis.
    assert!(
        stats.stored * 10 >= stats.admitted * 7,
        "goodput {}/{} fell under 70% (seed {seed})",
        stats.stored,
        stats.admitted
    );
    // Every admitted observation reached an audited terminal outcome.
    assert_eq!(
        stats.admitted,
        stats.stored
            + stats.suppressed
            + stats.unauthorized
            + stats.unadmitted
            + drops
                .iter()
                .filter(|d| d.reason == CaptureDropReason::CaptureFilter)
                .count() as u64,
        "capture accounting must balance (seed {seed})"
    );
    // And the link never buffered without bound.
    let link_stats = link.stats();
    assert!(link_stats.high_watermark <= link.config().capacity);
    assert_eq!(link_stats.offered as usize, offered.len());

    // A crash after the storm recovers a clean record-boundary prefix of
    // the runtime store — torn group commits truncate, stalled ones left
    // no trace.
    log.crash();
    let (recovered, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    )
    .expect("recovery");
    let recovered_rows: Vec<StoredRow> = recovered.store().iter().cloned().collect();
    assert!(
        recovered_rows.len() <= rows.len() && recovered_rows == rows[..recovered_rows.len()],
        "recovery must land on a prefix of the runtime store (seed {seed})"
    );
}
