//! Failure-injection tests: seeded fault-plane loss, bounded-deadline
//! retry, publish retry, stale advertisements, malformed documents, and
//! clock skew between IoTA, registry, and BMS.
//!
//! The suite is seed-parameterized: set `TIPPERS_FAULT_SEED` to replay any
//! scenario bit-for-bit under a different injection sequence (CI runs three
//! fixed seeds).

use privacy_aware_buildings::prelude::*;
use tippers::{FaultPlan, FaultPoint};
use tippers_iota::IotaConfig;
use tippers_irr::{NetworkConfig, RegistryError};
use tippers_policy::{figures, BuildingPolicy, PolicyDocument, PolicyId, Timestamp};

/// The injection seed for this run (CI sweeps 7, 42, and 4711).
fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn bms_and_bus(
    plan: FaultPlan,
) -> (
    Tippers,
    DiscoveryBus,
    tippers_irr::RegistryId,
    tippers_spatial::fixtures::Dbh,
) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            fault_plan: plan.clone(),
            ..TippersConfig::default()
        },
    );
    bms.add_policy(
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
            .with_setting(BuildingPolicy::location_setting()),
    );
    let mut bus = DiscoveryBus::with_fault_plan(NetworkConfig::default(), plan);
    let irr = bus.add_registry("DBH IRR", building.building);
    bms.publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0))
        .expect("no publish fault armed yet");
    (bms, bus, irr, building)
}

/// Under 60% injected loss on both discovery and fetch, the IoTA's
/// retry layer still converges on the advertised policies — within its
/// per-poll deadline budget, not by unbounded retrying.
#[test]
fn discovery_converges_under_sixty_percent_loss() {
    let plan = FaultPlan::seeded(fault_seed());
    plan.arm(FaultPoint::RegistryDiscover, 0.6);
    plan.arm(FaultPoint::RegistryFetch, 0.6);
    let (_bms, bus, _irr, building) = bms_and_bus(plan.clone());
    let ontology = Ontology::standard();
    let mut iota = Iota::new(
        UserId(1),
        UserGroup::Faculty,
        SensitivityProfile::fundamentalist(&ontology),
    );
    // Poll periodically, as a phone would; convergence must happen well
    // within a working day of 5-minute beacon rounds.
    let mut converged_at = None;
    for round in 0..96 {
        let now = Timestamp::at(0, 9, 0) + round * 300;
        if !iota
            .poll(&bus, &building.model, building.offices[0], now)
            .is_empty()
        {
            converged_at = Some(round);
            break;
        }
    }
    assert!(
        converged_at.is_some(),
        "discovery failed to converge under 60% loss (seed {})",
        fault_seed()
    );
    assert!(plan.total_injected() > 0, "faults actually fired");
    // The retry layer stayed within its budget: at most
    // (fetch_retries + 1) attempts per registry per poll.
    let stats = iota.poll_stats();
    let max_per_poll = IotaConfig::default().fetch_retries as u64 + 1;
    assert!(stats.fetch_attempts <= (converged_at.unwrap() as u64 + 1) * max_per_poll);
}

/// The same seed injects the same faults: two identical runs converge at
/// the same poll round with identical counters.
#[test]
fn fault_injection_is_reproducible() {
    let run = || {
        let plan = FaultPlan::seeded(fault_seed());
        plan.arm(FaultPoint::RegistryFetch, 0.7);
        let (_bms, bus, _irr, building) = bms_and_bus(plan.clone());
        let ontology = Ontology::standard();
        let mut iota = Iota::new(
            UserId(1),
            UserGroup::Faculty,
            SensitivityProfile::fundamentalist(&ontology),
        );
        for round in 0..32 {
            let now = Timestamp::at(0, 9, 0) + round * 300;
            iota.poll(&bus, &building.model, building.offices[0], now);
        }
        (
            iota.poll_stats(),
            plan.injected(FaultPoint::RegistryFetch),
            bus.stats().lost,
        )
    };
    assert_eq!(run(), run(), "same seed must replay bit-for-bit");
}

/// Publishing retries through a transient registry outage (a bounded
/// injection budget), and reports unreachability once the retry budget is
/// truly spent (an unbounded outage).
#[test]
fn publish_retries_through_transient_outage() {
    let plan = FaultPlan::seeded(fault_seed());
    let (bms, mut bus, irr, _building) = bms_and_bus(plan.clone());

    // Two guaranteed failures, then healthy: the default retry budget
    // (8 attempts, 30 s virtual deadline) absorbs the outage.
    plan.arm_limited(FaultPoint::PolicyPublish, 1.0, 2);
    let published = bms
        .publish_policies(&mut bus, irr, Timestamp::at(1, 8, 0))
        .expect("retry should ride out a 2-failure outage");
    assert_eq!(published, 1);
    assert_eq!(plan.injected(FaultPoint::PolicyPublish), 2);

    // A permanent outage exhausts the budget and surfaces as Unreachable —
    // bounded, not an infinite loop.
    plan.arm(FaultPoint::PolicyPublish, 1.0);
    let err = bms
        .publish_policies(&mut bus, irr, Timestamp::at(2, 8, 0))
        .unwrap_err();
    assert!(matches!(err, RegistryError::Unreachable(r) if r == irr));
    assert!(err.is_transient(), "unreachability is classified transient");
}

/// Advertisements expire: a registry never serves stale policies, and a
/// republish refreshes them.
#[test]
fn stale_advertisements_disappear_until_republished() {
    let (_bms, mut bus, irr, building) = bms_and_bus(FaultPlan::disarmed());
    let late = Timestamp::at(2, 9, 0); // past the 86 400 s TTL
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], late)
        .unwrap();
    assert!(ads.is_empty(), "stale ads must not be served");
    // Republish (e.g. the BMS's daily refresh) restores them.
    let registry = bus.registry_mut(irr).unwrap();
    let existing: Vec<_> = registry
        .advertisements(Timestamp::at(0, 9, 0))
        .iter()
        .map(|a| a.id)
        .collect();
    for id in existing {
        registry
            .republish(id, figures::fig2_document(), late)
            .unwrap();
    }
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], late + 60)
        .unwrap();
    assert_eq!(ads.len(), 1);
    assert_eq!(ads[0].version, 2);
}

/// Malformed / empty documents are rejected at the registry boundary, and
/// syntactically broken JSON is rejected by the parser.
#[test]
fn malformed_documents_are_rejected() {
    let (_bms, mut bus, irr, building) = bms_and_bus(FaultPlan::disarmed());
    let registry = bus.registry_mut(irr).unwrap();
    let err = registry
        .publish(
            PolicyDocument::default(),
            building.building,
            Timestamp::at(0, 9, 0),
            3600,
        )
        .unwrap_err();
    assert!(matches!(err, RegistryError::NotAdvertisable { .. }));
    assert!(
        !err.is_transient(),
        "validation failures must not be retried"
    );

    // Broken JSON never becomes a document at all.
    let broken = r#"{"resources": [{"info": {"name": }]}"#;
    assert!(serde_json::from_str::<PolicyDocument>(broken).is_err());
    // A document with the wrong shape (retention as a number) also fails.
    let wrong = r#"{"resources": [{"info": {"name": "x"}, "retention": {"duration": 6}}]}"#;
    assert!(serde_json::from_str::<PolicyDocument>(wrong).is_err());
}

/// Clock skew: an IoTA whose clock runs ahead of the building still works —
/// freshness is evaluated against the timestamp the client supplies, so a
/// skewed client sees ads as stale/fresh consistently with *its* clock,
/// and enforcement uses the BMS clock only.
#[test]
fn clock_skew_between_iota_and_bms() {
    let (mut bms, bus, irr, building) = bms_and_bus(FaultPlan::disarmed());
    let skewed_now = Timestamp::at(0, 9, 0) + 7200; // IoTA 2h ahead
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], skewed_now)
        .unwrap();
    assert_eq!(ads.len(), 1, "2h skew is inside the 24h TTL");
    // The skewed IoTA configures settings; enforcement at the BMS's own
    // clock honors them regardless of the skew.
    let ontology = Ontology::standard();
    let mut iota = Iota::new(
        UserId(1),
        UserGroup::Staff,
        SensitivityProfile::fundamentalist(&ontology),
    );
    iota.configure(&mut bms).unwrap();
    let c = ontology.concepts();
    assert!(bms
        .locate(
            catalog::services::concierge(),
            c.navigation,
            UserId(1),
            Timestamp::at(0, 9, 30),
        )
        .is_none());
}

/// A *registry-side* skewed clock (the fault plane's ClockSkew point) makes
/// fresh advertisements look stale to its clients; a full registry outage
/// is bridged by the assistant's stale-bounded cache — but only up to the
/// staleness bound.
#[test]
fn registry_outage_is_bridged_by_the_bounded_cache() {
    let plan = FaultPlan::seeded(fault_seed());
    let (_bms, bus, irr, building) = bms_and_bus(plan.clone());
    let t0 = Timestamp::at(0, 9, 0);

    // Registry clock jumps two days ahead: its fresh ads now look expired.
    plan.arm_with_param(FaultPoint::ClockSkew, 1.0, 2 * 86_400);
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], t0)
        .unwrap();
    assert!(ads.is_empty(), "skewed registry serves nothing as fresh");
    assert!(plan.injected(FaultPoint::ClockSkew) > 0);
    plan.disarm(FaultPoint::ClockSkew);

    // A healthy poll primes the assistant's cache …
    let ontology = Ontology::standard();
    let mut iota = Iota::new(
        UserId(1),
        UserGroup::Faculty,
        SensitivityProfile::fundamentalist(&ontology),
    );
    assert_eq!(
        iota.poll(&bus, &building.model, building.offices[0], t0)
            .len(),
        1
    );
    // … then the registry goes fully dark.
    plan.arm(FaultPoint::RegistryFetch, 1.0);
    let ads = iota.poll(&bus, &building.model, building.offices[0], t0 + 300);
    assert_eq!(ads.len(), 1, "cached advertisements bridge the outage");
    assert!(iota.poll_stats().cache_fallbacks >= 1);
    // Past the staleness bound the cache refuses to serve: stale knowledge
    // beats none, but not indefinitely.
    let staleness = IotaConfig::default().cache_staleness_secs;
    let ads = iota.poll(
        &bus,
        &building.model,
        building.offices[0],
        t0 + staleness + 600,
    );
    assert!(ads.is_empty(), "cache must not serve past its bound");
}

/// An extreme: a registry hosting a different building's policies is not
/// discovered by users elsewhere on campus.
#[test]
fn discovery_is_scoped_to_coverage() {
    let (_bms, mut bus, _irr, building) = bms_and_bus(FaultPlan::disarmed());
    // A second building with its own registry.
    let mut model = building.model.clone();
    let other = model.add_space("ICS", tippers_spatial::SpaceKind::Building, model.root());
    let other_irr = bus.add_registry("ICS IRR", other);
    let (found, _) = bus.discover(&model, building.offices[0]);
    assert!(found.contains(&tippers_irr::RegistryId(0)));
    assert!(
        !found.contains(&other_irr),
        "wrong building's IRR not found"
    );
}
