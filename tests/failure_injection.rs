//! Failure-injection tests: lossy discovery, stale advertisements,
//! malformed documents, and clock skew between IoTA and BMS.

use privacy_aware_buildings::prelude::*;
use tippers_irr::{NetworkConfig, RegistryError};
use tippers_policy::{figures, BuildingPolicy, PolicyDocument, PolicyId, Timestamp};

fn bms_and_bus(
    loss: f64,
) -> (
    Tippers,
    DiscoveryBus,
    tippers_irr::RegistryId,
    tippers_spatial::fixtures::Dbh,
) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.add_policy(
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
            .with_setting(BuildingPolicy::location_setting()),
    );
    let mut bus = DiscoveryBus::new(NetworkConfig {
        loss_probability: loss,
        ..NetworkConfig::default()
    });
    let irr = bus.add_registry("DBH IRR", building.building);
    bms.publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0))
        .expect("wired publish path is lossless");
    (bms, bus, irr, building)
}

/// Under 60% message loss, the IoTA's retries still recover the policies.
#[test]
fn iota_retries_through_lossy_network() {
    let (_bms, bus, _irr, building) = bms_and_bus(0.6);
    let ontology = Ontology::standard();
    let iota = Iota::new(
        UserId(1),
        UserGroup::Faculty,
        SensitivityProfile::fundamentalist(&ontology),
    );
    // Poll repeatedly, as a phone would; some poll must succeed.
    let mut got = 0;
    for _ in 0..30 {
        got += iota
            .poll(&bus, &building.model, building.offices[0], Timestamp::at(0, 9, 0))
            .len();
    }
    assert!(got > 0, "retries should recover policies under 60% loss");
    assert!(bus.stats().lost > 0, "loss actually happened");
}

/// Advertisements expire: a registry never serves stale policies, and a
/// republish refreshes them.
#[test]
fn stale_advertisements_disappear_until_republished() {
    let (_bms, mut bus, irr, building) = bms_and_bus(0.0);
    let late = Timestamp::at(2, 9, 0); // past the 86 400 s TTL
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], late)
        .unwrap();
    assert!(ads.is_empty(), "stale ads must not be served");
    // Republish (e.g. the BMS's daily refresh) restores them.
    let registry = bus.registry_mut(irr).unwrap();
    let existing: Vec<_> = registry.advertisements(Timestamp::at(0, 9, 0))
        .iter()
        .map(|a| a.id)
        .collect();
    for id in existing {
        registry
            .republish(id, figures::fig2_document(), late)
            .unwrap();
    }
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], late + 60)
        .unwrap();
    assert_eq!(ads.len(), 1);
    assert_eq!(ads[0].version, 2);
}

/// Malformed / empty documents are rejected at the registry boundary, and
/// syntactically broken JSON is rejected by the parser.
#[test]
fn malformed_documents_are_rejected() {
    let (_bms, mut bus, irr, building) = bms_and_bus(0.0);
    let registry = bus.registry_mut(irr).unwrap();
    let err = registry
        .publish(
            PolicyDocument::default(),
            building.building,
            Timestamp::at(0, 9, 0),
            3600,
        )
        .unwrap_err();
    assert!(matches!(err, RegistryError::NotAdvertisable { .. }));

    // Broken JSON never becomes a document at all.
    let broken = r#"{"resources": [{"info": {"name": }]}"#;
    assert!(serde_json::from_str::<PolicyDocument>(broken).is_err());
    // A document with the wrong shape (retention as a number) also fails.
    let wrong = r#"{"resources": [{"info": {"name": "x"}, "retention": {"duration": 6}}]}"#;
    assert!(serde_json::from_str::<PolicyDocument>(wrong).is_err());
}

/// Clock skew: an IoTA whose clock runs ahead of the building still works —
/// freshness is evaluated against the timestamp the client supplies, so a
/// skewed client sees ads as stale/fresh consistently with *its* clock,
/// and enforcement uses the BMS clock only.
#[test]
fn clock_skew_between_iota_and_bms() {
    let (mut bms, bus, irr, building) = bms_and_bus(0.0);
    let skewed_now = Timestamp::at(0, 9, 0) + 7200; // IoTA 2h ahead
    let (ads, _) = bus
        .fetch_near(irr, &building.model, building.offices[0], skewed_now)
        .unwrap();
    assert_eq!(ads.len(), 1, "2h skew is inside the 24h TTL");
    // The skewed IoTA configures settings; enforcement at the BMS's own
    // clock honors them regardless of the skew.
    let ontology = Ontology::standard();
    let mut iota = Iota::new(
        UserId(1),
        UserGroup::Staff,
        SensitivityProfile::fundamentalist(&ontology),
    );
    iota.configure(&mut bms).unwrap();
    let c = ontology.concepts();
    assert!(bms
        .locate(
            catalog::services::concierge(),
            c.navigation,
            UserId(1),
            Timestamp::at(0, 9, 30),
        )
        .is_none());
}

/// An extreme: a registry hosting a different building's policies is not
/// discovered by users elsewhere on campus.
#[test]
fn discovery_is_scoped_to_coverage() {
    let (_bms, mut bus, _irr, building) = bms_and_bus(0.0);
    // A second building with its own registry.
    let mut model = building.model.clone();
    let other = model.add_space("ICS", tippers_spatial::SpaceKind::Building, model.root());
    let other_irr = bus.add_registry("ICS IRR", other);
    let (found, _) = bus.discover(&model, building.offices[0]);
    assert!(found.contains(&tippers_irr::RegistryId(0)));
    assert!(!found.contains(&other_irr), "wrong building's IRR not found");
}
