//! Differential fail-closed test: a faulty BMS run must never release data
//! a healthy run would not have released.
//!
//! Two identical BMS instances process the same occupants, observations,
//! preferences, and request grid. One runs with a disarmed fault plan; the
//! other with injected enforcement-engine build failures and store-write
//! losses. The faulty run's permits must be a subset of the healthy run's,
//! and every *extra* denial must carry an explicit internal-error audit
//! record inside a degraded-mode response — fail-closed, never fail-open,
//! and never silently.

use std::collections::HashSet;

use privacy_aware_buildings::prelude::*;
use tippers::{AggregateRequest, DataResponse, DecisionBasis, FaultPlan, FaultPoint, HealthStatus};

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One permit/deny outcome at a labeled grid point.
#[derive(Debug, Clone)]
struct GridOutcome {
    wave: &'static str,
    request: &'static str,
    user: UserId,
    permitted: bool,
    basis: DecisionBasis,
    response_degraded: bool,
}

fn simulator(ontology: &Ontology) -> BuildingSimulator {
    BuildingSimulator::new(
        SimulatorConfig {
            seed: 7,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 3,
                undergrads: 3,
                visitors: 0,
            },
            tick_secs: 600,
            ..SimulatorConfig::default()
        },
        ontology,
    )
}

/// Builds a BMS over `plan`, runs the shared scenario, and returns every
/// grid outcome plus the BMS for audit inspection.
fn run_scenario(plan: FaultPlan) -> (Vec<GridOutcome>, Tippers) {
    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let mut sim = simulator(&ontology);
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            fault_plan: plan,
            ..TippersConfig::default()
        },
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    let users: Vec<UserId> = sim.occupants().iter().map(|o| o.user).collect();
    // The first two occupants opt out of location sharing.
    for &user in users.iter().take(2) {
        bms.submit_preference(
            catalog::preference2_no_location(PreferenceId(0), user, &ontology),
            Timestamp::at(0, 7, 0),
        );
    }
    // A morning of sensor data.
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 10, 0));
    bms.ingest(&trace.observations);

    // The request grid: two request shapes, everyone, two waves — the
    // first while any injected enforcer-build outage is still active, the
    // second after recovery.
    let mut out = Vec::new();
    for (wave, at) in [
        ("outage", Timestamp::at(0, 10, 30)),
        ("recovered", Timestamp::at(0, 11, 0)),
    ] {
        for &user in &users {
            let requests = [
                (
                    "emergency-locate",
                    DataRequest {
                        service: catalog::services::emergency(),
                        purpose: c.emergency_response,
                        data: c.wifi_association,
                        subjects: SubjectSelector::One(user),
                        from: Timestamp::at(0, 8, 0),
                        to: at,
                        requester_space: None,
                        priority: Default::default(),
                        deadline: None,
                    },
                ),
                (
                    "concierge-navigation",
                    DataRequest {
                        service: catalog::services::concierge(),
                        purpose: c.navigation,
                        data: c.location,
                        subjects: SubjectSelector::One(user),
                        from: Timestamp::at(0, 8, 0),
                        to: at,
                        requester_space: None,
                        priority: Default::default(),
                        deadline: None,
                    },
                ),
            ];
            for (label, request) in requests {
                let response: DataResponse = bms.handle_request(&request, at);
                let result = &response.results[0];
                out.push(GridOutcome {
                    wave,
                    request: label,
                    user,
                    permitted: result.decision.permits(),
                    basis: result.decision.basis.clone(),
                    response_degraded: response.degraded,
                });
            }
        }
    }
    (out, bms)
}

#[test]
fn faulty_run_permits_are_a_subset_of_healthy_permits() {
    let (healthy, healthy_bms) = run_scenario(FaultPlan::disarmed());
    assert_eq!(healthy_bms.health(), HealthStatus::Healthy);
    assert_eq!(healthy_bms.degraded_events(), 0);

    // Inject: the enforcement engine fails every (re)build attempt through
    // the ingest (1 consultation) and the whole first request wave
    // (10 users x 2 requests), then heals; and half of all store writes
    // are lost for the whole run.
    let plan = FaultPlan::seeded(fault_seed());
    plan.arm_limited(FaultPoint::EnforcerBuild, 1.0, 21);
    plan.arm(FaultPoint::StoreWrite, 0.5);
    let (faulty, faulty_bms) = run_scenario(plan.clone());

    assert_eq!(healthy.len(), faulty.len(), "identical grids");
    let healthy_permits: HashSet<(&str, &str, UserId)> = healthy
        .iter()
        .filter(|o| o.permitted)
        .map(|o| (o.wave, o.request, o.user))
        .collect();

    let mut extra_denials = 0usize;
    for (h, f) in healthy.iter().zip(&faulty) {
        assert_eq!((h.wave, h.request, h.user), (f.wave, f.request, f.user));
        // THE invariant: injected faults may only remove permits, never
        // add them.
        if f.permitted {
            assert!(
                healthy_permits.contains(&(f.wave, f.request, f.user)),
                "fail-open: faulty run released {:?}/{:?} for {:?} which the \
                 healthy run denied",
                f.wave,
                f.request,
                f.user,
            );
        } else if h.permitted {
            // Every extra denial is explicit: internal-error basis, inside
            // a response flagged as degraded.
            extra_denials += 1;
            assert_eq!(
                f.basis,
                DecisionBasis::InternalError,
                "extra denial must be audited as an internal error, not \
                 disguised as a policy decision"
            );
            assert!(
                f.response_degraded,
                "a fail-closed denial must ride in a degraded response"
            );
            assert!(
                faulty_bms
                    .audit()
                    .entries()
                    .iter()
                    .any(|e| e.subject == f.user && e.basis == DecisionBasis::InternalError),
                "extra denial for {:?} has no InternalError audit record",
                f.user
            );
        }
    }
    assert!(
        extra_denials > 0,
        "the injected outage should actually have denied something"
    );
    // Both injected fault classes actually fired and were observed.
    assert_eq!(plan.injected(FaultPoint::EnforcerBuild), 21);
    assert!(faulty_bms.store_write_failures() > 0);
    assert_eq!(faulty_bms.degraded_events(), 1, "one degraded episode");
    // After the outage the BMS recovered.
    assert_eq!(faulty_bms.health(), HealthStatus::Healthy);
    // Recovered-wave outcomes are decision-identical to the healthy run.
    for (h, f) in healthy.iter().zip(&faulty) {
        if f.wave == "recovered" {
            assert_eq!(h.permitted, f.permitted, "recovery restores decisions");
        }
    }
}

/// Admission control is load shedding, not a policy change: under ANY
/// admission configuration, the permits granted are a subset of what an
/// unlimited-capacity run grants over the same storm, every lost permit
/// is an explicit `Overload` denial in a degraded response, and Emergency
/// decisions are identical in both runs.
#[test]
fn admission_permits_are_a_subset_of_unlimited_permits() {
    use tippers::{AdmissionConfig, AimdConfig, Priority, TokenBucketConfig};
    use tippers_bench::{gen_storm, StormConfig};

    let ontology = Ontology::standard();
    let build = |admission: Option<AdmissionConfig>| {
        let sim = simulator(&ontology);
        let building = sim.dbh().clone();
        let mut bms = Tippers::new(
            ontology.clone(),
            building.model.clone(),
            TippersConfig {
                admission,
                ..TippersConfig::default()
            },
        );
        bms.register_occupants(sim.occupants());
        bms.add_policy(catalog::policy1_thermostat(
            PolicyId(0),
            building.building,
            &ontology,
        ));
        bms.add_policy(catalog::policy2_emergency_location(
            PolicyId(0),
            building.building,
            &ontology,
        ));
        let users: Vec<UserId> = sim.occupants().iter().map(|o| o.user).collect();
        for &user in users.iter().take(2) {
            bms.submit_preference(
                catalog::preference2_no_location(PreferenceId(0), user, &ontology),
                Timestamp::at(0, 7, 0),
            );
        }
        bms
    };
    let storm = gen_storm(
        StormConfig {
            seed: fault_seed(),
            duration_secs: 60,
            ..StormConfig::default()
        },
        &ontology,
        10,
        Timestamp::at(0, 9, 0),
    );

    let replay = |bms: &mut Tippers| -> Vec<(bool, DecisionBasis, bool)> {
        storm
            .iter()
            .map(|arrival| {
                let response = bms.handle_request(&arrival.request, arrival.at);
                let r = &response.results[0];
                (
                    r.decision.permits(),
                    r.decision.basis.clone(),
                    response.degraded,
                )
            })
            .collect()
    };
    let mut unlimited_bms = build(None);
    let unlimited = replay(&mut unlimited_bms);

    let configurations = [
        AdmissionConfig::default(),
        // Starved: one-token burst, trickle refill.
        AdmissionConfig {
            bucket: TokenBucketConfig {
                capacity: 1.0,
                refill_per_sec: 0.5,
            },
            ..AdmissionConfig::default()
        },
        // Batch-hostile: most of the bucket is reserved away from Batch.
        AdmissionConfig {
            bucket: TokenBucketConfig {
                capacity: 16.0,
                refill_per_sec: 4.0,
            },
            batch_reserve: 0.9,
            ..AdmissionConfig::default()
        },
        // Tight concurrency ceiling.
        AdmissionConfig {
            aimd: AimdConfig {
                min_limit: 1,
                max_limit: 1,
                initial_limit: 1,
                ..AimdConfig::default()
            },
            ..AdmissionConfig::default()
        },
    ];
    for (ci, config) in configurations.into_iter().enumerate() {
        let mut bms = build(Some(config));
        let limited = replay(&mut bms);
        assert_eq!(limited.len(), unlimited.len());
        for (i, (limited_out, unlimited_out)) in limited.iter().zip(&unlimited).enumerate() {
            let (l_permit, l_basis, l_degraded) = limited_out;
            let (u_permit, _, _) = unlimited_out;
            // THE invariant: admission may only remove permits.
            if *l_permit {
                assert!(
                    u_permit,
                    "config {ci}: admission run released arrival {i} which the \
                     unlimited run denied (fail-open)"
                );
            } else if *u_permit {
                assert_eq!(
                    *l_basis,
                    DecisionBasis::Overload,
                    "config {ci}: lost permit {i} must be an explicit Overload shed"
                );
                assert!(
                    l_degraded,
                    "config {ci}: a shed must ride in a degraded response"
                );
            }
            // Emergency is never shed: decisions match the unlimited run.
            if storm[i].request.priority == Priority::Emergency {
                assert_eq!(
                    l_permit, u_permit,
                    "config {ci}: Emergency arrival {i} diverged from the \
                     unlimited run"
                );
            }
        }
        let stats = bms.admission_stats().expect("admission configured");
        assert_eq!(stats.shed_for(Priority::Emergency), 0);
    }
}

/// Failover is decision-transparent: a replica promoted after the primary
/// crashes serves, over the replayed shared prefix, *byte-identical*
/// audited decisions to the ones the old primary served — same subjects,
/// same effects, same bases, bit for bit through the serialized audit.
#[test]
fn promoted_replica_serves_byte_identical_decisions_after_failover() {
    use privacy_aware_buildings::policy::BuildingPolicy;
    use tippers::replication::{Cluster, ReplicationConfig, WriteOutcome};
    use tippers::{VirtualClock, MILLIS_PER_SEC};

    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let mut sim = simulator(&ontology);
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    let users: Vec<UserId> = occupants.iter().map(|o| o.user).collect();
    let clock = VirtualClock::at_ms(Timestamp::at(0, 8, 0).0 * MILLIS_PER_SEC);
    let mut cluster = Cluster::new(
        ReplicationConfig::default(),
        FaultPlan::disarmed(),
        clock.clone(),
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        occupants,
    )
    .expect("cluster boot");

    // Commit the shared scenario: catalog policies (thermostat carrying
    // the Figure-4 location setting), two opt-outs, a morning of sensor
    // data, and one explicit setting choice.
    let p1 = catalog::policy1_thermostat(PolicyId(0), building.building, &ontology)
        .with_setting(BuildingPolicy::location_setting());
    let p2 = catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology);
    let mut pid = PolicyId(0);
    let outcome = cluster
        .write_to(0, |bms| {
            pid = bms.add_policy(p1);
            bms.add_policy(p2);
        })
        .expect("seed policies");
    assert!(matches!(outcome, WriteOutcome::Committed { .. }));
    for &user in users.iter().take(2) {
        let ont = ontology.clone();
        cluster
            .write_to(0, move |bms| {
                bms.submit_preference(
                    catalog::preference2_no_location(PreferenceId(0), user, &ont),
                    Timestamp::at(0, 7, 0),
                );
            })
            .expect("seed preference");
    }
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 10, 0));
    cluster
        .write_to(0, |bms| {
            bms.ingest(&trace.observations);
        })
        .expect("seed observations");
    let u = users[2];
    let outcome = cluster
        .write_to(0, move |bms| {
            let _ = bms.apply_setting_choice(u, pid, "location-sensing", 1);
        })
        .expect("setting choice");
    assert!(matches!(outcome, WriteOutcome::Committed { .. }));

    // The old primary serves the full request grid; its served-decision
    // audit is the reference transcript.
    let at = Timestamp::at(0, 10, 30);
    let mut requests = Vec::new();
    for &user in &users {
        requests.push(DataRequest {
            service: catalog::services::emergency(),
            purpose: c.emergency_response,
            data: c.wifi_association,
            subjects: SubjectSelector::One(user),
            from: Timestamp::at(0, 8, 0),
            to: at,
            requester_space: None,
            priority: Default::default(),
            deadline: None,
        });
        requests.push(DataRequest {
            service: catalog::services::concierge(),
            purpose: c.navigation,
            data: c.location,
            subjects: SubjectSelector::One(user),
            from: Timestamp::at(0, 8, 0),
            to: at,
            requester_space: None,
            priority: Default::default(),
            deadline: None,
        });
    }
    for request in &requests {
        cluster.read_from(0, request, at).expect("primary serves");
    }
    let served = cluster
        .served_audit(0)
        .expect("read audit diverted")
        .entries()
        .to_vec();
    let reference = serde_json::to_string(&served)
        .expect("serialize reference audit")
        .into_bytes();
    let prefix = cluster.frames(0).to_vec();

    // Crash the primary; promote the best replica; it must hold the full
    // committed prefix (every seeding write committed, so nothing above
    // relied on the dead node).
    cluster.crash(0);
    let candidate = cluster.best_candidate().expect("quorum alive");
    assert_ne!(candidate, 0);
    cluster.promote(candidate).expect("failover");
    assert_eq!(
        &cluster.frames(candidate)[..prefix.len()],
        &prefix[..],
        "promoted replica must hold the old primary's durable prefix"
    );

    // The promoted replica answers the same grid. Byte-identical audit:
    // replicas replay records through the same deterministic path, so
    // enforcement sees exactly the state the old primary saw.
    for request in &requests {
        cluster
            .read_from(candidate, request, at)
            .expect("new primary serves");
    }
    let served = cluster
        .served_audit(candidate)
        .expect("read audit diverted")
        .entries()
        .to_vec();
    let replayed = serde_json::to_string(&served)
        .expect("serialize replayed audit")
        .into_bytes();
    assert_eq!(
        reference, replayed,
        "failover changed an audited decision on the shared prefix"
    );
}

/// Aggregates fail closed too: during the outage every subject is excluded
/// (k-anonymity then suppresses the buckets) and the response says so.
#[test]
fn degraded_aggregates_exclude_everyone_and_say_so() {
    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let plan = FaultPlan::seeded(fault_seed());
    let mut sim = simulator(&ontology);
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            fault_plan: plan.clone(),
            k_anonymity: 2,
            ..TippersConfig::default()
        },
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    // Authorize sharing occupancy for analytics, so that in a *healthy*
    // run subjects are not excluded from aggregates.
    bms.add_policy(
        tippers_policy::BuildingPolicy::new(
            PolicyId(0),
            "Occupancy analytics",
            building.building,
            c.occupancy,
            c.analytics,
        )
        .with_actions(tippers_policy::ActionSet::of(&[
            tippers_policy::DataAction::Share,
        ])),
    );
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 10, 0));
    let (stored, _) = bms.ingest(&trace.observations); // healthy ingest
    assert!(stored > 0);
    // A routine preference submission invalidates the engine; the rebuild
    // at the next query is what the injected fault breaks.
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), sim.occupants()[0].user, &ontology),
        Timestamp::at(0, 10, 5),
    );
    plan.arm_limited(FaultPoint::EnforcerBuild, 1.0, 1);
    let request = AggregateRequest {
        service: catalog::services::smart_meeting(),
        purpose: c.analytics,
        space: building.building,
        from: Timestamp::at(0, 8, 0),
        to: Timestamp::at(0, 10, 0),
        bucket_secs: 1800,
    };
    // During the outage: degraded, everyone excluded, nothing released.
    let during = bms.handle_aggregate(&request, Timestamp::at(0, 10, 15));
    assert!(during.degraded);
    assert!(during.excluded_subjects > 0);
    assert!(
        during.buckets.iter().all(|b| b.count.is_none()),
        "no aggregate may be released while failing closed"
    );
    // After recovery the same request succeeds and is not degraded.
    let after = bms.handle_aggregate(&request, Timestamp::at(0, 10, 45));
    assert!(!after.degraded);
    assert!(
        after.excluded_subjects < during.excluded_subjects
            || after.buckets.iter().any(|b| b.count.is_some())
    );
}
