//! The complete §V.B learning loop: permission questions → profile
//! learning → sensitivity inference → automatic configuration →
//! enforcement. Two users with opposite answers end up with opposite
//! effective privacy, from just two answered questions each.

use privacy_aware_buildings::prelude::*;
use tippers_iota::{infer_sensitivity, PrivacyProfiles, QuestionGrid};
use tippers_policy::{BuildingPolicy, PolicyId, Timestamp};

#[test]
fn two_answers_configure_a_whole_building() {
    let ontology = Ontology::standard();
    let building = dbh();
    let grid = QuestionGrid::standard(&ontology);

    // Historical training data: a population split between deniers and
    // allowers, each user having answered ~60% of the grid.
    let mut training = Vec::new();
    for i in 0..60 {
        let mut m = grid.blank();
        let v = if i % 2 == 0 { -1 } else { 1 };
        for d in 0..grid.len() {
            if (i + d) % 5 != 0 {
                m.set(d, v);
            }
        }
        training.push(m);
    }
    let learned = PrivacyProfiles::learn(&training, 2, 25, 11);

    // The building: Policy 2 with the Figure 4 setting attached.
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.add_policy(
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
            .with_setting(BuildingPolicy::location_setting()),
    );
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Concierge location",
            building.building,
            ontology.concepts().location_room,
            ontology.concepts().navigation,
        )
        .with_actions(tippers_policy::ActionSet::ALL)
        .with_service(catalog::services::concierge())
        .with_setting(BuildingPolicy::location_setting()),
    );

    // Two new users each answer exactly two questions.
    let mut private_answers = grid.blank();
    private_answers.set(0, -1);
    private_answers.set(7, -1);
    let mut open_answers = grid.blank();
    open_answers.set(0, 1);
    open_answers.set(7, 1);

    let private_profile = infer_sensitivity(&grid, &private_answers, &learned, &ontology);
    let open_profile = infer_sensitivity(&grid, &open_answers, &learned, &ontology);

    let mut private_iota = Iota::new(UserId(1), UserGroup::GradStudent, private_profile);
    let mut open_iota = Iota::new(UserId(2), UserGroup::GradStudent, open_profile);
    private_iota.configure(&mut bms).expect("configure");
    open_iota.configure(&mut bms).expect("configure");

    // The learned-then-inferred profiles produce opposite effective
    // choices for the same advertised settings.
    let private_prefs: Vec<Effect> = bms
        .preferences()
        .iter()
        .filter(|p| p.user == UserId(1))
        .map(|p| p.effect)
        .collect();
    let open_prefs: Vec<Effect> = bms
        .preferences()
        .iter()
        .filter(|p| p.user == UserId(2))
        .map(|p| p.effect)
        .collect();
    assert!(
        private_prefs.iter().all(tippers_policy::Effect::is_deny),
        "denier archetype should opt out everywhere: {private_prefs:?}"
    );
    assert!(
        open_prefs.iter().all(|e| *e == Effect::Allow),
        "allower archetype should stay permissive: {open_prefs:?}"
    );

    // And enforcement follows: without any stored data, probe decisions.
    let c = ontology.concepts();
    let request = |user| tippers::DataRequest {
        service: catalog::services::concierge(),
        purpose: c.navigation,
        data: c.location_room,
        subjects: tippers::SubjectSelector::One(user),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let now = Timestamp::at(0, 12, 0);
    let denied = bms.handle_request(&request(UserId(1)), now);
    assert!(!denied.results[0].decision.permits());
    let allowed = bms.handle_request(&request(UserId(2)), now);
    assert!(allowed.results[0].decision.permits());
}
