//! Crash-recovery fuzz for the group-committed ingest pipeline.
//!
//! A seeded simulator firehose runs through `Tippers::ingest_batched`
//! over an in-memory log, deep-copying the log directory at every batch
//! boundary. The harness then:
//!
//! * crashes at **every** batch boundary and proves recovery lands on
//!   exactly that boundary's state;
//! * tears the group commit at **every** intra-batch record position
//!   (`IngestBatchTorn`) and proves recovery keeps each surviving record
//!   atomic — a record's rows are all-in or all-out, and the torn tail is
//!   truncated and counted, never replayed partially;
//! * stalls the amortized fsync (`GroupCommitFsyncStall`) and proves the
//!   batch fails closed end to end: dropped at runtime, audited as
//!   `DurabilityLost`, invisible to recovery, and never resurrected by a
//!   later batch's successful sync.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (CI runs 7, 42 and 4711).

use privacy_aware_buildings::prelude::*;
use tippers::wal::MemLog;
use tippers::{CaptureDropReason, FaultPlan, FaultPoint, IngestConfig, RecoveryReport, StoredRow};
use tippers_bench::{gen_policies, gen_preferences, service_pool};
use tippers_policy::{
    ActionSet, BuildingPolicy, DataAction, IsoDuration, Modality, UserPreference,
};
use tippers_sensors::{Observation, Occupant};
use tippers_spatial::fixtures::Dbh;

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

const BATCHES: usize = 20;
const BATCH_LEN: usize = 30;
const BATCH_MAX: usize = 4;

struct Fixture {
    ontology: Ontology,
    building: Dbh,
    occupants: Vec<Occupant>,
    policies: Vec<BuildingPolicy>,
    preferences: Vec<UserPreference>,
    batches: Vec<Vec<Observation>>,
}

/// Storage authorizers without occupancy-coupled conditions, so a batch
/// re-run on a recovered instance reproduces the clean run's rows exactly
/// (generated conditions are pure time windows).
fn fixture() -> Fixture {
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 3,
                undergrads: 3,
                visitors: 0,
            },
            tick_secs: 300,
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 16, 0)).observations;
    assert!(
        trace.len() >= BATCHES * BATCH_LEN,
        "trace too small: {}",
        trace.len()
    );
    let batches = trace
        .chunks(BATCH_LEN)
        .take(BATCHES)
        .map(<[Observation]>::to_vec)
        .collect();

    let c = ontology.concepts().clone();
    let services = service_pool(3);
    let mut policies = vec![
        BuildingPolicy::new(
            PolicyId(0),
            "Building telemetry baseline",
            building.building,
            c.data,
            c.logging,
        )
        .with_actions(ActionSet::of(&[DataAction::Collect, DataAction::Store]))
        .with_retention(IsoDuration::hours(2))
        .with_modality(Modality::OptOut),
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology),
    ];
    policies.extend(gen_policies(
        12,
        &ontology,
        &building,
        &services,
        seed ^ 0xB0,
    ));
    let preferences = gen_preferences(
        occupants.len(),
        3,
        &ontology,
        &building,
        &services,
        seed ^ 0x9E0,
    );
    Fixture {
        ontology,
        building,
        occupants,
        policies,
        preferences,
        batches,
    }
}

fn ingest_config() -> IngestConfig {
    IngestConfig {
        // Headroom: this harness fuzzes durability, not the ladder.
        mailbox_capacity: 1 << 16,
        batch_max: BATCH_MAX,
        ..IngestConfig::default()
    }
}

fn config(plan: FaultPlan) -> TippersConfig {
    TippersConfig {
        ingest: Some(ingest_config()),
        fault_plan: plan,
        ..TippersConfig::default()
    }
}

fn recover(log: &MemLog, fx: &Fixture, plan: FaultPlan) -> (Tippers, RecoveryReport) {
    let (mut bms, report) = Tippers::open_with(
        Box::new(log.clone()),
        fx.ontology.clone(),
        fx.building.model.clone(),
        config(plan),
    )
    .expect("recovery must never error on a crashed log");
    bms.register_occupants(&fx.occupants);
    (bms, report)
}

fn rows(bms: &Tippers) -> Vec<StoredRow> {
    bms.store().iter().cloned().collect()
}

struct CleanRun {
    /// Log deep-copies: `copies[i]` is the directory after `i` batches.
    copies: Vec<MemLog>,
    /// `expected[i]` is the store after `i` batches.
    expected: Vec<Vec<StoredRow>>,
    /// WAL records each batch group-committed.
    records_per_batch: Vec<usize>,
}

/// Runs the full workload cleanly, capturing the log and store at every
/// batch boundary, and proves the group commit actually amortized fsync.
fn clean_run(fx: &Fixture) -> CleanRun {
    let log = MemLog::new();
    let (mut bms, report) = recover(&log, fx, FaultPlan::disarmed());
    assert_eq!(report.records_replayed, 0);
    assert!(bms.wal_enabled());
    for p in &fx.policies {
        bms.add_policy(p.clone());
    }
    for p in &fx.preferences {
        bms.submit_preference(p.clone(), Timestamp::at(0, 7, 0));
    }

    let mut copies = vec![log.deep_copy()];
    let mut expected = vec![rows(&bms)];
    let mut records_per_batch = Vec::new();
    let setup_records = bms.wal_appended_records();
    let setup_syncs = bms.wal_sync_count();
    for (i, batch) in fx.batches.iter().enumerate() {
        let before = bms.wal_appended_records();
        let report = bms.ingest_batched(batch, i as i64);
        assert!(report.synced, "clean run commits every batch");
        assert!(report.rejected.is_empty());
        records_per_batch.push((bms.wal_appended_records() - before) as usize);
        copies.push(log.deep_copy());
        expected.push(rows(&bms));
    }
    assert_eq!(bms.wal_append_failures(), 0);
    let stored = expected.last().unwrap().len() - expected[0].len();
    assert!(stored > 200, "workload must store rows: {stored}");
    // Group-commit amortization: across the ingest phase, many records
    // per fsync.
    let records = bms.wal_appended_records() - setup_records;
    let syncs = bms.wal_sync_count() - setup_syncs;
    assert!(
        records >= 4 * syncs.max(1),
        "group commit must amortize fsync: {records} records / {syncs} syncs"
    );
    CleanRun {
        copies,
        expected,
        records_per_batch,
    }
}

#[test]
fn crash_at_every_batch_boundary_recovers_that_exact_boundary() {
    let fx = fixture();
    let run = clean_run(&fx);
    for (i, (copy, want)) in run.copies.iter().zip(&run.expected).enumerate() {
        copy.crash();
        let (recovered, report) = recover(copy, &fx, FaultPlan::disarmed());
        assert_eq!(report.truncated_tails, 0, "boundary {i}");
        assert_eq!(&rows(&recovered), want, "boundary {i}");
        assert!(recovered.store().index_consistent(), "boundary {i}");
    }
}

#[test]
fn torn_group_commit_recovers_whole_records_only() {
    let seed = fault_seed();
    let fx = fixture();
    let run = clean_run(&fx);

    let mut tears_checked = 0usize;
    for (i, batch) in fx.batches.iter().enumerate() {
        let records = run.records_per_batch[i];
        if records < 2 {
            continue;
        }
        let batch_rows: &[StoredRow] = &run.expected[i + 1][run.expected[i].len()..];
        for surviving in 1..records {
            // Resume from the clean boundary before this batch, re-run it
            // with the tear armed at this record position, then crash.
            let torn_log = run.copies[i].deep_copy();
            let plan = FaultPlan::seeded(seed);
            plan.arm_with_param(FaultPoint::IngestBatchTorn, 1.0, surviving as i64);
            let (mut bms, _) = recover(&torn_log, &fx, plan.clone());
            let report = bms.ingest_batched(batch, i as i64);
            // The tear is silent at runtime — a crash cut, not an error:
            // the batch reports stored and the runtime store holds it all.
            assert!(report.synced, "a torn batch still syncs (batch {i})");
            assert_eq!(report.stored, batch_rows.len(), "batch {i}");
            assert_eq!(
                rows(&bms),
                run.expected[i + 1],
                "recovered-then-rerun batch {i} must match the clean run"
            );
            assert_eq!(plan.injected(FaultPoint::IngestBatchTorn), 1);

            torn_log.crash();
            let (recovered, report) = recover(&torn_log, &fx, FaultPlan::disarmed());
            // Exactly the surviving whole records' rows: all-in/all-out
            // at every record boundary, partial frames truncated.
            let keep = (surviving * BATCH_MAX).min(batch_rows.len());
            let mut want = run.expected[i].clone();
            want.extend_from_slice(&batch_rows[..keep]);
            assert_eq!(
                rows(&recovered),
                want,
                "tear at record {surviving}/{records} of batch {i} (seed {seed})"
            );
            assert_eq!(report.truncated_tails, 1, "batch {i} cut {surviving}");
            assert!(report.bytes_discarded > 0);
            assert_eq!(recovered.wal_truncations(), 1);
            assert!(recovered.store().index_consistent());
            tears_checked += 1;
        }
    }
    assert!(
        tears_checked >= 30,
        "tear coverage too thin: {tears_checked}"
    );
}

#[test]
fn stalled_fsync_fails_the_batch_closed_with_no_recovery_trace() {
    let seed = fault_seed();
    let fx = fixture();
    let run = clean_run(&fx);

    let mut stalls_checked = 0usize;
    for i in (0..fx.batches.len() - 1).step_by(3) {
        let log = run.copies[i].deep_copy();
        let plan = FaultPlan::seeded(seed);
        plan.arm_limited(FaultPoint::GroupCommitFsyncStall, 1.0, 1);
        let (mut bms, _) = recover(&log, &fx, plan.clone());

        let batch_rows = run.expected[i + 1].len() - run.expected[i].len();
        let report = bms.ingest_batched(&fx.batches[i], i as i64);
        assert!(!report.synced, "the stall must surface (batch {i})");
        assert_eq!(report.stored, 0, "an unproven batch never reports stored");
        assert_eq!(report.unadmitted, batch_rows, "batch {i}");
        assert_eq!(
            rows(&bms),
            run.expected[i],
            "unadmitted rows must not reach the runtime store (batch {i})"
        );
        // Every dropped row is audited as a durability loss.
        let audited = bms
            .capture_drops()
            .iter()
            .filter(|d| d.reason == CaptureDropReason::DurabilityLost)
            .count();
        assert_eq!(audited, batch_rows, "batch {i}");

        // The next batch commits cleanly on the same instance; its fsync
        // must not resurrect the stalled frames.
        let next = bms.ingest_batched(&fx.batches[i + 1], i as i64 + 1);
        assert!(next.synced, "budget spent: the next batch commits");
        let next_rows: &[StoredRow] = &run.expected[i + 2][run.expected[i + 1].len()..];
        let mut want = run.expected[i].clone();
        want.extend_from_slice(next_rows);
        assert_eq!(rows(&bms), want, "batch {i}");

        log.crash();
        let (recovered, report) = recover(&log, &fx, FaultPlan::disarmed());
        assert_eq!(
            rows(&recovered),
            want,
            "recovery must hold the committed rows and no trace of the \
             stalled batch (batch {i}, seed {seed})"
        );
        assert_eq!(report.truncated_tails, 0, "the rewind leaves no garbage");
        assert!(recovered.store().index_consistent());
        stalls_checked += 1;
    }
    assert!(
        stalls_checked >= 6,
        "stall coverage too thin: {stalls_checked}"
    );
}
