//! Deterministic-simulation interleaving sweep (experiment E21).
//!
//! Runs the sharded-runtime chaos storm — the same invariants
//! `shard_chaos.rs` checks under real threads — single-threaded under
//! the seeded simulation executor, so every interleaving is fully
//! determined by one `u64` and replays bit-for-bit on any machine.
//!
//! * The sweep covers ≥200 seeds per CI run (override the count with
//!   `TIPPERS_SIM_SEEDS`; `TIPPERS_FAULT_SEED` offsets the seed stream,
//!   so the CI fault-seed matrix explores three disjoint seed ranges).
//! * A failing seed is automatically delta-debugged down to a minimal
//!   pinned schedule, written as a JSON artifact, and the panic message
//!   names the seed, the artifact path, and the one-line replay command.
//! * `TIPPERS_SIM_SCHEDULE=<path|seed>` replays a schedule artifact (or
//!   a bare seed) through the identical storm.
//! * `tests/schedules/*.json` is the regression corpus: shrunk
//!   schedules from past hunts, replayed on every run. Artifacts whose
//!   `note` mentions `fence-bug` must *fail* with the PR 9 fence bug
//!   reintroduced (`ShardSpec::sim_reintroduce_fence_bug`) and *pass*
//!   against the real fence — proving both that the schedule still
//!   exercises the race and that the fence still closes it.

use std::fs;
use std::path::PathBuf;

use tippers_bench::sim::SimStorm;
use tippers_resilience::sim::{explore, shrink, Schedule};

/// Seeds per sweep; ≥200 in CI, overridable for nightly exploration.
fn sweep_len() -> u64 {
    std::env::var("TIPPERS_SIM_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// The CI fault-seed matrix (7 / 42 / 4711) offsets the seed stream so
/// each leg sweeps a disjoint range.
fn seed_stream(len: u64) -> impl Iterator<Item = u64> {
    let base: u64 = std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let origin = base.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (0..len).map(move |i| origin.wrapping_add(i))
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/schedules")
}

/// Shrinks a failing schedule, writes the replayable artifact, and
/// panics with the seed + replay instructions.
fn report_failure(cfg: &SimStorm, schedule: &Schedule, violation: &str) -> ! {
    let outcome = cfg.run(schedule);
    let report = shrink(schedule, &outcome, cfg.fault_rounds(), |s| cfg.run(s));
    let mut artifact = report.schedule.clone();
    artifact.note = format!("shrunk from seed {} (sim storm)", schedule.seed);
    let path = artifact_dir().join(format!("sim-failure-seed-{}.json", schedule.seed));
    fs::write(&path, artifact.to_json()).expect("write schedule artifact");
    panic!(
        "sim storm violated an invariant at seed {} (preempt {}): {violation}\n\
         shrunk schedule ({} pinned steps, {} preemptions, {} fault rounds disabled, \
         reproduced={}): {}\n\
         replay with: TIPPERS_SIM_SCHEDULE={} cargo test --test sim_interleavings replay",
        schedule.seed,
        schedule.preempt_permille,
        report.final_steps,
        report.final_preemptions,
        report.fault_rounds_disabled,
        report.reproduced,
        path.display(),
        path.display(),
    );
}

/// The tentpole sweep: ≥200 seeds through the full chaos storm, every
/// invariant checked, in seconds of wall time. Half the seeds run
/// cooperative (preempt 0), half with preemptive virtual-time advance —
/// the mode that can fire the watchdog against a racing reply.
#[test]
fn sim_storm_sweep_holds_every_chaos_invariant() {
    let cfg = SimStorm::default();
    let len = sweep_len();
    for (preempt, seeds) in [
        (0u32, seed_stream(len.div_ceil(2))),
        (250u32, seed_stream(len / 2)),
    ] {
        // Distinct stream per mode: shift so modes don't repeat seeds.
        let seeds = seeds.map(|s| s.wrapping_add(u64::from(preempt) << 32));
        if let Err(e) = explore(seeds, preempt, |s| cfg.run(s)) {
            report_failure(
                &cfg,
                &e.schedule,
                e.outcome.violation.as_deref().unwrap_or("?"),
            );
        }
    }
}

/// Replays `TIPPERS_SIM_SCHEDULE` — a JSON artifact path or a bare
/// seed — through the storm. A no-op when the variable is unset, so the
/// test is always safe to run; when set, a reproduced violation fails
/// the test with the replayed outcome.
#[test]
fn replay_schedule_from_env() {
    let Ok(spec) = std::env::var("TIPPERS_SIM_SCHEDULE") else {
        return;
    };
    let schedule = match spec.parse::<u64>() {
        Ok(seed) => Schedule::seeded(seed, 0),
        Err(_) => {
            let text = fs::read_to_string(&spec)
                .unwrap_or_else(|e| panic!("TIPPERS_SIM_SCHEDULE={spec}: {e}"));
            Schedule::from_json(&text).unwrap_or_else(|e| panic!("{spec}: {e}"))
        }
    };
    // Fence-bug artifacts replay against the reintroduced bug — that is
    // the configuration they were shrunk under.
    let cfg = SimStorm {
        reintroduce_fence_bug: schedule.note.contains("fence-bug"),
        ..SimStorm::default()
    };
    let outcome = cfg.run(&schedule);
    assert!(
        !outcome.failed(),
        "replayed schedule {spec} (seed {}, note {:?}) reproduces: {}",
        schedule.seed,
        schedule.note,
        outcome.violation.unwrap_or_default(),
    );
}

/// Replays every checked-in schedule artifact. Fence-bug artifacts must
/// still catch the reintroduced bug *and* pass against the real fence;
/// plain artifacts must pass as swept.
#[test]
fn regression_corpus_replays_deterministically() {
    let dir = corpus_dir();
    let mut replayed = 0;
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = fs::read_to_string(&path).expect("read corpus artifact");
        let schedule =
            Schedule::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if schedule.note.contains("fence-bug") {
            let buggy = SimStorm {
                reintroduce_fence_bug: true,
                ..SimStorm::default()
            };
            let outcome = buggy.run(&schedule);
            assert!(
                outcome.failed(),
                "{}: shrunk fence-bug schedule no longer catches the reintroduced \
                 bug — the corpus artifact has gone stale",
                path.display()
            );
            let fixed = SimStorm::default();
            let outcome = fixed.run(&schedule);
            assert!(
                !outcome.failed(),
                "{}: fence-bug schedule fails even with the fence intact: {}",
                path.display(),
                outcome.violation.unwrap_or_default()
            );
        } else {
            let cfg = SimStorm::default();
            let outcome = cfg.run(&schedule);
            assert!(
                !outcome.failed(),
                "{}: corpus schedule reproduces a violation: {}",
                path.display(),
                outcome.violation.unwrap_or_default()
            );
        }
        replayed += 1;
    }
    assert!(
        replayed >= 1,
        "regression corpus is empty: {}",
        dir.display()
    );
}

/// The E21 acceptance check, as a test: with the PR 9 fence bug
/// reintroduced behind its hook, a plain seed sweep finds a violating
/// interleaving, the shrinker reduces it to a replayable schedule, and
/// that schedule distinguishes buggy from fixed.
#[test]
fn seed_sweep_finds_the_reintroduced_fence_bug_and_shrinks_it() {
    let buggy = SimStorm {
        reintroduce_fence_bug: true,
        ..SimStorm::default()
    };
    let exploration = explore(1..=64, 0, |s| buggy.run(s))
        .expect_err("64 seeds must surface the unfenced zombie append");
    let report = shrink(
        &exploration.schedule,
        &exploration.outcome,
        buggy.fault_rounds(),
        |s| buggy.run(s),
    );
    assert!(
        report.reproduced,
        "pinned trace must reproduce the violation"
    );
    assert!(
        report.violation.contains("invariant violated"),
        "unexpected violation: {}",
        report.violation
    );
    // The minimized schedule still catches the bug…
    assert!(buggy.run(&report.schedule).failed());
    // …and the real fence closes it under the very same interleaving.
    let fixed = SimStorm::default();
    let outcome = fixed.run(&report.schedule);
    assert!(
        !outcome.failed(),
        "fence failed under the shrunk schedule: {}",
        outcome.violation.unwrap_or_default()
    );
}

/// Regenerates the checked-in fence-bug corpus artifact. Ignored by
/// default; run with `cargo test --test sim_interleavings -- --ignored
/// regenerate` after a storm or scheduler change that staled the corpus.
#[test]
#[ignore = "writes tests/schedules/fence-zombie-append.json"]
fn regenerate_fence_bug_artifact() {
    let buggy = SimStorm {
        reintroduce_fence_bug: true,
        ..SimStorm::default()
    };
    let exploration = explore(1..=64, 0, |s| buggy.run(s))
        .expect_err("64 seeds must surface the unfenced zombie append");
    let report = shrink(
        &exploration.schedule,
        &exploration.outcome,
        buggy.fault_rounds(),
        |s| buggy.run(s),
    );
    assert!(report.reproduced);
    let mut artifact = report.schedule.clone();
    artifact.note = format!(
        "fence-bug: zombie append past a missing writer fence (PR 9 class), \
         shrunk from seed {} after {} candidates",
        exploration.schedule.seed, report.iterations
    );
    let path = corpus_dir().join("fence-zombie-append.json");
    fs::write(&path, artifact.to_json()).expect("write corpus artifact");
}
