//! Aggregate-query enforcement: k-anonymity suppression and per-subject
//! preference exclusion (§IV.B.2's "aggregated or anonymized" level).

use privacy_aware_buildings::prelude::*;
use tippers::{AggregateRequest, Tippers as Bms};
use tippers_policy::{
    ActionSet, BuildingPolicy, PolicyId, PreferenceId, PreferenceScope, Timestamp, UserPreference,
};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload};

/// A BMS with `n` users producing one WiFi row each in the same office,
/// every 10 minutes for an hour.
fn bms_with_cohort(n: u64) -> (Bms, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Bms::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let c = ontology.concepts().clone();
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Network logging",
            building.building,
            c.wifi_association,
            c.logging,
        )
        .with_actions(ActionSet::ALL),
    );
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Space utilization analytics",
            building.building,
            c.occupancy,
            c.analytics,
        )
        .with_actions(ActionSet::ALL),
    );
    let mut observations = Vec::new();
    for minute in (0..60).step_by(10) {
        for user in 0..n {
            observations.push(Observation {
                device: DeviceId(0),
                timestamp: Timestamp::at(0, 9, minute),
                space: building.offices[0],
                payload: ObservationPayload::WifiAssociation {
                    mac: MacAddress::for_user(user),
                    ap: DeviceId(0),
                },
                subject: Some(UserId(user)),
            });
        }
    }
    let (stored, _) = bms.ingest(&observations);
    assert_eq!(stored as u64, 6 * n);
    (bms, building)
}

fn analytics_request(bms: &Bms, building: &tippers_spatial::fixtures::Dbh) -> AggregateRequest {
    let c = bms.ontology().concepts();
    AggregateRequest {
        service: ServiceId::new("SpaceAnalytics"),
        purpose: c.analytics,
        space: building.building,
        from: Timestamp::at(0, 9, 0),
        to: Timestamp::at(0, 10, 0),
        bucket_secs: 1200,
    }
}

#[test]
fn large_cohorts_are_released() {
    let (mut bms, building) = bms_with_cohort(8);
    let response =
        bms.handle_aggregate(&analytics_request(&bms, &building), Timestamp::at(0, 10, 0));
    assert_eq!(response.k, 5);
    assert_eq!(response.buckets.len(), 3);
    for b in &response.buckets {
        assert_eq!(b.count, Some(8));
    }
    assert_eq!(response.excluded_subjects, 0);
    assert_eq!(response.suppressed(), 0);
}

#[test]
fn small_cohorts_are_suppressed() {
    let (mut bms, building) = bms_with_cohort(3); // below k = 5
    let response =
        bms.handle_aggregate(&analytics_request(&bms, &building), Timestamp::at(0, 10, 0));
    assert_eq!(response.suppressed(), 3);
    assert!(response.buckets.iter().all(|b| b.count.is_none()));
}

#[test]
fn opted_out_subjects_vanish_from_aggregates() {
    let (mut bms, building) = bms_with_cohort(7);
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    // Three users deny occupancy analytics.
    for user in 0..3 {
        bms.submit_preference(
            UserPreference::new(
                PreferenceId(0),
                UserId(user),
                PreferenceScope {
                    data: Some(c.occupancy),
                    ..Default::default()
                },
                Effect::Deny,
            ),
            Timestamp::at(0, 8, 0),
        );
    }
    let response =
        bms.handle_aggregate(&analytics_request(&bms, &building), Timestamp::at(0, 10, 0));
    assert_eq!(response.excluded_subjects, 3);
    // 7 - 3 = 4 contributors, below k=5: everything suppressed.
    assert!(response.buckets.iter().all(|b| b.count.is_none()));
    // With k=3 the remaining cohort is releasable — and the counts must
    // show only the 4 consenting users.
    let relaxed = TippersConfig {
        k_anonymity: 3,
        ..TippersConfig::default()
    };
    let (mut bms2, building2) = bms_with_cohort(7);
    let mut bms2 = {
        // rebuild with relaxed config
        let ontology = Ontology::standard();
        let mut fresh = Bms::new(ontology, building2.model.clone(), relaxed);
        for p in bms2.policies() {
            fresh.add_policy(p.clone());
        }
        // Re-ingest by replaying the same observations through a new sim.
        let _ = &mut bms2;
        fresh
    };
    let mut observations = Vec::new();
    for minute in (0..60).step_by(10) {
        for user in 0..7 {
            observations.push(Observation {
                device: DeviceId(0),
                timestamp: Timestamp::at(0, 9, minute),
                space: building2.offices[0],
                payload: ObservationPayload::WifiAssociation {
                    mac: MacAddress::for_user(user),
                    ap: DeviceId(0),
                },
                subject: Some(UserId(user)),
            });
        }
    }
    bms2.ingest(&observations);
    for user in 0..3 {
        bms2.submit_preference(
            UserPreference::new(
                PreferenceId(0),
                UserId(user),
                PreferenceScope {
                    data: Some(c.occupancy),
                    ..Default::default()
                },
                Effect::Deny,
            ),
            Timestamp::at(0, 8, 0),
        );
    }
    let response = bms2.handle_aggregate(
        &analytics_request(&bms2, &building2),
        Timestamp::at(0, 10, 0),
    );
    for b in &response.buckets {
        assert_eq!(b.count, Some(4), "only consenting subjects are counted");
    }
}

#[test]
fn aggregate_decisions_are_audited() {
    let (mut bms, building) = bms_with_cohort(6);
    bms.handle_aggregate(&analytics_request(&bms, &building), Timestamp::at(0, 10, 0));
    // One audit entry per distinct subject.
    assert_eq!(bms.audit().entries().len(), 6);
}
