//! Policy updates over time: a building quietly expands a data practice;
//! the IoTA diffs the republished advertisement and alerts the user even
//! though the practice alone would not clear their relevance threshold.

use privacy_aware_buildings::prelude::*;
use tippers_iota::IotaConfig;
use tippers_irr::NetworkConfig;
use tippers_policy::{diff_documents, document::RetentionBlock, figures, PolicyChange, Timestamp};

#[test]
fn retention_extension_alerts_even_unconcerned_users() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bus = DiscoveryBus::new(NetworkConfig::default());
    let irr = bus.add_registry("DBH IRR", building.building);
    let t0 = Timestamp::at(0, 8, 0);
    let ad = bus
        .registry_mut(irr)
        .unwrap()
        .publish(figures::fig2_document(), building.building, t0, 86_400)
        .unwrap();

    // An unconcerned user whose threshold filters everything out.
    let mut iota = Iota::with_config(
        UserId(1),
        UserGroup::Undergrad,
        SensitivityProfile::unconcerned(&ontology),
        IotaConfig::default(),
    );
    let ads = iota.poll(&bus, &building.model, building.offices[0], t0);
    assert!(
        iota.review(&ads, &ontology, t0).is_empty(),
        "baseline: silent"
    );

    // The building extends retention from P6M to P2Y and republishes.
    let mut updated = figures::fig2_document();
    updated.resources[0].retention = Some(RetentionBlock {
        duration: "P2Y".parse().unwrap(),
    });
    bus.registry_mut(irr)
        .unwrap()
        .republish(ad, updated, t0 + 3600)
        .unwrap();

    let ads = iota.poll(&bus, &building.model, building.offices[0], t0 + 3700);
    let fired = iota.review(&ads, &ontology, t0 + 3700);
    assert_eq!(
        fired.len(),
        1,
        "the expansion bypasses the relevance filter"
    );
    assert!(
        fired[0].body.contains("retention changed from P6M to P2Y"),
        "{}",
        fired[0].body
    );

    // Republishing the same content again stays silent (version bump, no
    // semantic change, no expansion).
    bus.registry_mut(irr)
        .unwrap()
        .republish(
            ad,
            {
                let mut doc = figures::fig2_document();
                doc.resources[0].retention = Some(RetentionBlock {
                    duration: "P2Y".parse().unwrap(),
                });
                doc
            },
            t0 + 7200,
        )
        .unwrap();
    let ads = iota.poll(&bus, &building.model, building.offices[0], t0 + 7300);
    assert!(iota.review(&ads, &ontology, t0 + 7300).is_empty());
}

#[test]
fn shrinking_changes_do_not_force_notifications() {
    let old = figures::fig2_document();
    let mut new = old.clone();
    // Shorter retention + dropped observation: both contractions.
    new.resources[0].retention = Some(RetentionBlock {
        duration: "P7D".parse().unwrap(),
    });
    new.resources[0].observations.clear();
    let changes = diff_documents(&old, &new);
    assert_eq!(changes.len(), 2);
    assert!(changes.iter().all(|c| !c.is_expansion()));
    // They still render readably for users who *are* subscribed.
    for c in &changes {
        assert!(!c.to_string().is_empty());
    }
    assert!(changes
        .iter()
        .any(|c| matches!(c, PolicyChange::ObservationRemoved { .. })));
}
