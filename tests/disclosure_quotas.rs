//! Purpose-scoped disclosure quotas on the release path.
//!
//! A per-(user, service, purpose) budget bounds how often a service can
//! query a subject under one purpose. The invariants:
//!
//! * **Fail-closed** — an exhausted budget turns a permit into a
//!   [`DecisionBasis::QuotaExceeded`] denial that is itself audited; a
//!   charge whose durable record is dropped is rolled back and denied the
//!   same way (never disclose against an uncharged budget).
//! * **Windowed** — budgets refill when the virtual-time window rolls.
//! * **Durable** — counters ride in the WAL ([`QuotaCharge`] records) and
//!   in snapshots, so a crash, a checkpoint, or an epoch-fenced failover
//!   can never reset a budget.
//! * **Single-writer** — only the primary charges; followers serve reads
//!   check-only and converge through shipped records.

use privacy_aware_buildings::prelude::*;
use tippers::replication::{Cluster, ReplicationConfig, WriteOutcome};
use tippers::wal::MemLog;
use tippers::{
    DataResponse, DecisionBasis, FaultPlan, FaultPoint, QuotaConfig, VirtualClock, MILLIS_PER_SEC,
};
use tippers_policy::{ActionSet, BuildingPolicy, PolicyId};
use tippers_sensors::{DeviceId, Observation, ObservationPayload};

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

const BUDGET: u32 = 3;

/// A durable BMS holding one user's power readings under a storing,
/// sharing policy, with a 3-per-hour disclosure budget.
fn durable_bms(plan: FaultPlan) -> (MemLog, Tippers, UserId) {
    let ontology = Ontology::standard();
    let building = dbh();
    let log = MemLog::new();
    let (mut bms, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            quota: Some(QuotaConfig {
                budget: BUDGET,
                window_secs: Some(3_600),
            }),
            fault_plan: plan,
            ..TippersConfig::default()
        },
    )
    .expect("open");
    let c = ontology.concepts().clone();
    let user = UserId(1);
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Energy metering",
            building.building,
            c.power_consumption,
            c.energy_management,
        )
        .with_actions(ActionSet::ALL),
    );
    let observations: Vec<Observation> = (9..17)
        .map(|hour| Observation {
            device: DeviceId(0),
            timestamp: Timestamp::at(0, hour, 0),
            space: building.offices[0],
            payload: ObservationPayload::PowerReading { watts: 100.0 },
            subject: Some(user),
        })
        .collect();
    assert_eq!(bms.ingest(&observations).0, 8);
    (log, bms, user)
}

fn request(user: UserId, ontology: &Ontology) -> DataRequest {
    let c = ontology.concepts();
    DataRequest {
        service: ServiceId::new("analytics"),
        purpose: c.energy_management,
        data: c.power_consumption,
        subjects: SubjectSelector::One(user),
        from: Timestamp(0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    }
}

fn basis(response: &DataResponse) -> (bool, DecisionBasis) {
    let result = &response.results[0];
    (result.decision.permits(), result.decision.basis.clone())
}

#[test]
fn exhausted_budget_denies_fail_closed_and_is_audited() {
    let (_log, mut bms, user) = durable_bms(FaultPlan::disarmed());
    let ontology = bms.ontology().clone();
    let req = request(user, &ontology);
    let now = Timestamp::at(0, 18, 0);

    for i in 0..BUDGET {
        let (permitted, b) = basis(&bms.handle_request(&req, now));
        assert!(permitted, "release {i} within budget");
        assert_ne!(b, DecisionBasis::QuotaExceeded);
        assert_eq!(bms.quota_used(user, &req.service, req.purpose, now), i + 1);
    }

    // The budget is spent: the same request now denies, fail-closed.
    let (permitted, b) = basis(&bms.handle_request(&req, now));
    assert!(!permitted);
    assert_eq!(b, DecisionBasis::QuotaExceeded);
    assert_eq!(
        bms.quota_used(user, &req.service, req.purpose, now),
        BUDGET,
        "a denied request must not consume budget"
    );

    // The denial is audited like any other decision — and journaled on
    // the tamper-evident chain with it.
    let last = bms.audit().entries().last().expect("audited");
    assert_eq!(last.subject, user);
    assert_eq!(last.basis, DecisionBasis::QuotaExceeded);
    bms.verify_audit_chain().expect("chain verifies");

    // The budget is scoped to the purpose: the same service querying the
    // same data under a different (permitted) purpose is not affected.
    let mut other = req.clone();
    other.purpose = ontology.concepts().logging;
    let (_, b) = basis(&bms.handle_request(&other, now));
    assert_ne!(b, DecisionBasis::QuotaExceeded, "purpose scoping leaked");
}

#[test]
fn budgets_refill_when_the_window_rolls() {
    let (_log, mut bms, user) = durable_bms(FaultPlan::disarmed());
    let ontology = bms.ontology().clone();
    let req = request(user, &ontology);
    let now = Timestamp::at(0, 18, 0);

    for _ in 0..BUDGET {
        assert!(basis(&bms.handle_request(&req, now)).0);
    }
    assert_eq!(
        basis(&bms.handle_request(&req, now)).1,
        DecisionBasis::QuotaExceeded
    );

    // One window later the budget refills.
    let later = Timestamp(now.0 + 3_600);
    let (permitted, b) = basis(&bms.handle_request(&req, later));
    assert!(permitted, "budget must refill in the next window: {b:?}");
    assert_eq!(bms.quota_used(user, &req.service, req.purpose, later), 1);
}

#[test]
fn dropped_charge_records_deny_rather_than_disclose() {
    let plan = FaultPlan::seeded(fault_seed());
    let (_log, mut bms, user) = durable_bms(plan.clone());
    let ontology = bms.ontology().clone();
    let req = request(user, &ontology);
    let now = Timestamp::at(0, 18, 0);

    plan.arm_limited(FaultPoint::QuotaCounterDrop, 1.0, 1);
    let (permitted, b) = basis(&bms.handle_request(&req, now));
    assert!(!permitted, "an unchargeable release must deny");
    assert_eq!(b, DecisionBasis::QuotaExceeded);
    assert_eq!(bms.quota_charge_drops(), 1);
    assert_eq!(
        bms.quota_used(user, &req.service, req.purpose, now),
        0,
        "the dropped charge was rolled back"
    );

    // With durable charging restored, the budget serves normally.
    let (permitted, _) = basis(&bms.handle_request(&req, now));
    assert!(permitted);
    assert_eq!(bms.quota_used(user, &req.service, req.purpose, now), 1);
}

#[test]
fn counters_survive_crash_recovery_and_checkpoint() {
    let (log, mut bms, user) = durable_bms(FaultPlan::disarmed());
    let ontology = bms.ontology().clone();
    let req = request(user, &ontology);
    let now = Timestamp::at(0, 18, 0);

    for _ in 0..BUDGET {
        assert!(basis(&bms.handle_request(&req, now)).0);
    }
    assert_eq!(bms.wal_append_failures(), 0);
    drop(bms);
    log.crash();

    // Crash + replay: the QuotaCharge records rebuild the ledger; the
    // budget stays spent.
    let reopen = |log: &MemLog| -> Tippers {
        let building = dbh();
        let (bms, _) = Tippers::open_with(
            Box::new(log.clone()),
            Ontology::standard(),
            building.model.clone(),
            TippersConfig {
                quota: Some(QuotaConfig {
                    budget: BUDGET,
                    window_secs: Some(3_600),
                }),
                ..TippersConfig::default()
            },
        )
        .expect("recover");
        bms
    };
    let mut recovered = reopen(&log);
    assert_eq!(
        recovered.quota_used(user, &req.service, req.purpose, now),
        BUDGET,
        "crash reset a disclosure budget"
    );
    assert_eq!(
        basis(&recovered.handle_request(&req, now)).1,
        DecisionBasis::QuotaExceeded
    );

    // Checkpoint compacts the log into a snapshot; the ledger rides in it.
    recovered.checkpoint().expect("checkpoint");
    drop(recovered);
    log.crash();
    let mut again = reopen(&log);
    assert_eq!(
        again.quota_used(user, &req.service, req.purpose, now),
        BUDGET,
        "checkpoint reset a disclosure budget"
    );
    assert_eq!(
        basis(&again.handle_request(&req, now)).1,
        DecisionBasis::QuotaExceeded
    );
}

/// Replicated enforcement: the primary charges and ships, followers serve
/// check-only, and an epoch-fenced failover inherits the spent budget.
#[test]
fn failover_does_not_reset_budgets() {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 7,
            population: Population {
                staff: 1,
                faculty: 1,
                grads: 2,
                undergrads: 2,
                visitors: 0,
            },
            tick_secs: 600,
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    let user = occupants[0].user;
    let plan = FaultPlan::seeded(fault_seed());
    let clock = VirtualClock::at_ms(Timestamp::at(0, 9, 0).0 * MILLIS_PER_SEC);
    let config = TippersConfig {
        quota: Some(QuotaConfig {
            budget: 2,
            window_secs: None,
        }),
        ..TippersConfig::default()
    };
    let mut cluster = Cluster::new(
        ReplicationConfig::default(),
        plan.clone(),
        clock.clone(),
        ontology.clone(),
        building.model.clone(),
        config,
        occupants.clone(),
    )
    .expect("cluster boot");
    let p2 = catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology);
    let outcome = cluster
        .write_to(0, |bms| {
            bms.add_policy(p2);
        })
        .expect("seed policy");
    assert!(matches!(outcome, WriteOutcome::Committed { .. }));
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 8, 30));
    cluster
        .write_to(0, |bms| {
            bms.ingest(&trace.observations);
        })
        .expect("seed observations");

    let c = ontology.concepts().clone();
    let req = DataRequest {
        service: catalog::services::emergency(),
        purpose: c.emergency_response,
        data: c.wifi_association,
        subjects: SubjectSelector::One(user),
        from: Timestamp::at(0, 8, 0),
        to: Timestamp::at(0, 9, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let now = Timestamp(clock.now_ms() / MILLIS_PER_SEC);

    // Two primary reads spend the budget; the charges ship to followers.
    for i in 0..2 {
        let response = cluster.read_from(0, &req, now).expect("primary serves");
        let (permitted, b) = basis(&response);
        assert!(permitted, "primary read {i}: {b:?}");
    }
    cluster.tick().expect("ship");
    assert_eq!(
        cluster
            .node_bms(0)
            .quota_used(user, &req.service, req.purpose, now),
        2
    );

    // A follower's read is check-only: it sees the spent budget (denies)
    // without charging anything itself.
    let follower = (0..3).find(|&i| i != cluster.primary()).unwrap();
    let before = cluster
        .node_bms(follower)
        .quota_used(user, &req.service, req.purpose, now);
    assert_eq!(before, 2, "shipped charges reached the follower");
    let response = cluster
        .read_from(follower, &req, now)
        .expect("follower alive");
    if !response.degraded {
        let (permitted, b) = basis(&response);
        assert!(!permitted, "follower must honor the spent budget");
        assert_eq!(b, DecisionBasis::QuotaExceeded);
    }
    assert_eq!(
        cluster
            .node_bms(follower)
            .quota_used(user, &req.service, req.purpose, now),
        before,
        "a follower read must never charge"
    );

    // The primary itself now denies too.
    let (permitted, b) = basis(&cluster.read_from(0, &req, now).expect("primary"));
    assert!(!permitted);
    assert_eq!(b, DecisionBasis::QuotaExceeded);

    // Epoch-fenced failover: the old primary dies; the new primary's
    // ledger came from shipped records — the budget stays spent.
    let old_epoch = cluster.epoch();
    cluster.crash(0);
    let candidate = cluster.best_candidate().expect("survivors are a quorum");
    let new_epoch = cluster.promote(candidate).expect("promote");
    assert!(new_epoch > old_epoch, "failover is epoch-fenced");
    let response = cluster
        .read_from(candidate, &req, now)
        .expect("new primary serves");
    let (permitted, b) = basis(&response);
    assert!(!permitted, "failover reset a disclosure budget");
    assert_eq!(b, DecisionBasis::QuotaExceeded);
    assert_eq!(
        cluster
            .node_bms(candidate)
            .quota_used(user, &req.service, req.purpose, now),
        2,
        "quota counters regressed across failover"
    );
}
