//! Crash-recovery fuzz for the provable retention sweeper.
//!
//! The same seeded workload as `wal_recovery_fuzz`, but every retention
//! pass runs through [`Tippers::sweep`] — the bracketed
//! `SweepBegin` / `SweepDelete` / `SweepCommit` protocol — instead of the
//! legacy single-record `gc`. The harness then simulates a crash at every
//! WAL record boundary *inside* each sweep (after the begin, after the
//! physical delete, after the commit) and at torn cuts inside each of the
//! three records, and asserts the acceptance invariant: recovery always
//! lands on a state where every expired row was deleted **exactly once**
//! and carries a deletion certificate whose digest matches the
//! uninterrupted run's, byte for byte.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (CI runs 7, 42 and 4711).

use privacy_aware_buildings::prelude::*;
use tippers::wal::{record_boundaries, MemLog};
use tippers::{DeletionCertificate, FaultPlan, FaultPoint, RecoveryReport, StoredRow};
use tippers_bench::{apply_mutation, gen_mutations, Mutation};
use tippers_policy::{BuildingPolicy, UserPreference};
use tippers_sensors::Occupant;
use tippers_spatial::fixtures::Dbh;

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

struct Fixture {
    ontology: Ontology,
    building: Dbh,
    occupants: Vec<Occupant>,
    mutations: Vec<Mutation>,
}

fn fixture(n: usize) -> Fixture {
    let ontology = Ontology::standard();
    let (building, occupants, mutations) = gen_mutations(n, &ontology, fault_seed());
    Fixture {
        ontology,
        building,
        occupants,
        mutations,
    }
}

/// Applies one workload mutation, routing retention passes through the
/// provable sweeper instead of the legacy single-record gc.
fn apply(bms: &mut Tippers, mutation: &Mutation) {
    match mutation {
        Mutation::Gc(now) => {
            bms.sweep(*now);
        }
        other => apply_mutation(bms, other),
    }
}

type DurableState = (Vec<StoredRow>, Vec<UserPreference>, Vec<BuildingPolicy>);

fn durable_state(bms: &Tippers) -> DurableState {
    (
        bms.store().iter().cloned().collect(),
        bms.preferences().to_vec(),
        bms.policies().to_vec(),
    )
}

fn recover(log: &MemLog, fx: &Fixture) -> (Tippers, RecoveryReport) {
    Tippers::open_with(
        Box::new(log.clone()),
        fx.ontology.clone(),
        fx.building.model.clone(),
        TippersConfig::default(),
    )
    .expect("recovery must never error on a crashed log")
}

fn current_segment(log: &MemLog) -> String {
    log.file_names()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .max()
        .expect("log has a current segment")
}

/// Runs the full workload durably, deep-copying the log directory and
/// capturing the in-memory state and certificate ledger after every
/// mutation.
#[allow(clippy::type_complexity)]
fn run_workload(
    fx: &Fixture,
) -> (
    Vec<MemLog>,
    Vec<DurableState>,
    Vec<Vec<DeletionCertificate>>,
) {
    let log = MemLog::new();
    let (mut bms, report) = recover(&log, fx);
    assert_eq!(report.records_replayed, 0);
    bms.register_occupants(&fx.occupants);

    let mut copies = vec![log.deep_copy()];
    let mut expected = vec![durable_state(&bms)];
    let mut certs = vec![bms.deletion_certificates().to_vec()];
    for m in &fx.mutations {
        apply(&mut bms, m);
        copies.push(log.deep_copy());
        expected.push(durable_state(&bms));
        certs.push(bms.deletion_certificates().to_vec());
    }
    assert_eq!(bms.wal_append_failures(), 0, "clean run loses no appends");
    assert!(!bms.sweep_in_progress(), "clean sweeps always commit");
    bms.verify_audit_archive()
        .expect("clean run's audit archive verifies");
    let swept: u64 = certs.last().unwrap().iter().map(|c| c.rows).sum();
    assert!(swept > 0, "the workload's sweeps must actually delete rows");
    (copies, expected, certs)
}

/// Crash at every record boundary inside every sweep — and at torn cuts
/// inside each of the sweep's three records — then recover and check the
/// exactly-once deletion-with-certificate invariant.
#[test]
fn crash_at_any_boundary_mid_sweep_deletes_exactly_once_with_certificate() {
    let fx = fixture(220);
    let (copies, expected, certs) = run_workload(&fx);

    let mut effective_sweeps = 0usize;
    let mut boundary_cuts = 0usize;
    let mut torn_cuts = 0usize;
    for i in 1..copies.len() {
        if !matches!(fx.mutations[i - 1], Mutation::Gc(_)) {
            continue;
        }
        if certs[i].len() == certs[i - 1].len() {
            continue; // nothing expired: the sweep appended no records
        }
        let name = current_segment(&copies[i]);
        let bytes = copies[i].file_bytes(&name).expect("segment exists");
        let prev_len = copies[i - 1].file_bytes(&name).map_or(0, |b| b.len());
        let bounds = record_boundaries(&bytes);
        // The record boundaries this sweep appended, oldest first; a sweep
        // that deleted rows is exactly SweepBegin + SweepDelete +
        // SweepCommit (segments rotate only at checkpoints).
        let new_bounds: Vec<usize> = bounds.into_iter().filter(|&b| b > prev_len).collect();
        assert_eq!(
            new_bounds.len(),
            3,
            "mutation {}: an effective sweep appends its three-record bracket",
            i - 1
        );
        effective_sweeps += 1;

        for (k, &end) in new_bounds.iter().enumerate() {
            // Crash exactly at the record boundary: everything up to and
            // including sweep record k survived.
            let tampered = copies[i].deep_copy();
            tampered.set_file(&name, bytes[..end].to_vec());
            tampered.crash();
            let (mut recovered, report) = recover(&tampered, &fx);
            assert_eq!(
                report.truncated_tails,
                0,
                "boundary {k} of mutation {}",
                i - 1
            );
            assert!(
                !recovered.sweep_in_progress(),
                "recovery must close the sweep interrupted at boundary {k}"
            );
            // Wherever the crash fell, recovery finishes the sweep: the
            // expired rows are gone and the certificate ledger matches the
            // uninterrupted run's — same sweep ids, same digests.
            assert_eq!(
                durable_state(&recovered),
                expected[i],
                "boundary {k} of mutation {}",
                i - 1
            );
            assert_eq!(
                recovered.deletion_certificates(),
                &certs[i][..],
                "boundary {k} of mutation {}: certificate divergence",
                i - 1
            );
            // Exactly once: re-sweeping at the same instant finds nothing.
            let Mutation::Gc(now) = fx.mutations[i - 1] else {
                unreachable!()
            };
            assert_eq!(recovered.sweep(now), 0, "double deletion after recovery");
            recovered
                .verify_audit_archive()
                .expect("recovered chain verifies");
            assert!(recovered.store().index_consistent());
            boundary_cuts += 1;
        }

        // Torn cuts *inside* each sweep record: the cut record is
        // truncated away, so recovery sees the bracket up to record k-1
        // and must still converge — to the pre-sweep state when even the
        // begin record was lost, to the fully-swept state otherwise.
        for (k, &end) in new_bounds.iter().enumerate() {
            let start = if k == 0 { prev_len } else { new_bounds[k - 1] };
            let cut = start + (end - start) / 2;
            if cut <= start || cut >= end {
                continue;
            }
            let tampered = copies[i].deep_copy();
            tampered.set_file(&name, bytes[..cut].to_vec());
            let (recovered, report) = recover(&tampered, &fx);
            assert_eq!(report.truncated_tails, 1, "cut inside sweep record {k}");
            let (want_state, want_certs) = if k == 0 {
                (&expected[i - 1], &certs[i - 1])
            } else {
                (&expected[i], &certs[i])
            };
            assert_eq!(
                &durable_state(&recovered),
                want_state,
                "cut inside sweep record {k} of mutation {}",
                i - 1
            );
            assert_eq!(
                recovered.deletion_certificates(),
                &want_certs[..],
                "cut inside sweep record {k} of mutation {}",
                i - 1
            );
            assert!(!recovered.sweep_in_progress());
            assert!(recovered.store().index_consistent());
            torn_cuts += 1;
        }
    }
    assert!(
        effective_sweeps >= 2,
        "coverage: the workload produced only {effective_sweeps} effective sweeps"
    );
    assert!(boundary_cuts >= 3 * effective_sweeps.min(2));
    assert!(torn_cuts >= effective_sweeps, "torn coverage: {torn_cuts}");
}

/// Non-sweep boundaries stay exact too: the sweeper changes nothing about
/// recovery at the workload's other mutation boundaries.
#[test]
fn crash_at_every_mutation_boundary_recovers_exact_prefix_state() {
    let fx = fixture(220);
    let (copies, expected, certs) = run_workload(&fx);
    for (i, copy) in copies.iter().enumerate() {
        copy.crash();
        let (recovered, report) = recover(copy, &fx);
        assert_eq!(report.truncated_tails, 0, "boundary {i}");
        assert_eq!(&durable_state(&recovered), &expected[i], "boundary {i}");
        assert_eq!(
            recovered.deletion_certificates(),
            &certs[i][..],
            "boundary {i}"
        );
        assert!(!recovered.sweep_in_progress(), "boundary {i}");
        assert!(recovered.store().index_consistent(), "boundary {i}");
    }
}

/// The dedicated crash window: [`FaultPoint::SweepCrash`] fires between
/// the physical delete and the commit. The certificate must not exist
/// before recovery (the sweep is open), and must exist exactly once after
/// — whether recovery happens by restart or by the next scheduled sweep.
#[test]
fn injected_sweep_crash_commits_exactly_once() {
    let thirty_one_days = Timestamp(31 * 86_400);
    let build = |plan: FaultPlan| {
        let ontology = Ontology::standard();
        let building = dbh();
        let log = MemLog::new();
        let (mut bms, _) = Tippers::open_with(
            Box::new(log.clone()),
            ontology.clone(),
            building.model.clone(),
            TippersConfig {
                fault_plan: plan,
                ..TippersConfig::default()
            },
        )
        .expect("open");
        let c = ontology.concepts().clone();
        bms.add_policy(
            BuildingPolicy::new(
                PolicyId(0),
                "Energy metering",
                building.building,
                c.power_consumption,
                c.energy_management,
            )
            .with_actions(tippers_policy::ActionSet::ALL)
            .with_retention("P30D".parse().unwrap()),
        );
        let observations: Vec<_> = (9..17)
            .map(|hour| tippers_sensors::Observation {
                device: tippers_sensors::DeviceId(0),
                timestamp: Timestamp::at(0, hour, 0),
                space: building.offices[0],
                payload: tippers_sensors::ObservationPayload::PowerReading { watts: 100.0 },
                subject: Some(UserId(1)),
            })
            .collect();
        let (stored, _) = bms.ingest(&observations);
        assert_eq!(stored, 8);
        (log, bms, ontology, building)
    };

    // Crash-and-restart recovery.
    let plan = FaultPlan::seeded(fault_seed());
    let (log, mut bms, ontology, building) = build(plan.clone());
    plan.arm_limited(FaultPoint::SweepCrash, 1.0, 1);
    assert_eq!(bms.sweep(thirty_one_days), 8);
    assert!(bms.sweep_in_progress(), "the commit window was interrupted");
    assert!(
        bms.deletion_certificates().is_empty(),
        "no certificate before the commit record"
    );
    drop(bms);
    log.crash();
    let (mut recovered, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    )
    .expect("recover");
    assert!(!recovered.sweep_in_progress());
    assert_eq!(recovered.store().len(), 0, "the delete survived the crash");
    assert_eq!(recovered.deletion_certificates().len(), 1);
    let cert = &recovered.deletion_certificates()[0];
    assert_eq!(cert.rows, 8);
    assert_eq!(cert.time, thirty_one_days);
    assert_eq!(recovered.sweep(thirty_one_days), 0, "exactly once");
    assert_eq!(recovered.deletion_certificates().len(), 1);
    recovered.verify_audit_archive().expect("chain verifies");

    // In-process recovery: the *next* sweep finishes the open bracket
    // before starting its own.
    let plan = FaultPlan::seeded(fault_seed());
    let (_log, mut bms, _ontology, _building) = build(plan.clone());
    plan.arm_limited(FaultPoint::SweepCrash, 1.0, 1);
    assert_eq!(bms.sweep(thirty_one_days), 8);
    assert!(bms.sweep_in_progress());
    bms.sweep(Timestamp(32 * 86_400));
    assert!(!bms.sweep_in_progress());
    assert_eq!(bms.deletion_certificates().len(), 1);
    assert_eq!(bms.deletion_certificates()[0].rows, 8);
}

/// The virtual-time schedule: with `sweep_every_secs` set, sweeps fire
/// from the request path whenever a period of virtual time has elapsed —
/// no external driver, no wall clock.
#[test]
fn virtual_time_schedule_sweeps_from_the_request_path() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            sweep_every_secs: Some(3_600),
            ..TippersConfig::default()
        },
    );
    let c = ontology.concepts().clone();
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Energy metering",
            building.building,
            c.power_consumption,
            c.energy_management,
        )
        .with_actions(tippers_policy::ActionSet::ALL)
        .with_retention("P30D".parse().unwrap()),
    );
    let observe = |hour: u32| tippers_sensors::Observation {
        device: tippers_sensors::DeviceId(0),
        timestamp: Timestamp::at(0, hour, 0),
        space: building.offices[0],
        payload: tippers_sensors::ObservationPayload::PowerReading { watts: 100.0 },
        subject: Some(UserId(1)),
    };
    let observations: Vec<_> = (9..17).map(observe).collect();
    assert_eq!(bms.ingest(&observations).0, 8);

    let request = tippers::DataRequest {
        service: ServiceId::new("analytics"),
        purpose: c.energy_management,
        data: c.power_consumption,
        subjects: SubjectSelector::One(UserId(1)),
        from: Timestamp(0),
        to: Timestamp(40 * 86_400),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };

    // First request after the rows expire: the schedule fires and certifies.
    let t0 = Timestamp(31 * 86_400);
    bms.handle_request(&request, t0);
    assert_eq!(bms.deletion_certificates().len(), 1);
    assert_eq!(bms.deletion_certificates()[0].rows, 8);
    assert_eq!(bms.store().len(), 0);

    // New already-expired rows land, but the period has not elapsed: the
    // next request must NOT sweep.
    assert_eq!(bms.ingest(&[observe(10)]).0, 1);
    bms.handle_request(&request, Timestamp(t0.0 + 1_800));
    assert_eq!(bms.deletion_certificates().len(), 1, "sweep fired early");
    assert_eq!(bms.store().len(), 1);

    // One full period later the schedule fires again and reaps them.
    bms.handle_request(&request, Timestamp(t0.0 + 3_600));
    assert_eq!(bms.deletion_certificates().len(), 2);
    assert_eq!(bms.deletion_certificates()[1].rows, 1);
    assert_eq!(bms.store().len(), 0);
    bms.verify_audit_chain().expect("chain verifies");
}
