//! The tamper-evident audit chain, end to end.
//!
//! Three layers of assurance:
//!
//! * **Differential** — on the paper's corpus (catalog policies over the
//!   DBH population), replaying the chain's `Decision` payloads
//!   reconstructs the legacy audit log byte for byte, and its `Deletion`
//!   payloads reconstruct the certificate ledger: the chain adds
//!   tamper-evidence without changing what is audited.
//! * **Single-tamper rejection** — exhaustively and property-based: a
//!   sealed segment subjected to any single-record mutation, drop, or
//!   swap fails verification.
//! * **Archive corruption** — bit flips injected by the faulty storage
//!   backend ([`FaultPoint::AuditBitFlip`]), direct byte corruption of
//!   archived segments, truncation and segment loss are all detected by
//!   verification-on-read, at every offset tried (100% of injections).

use privacy_aware_buildings::prelude::*;
use proptest::prelude::*;
use tippers::wal::{FaultyLog, MemLog};
use tippers::{
    verify_segment, AuditChain, ChainEvent, ChainFault, DataRequest, FaultPlan, FaultPoint,
    SealedSegment, ARCHIVE_PREFIX, SEGMENT_RECORDS,
};
use tippers_policy::PolicyId;
use tippers_sensors::Occupant;

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A BMS over the paper's corpus: the DBH population, the catalog's
/// thermostat and emergency policies, and a morning of sensor data.
fn paper_bms(config: TippersConfig) -> (Tippers, Vec<Occupant>, Ontology) {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 7,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 3,
                undergrads: 3,
                visitors: 0,
            },
            tick_secs: 600,
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    let mut bms = Tippers::new(ontology.clone(), building.model.clone(), config);
    bms.register_occupants(&occupants);
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 9, 0));
    bms.ingest(&trace.observations);
    (bms, occupants, ontology)
}

fn grid_requests(ontology: &Ontology, occupants: &[Occupant]) -> Vec<DataRequest> {
    let c = ontology.concepts().clone();
    let mut requests = Vec::new();
    for occupant in occupants {
        for (service, purpose, data) in [
            (
                catalog::services::emergency(),
                c.emergency_response,
                c.wifi_association,
            ),
            (catalog::services::concierge(), c.navigation, c.location),
        ] {
            requests.push(DataRequest {
                service,
                purpose,
                data,
                subjects: SubjectSelector::One(occupant.user),
                from: Timestamp::at(0, 8, 0),
                to: Timestamp::at(0, 12, 0),
                requester_space: None,
                priority: Default::default(),
                deadline: None,
            });
        }
    }
    requests
}

#[test]
fn chain_replay_reconstructs_the_legacy_audit_exactly() {
    let (mut bms, occupants, ontology) = paper_bms(TippersConfig::default());
    let now = Timestamp::at(0, 12, 0);
    for request in grid_requests(&ontology, &occupants) {
        bms.handle_request(&request, now);
    }
    // A retention pass journals Deletion events between the decisions.
    bms.sweep(Timestamp::at(400, 0, 0));

    assert!(
        bms.audit().entries().len() >= 2 * occupants.len(),
        "the grid must audit a decision per (occupant, service)"
    );
    bms.verify_audit_chain().expect("untampered chain verifies");

    // Replay: parse every chained payload back into the event it journals.
    let mut decisions = Vec::new();
    let mut deletions = Vec::new();
    for record in bms.audit_chain().open_records() {
        match serde_json::from_str::<ChainEvent>(&record.payload).expect("payloads are canonical") {
            ChainEvent::Decision { entry } => decisions.push(entry),
            ChainEvent::Deletion { certificate } => deletions.push(certificate),
        }
    }
    assert_eq!(
        decisions.as_slice(),
        bms.audit().entries(),
        "chain replay diverged from the legacy audit sequence"
    );
    assert_eq!(
        deletions.as_slice(),
        bms.deletion_certificates(),
        "chain replay diverged from the certificate ledger"
    );
}

/// Builds a sealed segment over `payloads` (padded to at least two
/// records so drops and swaps are always possible).
fn sealed(payloads: &[String]) -> SealedSegment {
    let mut chain = AuditChain::new();
    for p in payloads {
        chain.append(p.clone());
    }
    let mut segments = chain.seal(payloads.len());
    assert_eq!(segments.len(), 1);
    segments.pop().unwrap()
}

#[test]
fn sealed_segment_rejects_every_single_record_mutation_drop_and_swap() {
    let payloads: Vec<String> = (0..12)
        .map(|i| format!("{{\"event\":\"e{i}\",\"n\":{i}}}"))
        .collect();
    let clean = sealed(&payloads);
    assert_eq!(verify_segment(&clean).expect("clean segment verifies"), 12);

    let mut rejected = 0usize;
    for i in 0..clean.records.len() {
        // Payload mutation (a single flipped character).
        let mut s = clean.clone();
        let mut bytes = s.records[i].payload.clone().into_bytes();
        bytes[0] ^= 0x01;
        s.records[i].payload = String::from_utf8_lossy(&bytes).into_owned();
        assert!(verify_segment(&s).is_err(), "payload mutation at {i}");
        rejected += 1;

        // MAC mutation.
        let mut s = clean.clone();
        s.records[i].mac = format!("{i:0>64}");
        assert!(verify_segment(&s).is_err(), "mac mutation at {i}");
        rejected += 1;

        // Sequence-number bump.
        let mut s = clean.clone();
        s.records[i].seq += 1;
        assert!(verify_segment(&s).is_err(), "seq bump at {i}");
        rejected += 1;

        // Drop.
        let mut s = clean.clone();
        s.records.remove(i);
        assert!(verify_segment(&s).is_err(), "drop at {i}");
        rejected += 1;

        // Swap with the next record.
        if i + 1 < clean.records.len() {
            let mut s = clean.clone();
            s.records.swap(i, i + 1);
            assert!(verify_segment(&s).is_err(), "swap at {i}");
            rejected += 1;
        }
    }
    // Root and link tampering.
    let mut s = clean.clone();
    s.root = format!("{:0>64}", 7);
    assert!(verify_segment(&s).is_err(), "root tamper");
    let mut s = clean.clone();
    s.prev_link = format!("{:0>64}", 9);
    assert!(verify_segment(&s).is_err(), "prev-link tamper");
    rejected += 2;
    assert_eq!(rejected, 12 * 4 + 11 + 2, "every tamper was exercised");
}

proptest! {
    /// Property form of the same claim: for ANY payload set and ANY
    /// single-record tamper (mutation, drop, or swap), verification fails.
    #[test]
    fn any_single_record_tamper_is_rejected(
        payloads in proptest::collection::vec("[ -~]{0,40}", 2..24),
        index in 0usize..24,
        kind in 0u8..4,
        flip in 0usize..64,
    ) {
        let clean = sealed(&payloads);
        prop_assert!(verify_segment(&clean).is_ok());
        let i = index % payloads.len();
        let mut s = clean.clone();
        match kind {
            0 => {
                // Mutate one payload character (append when empty, so the
                // record always differs from what was MAC'd).
                let mut bytes = s.records[i].payload.clone().into_bytes();
                if bytes.is_empty() {
                    bytes.push(b'!');
                } else {
                    let at = flip % bytes.len();
                    bytes[at] = if bytes[at] == b'!' { b'"' } else { b'!' };
                }
                s.records[i].payload = String::from_utf8(bytes).unwrap();
            }
            1 => {
                s.records.remove(i);
            }
            2 => {
                let j = (i + 1) % s.records.len();
                s.records.swap(i, j);
            }
            _ => {
                let mut mac = s.records[i].mac.clone().into_bytes();
                let at = flip % mac.len();
                mac[at] = if mac[at] == b'0' { b'1' } else { b'0' };
                s.records[i].mac = String::from_utf8(mac).unwrap();
            }
        }
        prop_assert!(
            verify_segment(&s).is_err(),
            "tamper kind {} at record {} went undetected", kind, i
        );
    }
}

/// Drives enough audited decisions through a durable BMS to seal and
/// archive `segments` chain segments.
fn durable_bms_with_archive(log: Box<dyn tippers::wal::LogIo>, segments: u64) -> Tippers {
    let ontology = Ontology::standard();
    let building = dbh();
    let (mut bms, _) = Tippers::open_with(
        log,
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    )
    .expect("open");
    let c = ontology.concepts().clone();
    let request = |user: u64| DataRequest {
        service: ServiceId::new("auditor"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(UserId(user)),
        from: Timestamp(0),
        to: Timestamp::at(0, 12, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let mut user = 0u64;
    while bms.audit_chain().sealed_segments() < segments {
        user += 1;
        bms.handle_request(&request(user), Timestamp::at(0, 10, 0));
    }
    assert_eq!(bms.audit_archive_failures(), 0);
    bms
}

#[test]
fn storage_injected_bit_flips_are_detected_at_every_offset() {
    // An archived segment is a few KiB of JSON; the offsets cover the
    // name prefix, early structure, and (modulo length) arbitrary interior
    // bytes. Every single injection must be caught.
    let offsets: Vec<i64> = (0..32).map(|i| i * 211 + 1).collect();
    let mut detected = 0usize;
    for &offset in &offsets {
        let plan = FaultPlan::seeded(fault_seed());
        plan.arm_with_param(FaultPoint::AuditBitFlip, 1.0, offset);
        let log = MemLog::new();
        let bms = durable_bms_with_archive(Box::new(FaultyLog::new(log.clone(), plan.clone())), 1);
        assert!(
            plan.injected(FaultPoint::AuditBitFlip) >= 1,
            "offset {offset}: the fault never fired"
        );
        assert!(
            bms.verify_audit_archive().is_err(),
            "offset {offset}: a flipped archive bit went undetected"
        );
        detected += 1;
    }
    assert_eq!(detected, offsets.len(), "100% of injections detected");
}

#[test]
fn archived_segment_byte_corruption_truncation_and_loss_are_detected() {
    let log = MemLog::new();
    let bms = durable_bms_with_archive(Box::new(log.clone()), 2);
    let checked = bms.verify_audit_archive().expect("clean archive verifies");
    assert_eq!(checked, 2 * SEGMENT_RECORDS as u64);

    let names: Vec<String> = {
        let mut n: Vec<String> = log
            .file_names()
            .into_iter()
            .filter(|n| n.starts_with(ARCHIVE_PREFIX))
            .collect();
        n.sort();
        n
    };
    assert_eq!(names.len(), 2);

    // Bit rot: flip one bit at a stride of positions across each archived
    // segment. Flips inside JSON structure make the segment unparseable
    // (Corrupt); flips inside record content fail a MAC, link, or root.
    let mut flips = 0usize;
    for name in &names {
        let clean = log.file_bytes(name).expect("archived segment");
        for pos in (0..clean.len()).step_by(97) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            log.set_file(name, bytes);
            assert!(
                bms.verify_audit_archive().is_err(),
                "flip at byte {pos} of {name} went undetected"
            );
            log.set_file(name, clean.clone());
            flips += 1;
        }
    }
    assert!(flips >= 100, "flip coverage: {flips}");
    bms.verify_audit_archive()
        .expect("restored archive verifies");

    // Truncation of a segment file: unparseable, hence Corrupt.
    let clean = log.file_bytes(&names[1]).unwrap();
    log.set_file(&names[1], clean[..clean.len() / 2].to_vec());
    assert!(matches!(
        bms.verify_audit_archive(),
        Err(ChainFault::Corrupt { .. })
    ));
    log.set_file(&names[1], clean.clone());

    // Losing the newest segment breaks continuity with the live chain.
    log.set_file(&names[1], b"{}".to_vec());
    assert!(bms.verify_audit_archive().is_err(), "tail loss undetected");
    log.set_file(&names[1], clean.clone());

    // Replacing the older segment with a copy of the newer one breaks
    // lineage from genesis (reorder/splice).
    let seg0 = log.file_bytes(&names[0]).unwrap();
    log.set_file(&names[0], clean.clone());
    assert!(bms.verify_audit_archive().is_err(), "splice undetected");
    log.set_file(&names[0], seg0);
    bms.verify_audit_archive().expect("archive intact again");
}

/// Archived segments survive a crash and recovery resumes the lineage:
/// the recovered node's fresh records still verify against the old
/// archive, and new seals extend it.
#[test]
fn recovery_resumes_the_chain_after_the_last_sealed_segment() {
    let log = MemLog::new();
    let bms = durable_bms_with_archive(Box::new(log.clone()), 1);
    let head_seq = bms.audit_chain().next_seq();
    assert!(head_seq >= SEGMENT_RECORDS as u64);
    drop(bms);
    log.crash();

    let ontology = Ontology::standard();
    let building = dbh();
    let (mut recovered, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    )
    .expect("recover");
    // The chain resumes exactly after the archived segment: sequence
    // numbers continue from the seal point (unsealed pre-crash records
    // are gone by design — what was never archived was never attested).
    assert_eq!(recovered.audit_chain().next_seq(), SEGMENT_RECORDS as u64);
    recovered
        .verify_audit_archive()
        .expect("resumed lineage verifies");

    // New audited decisions keep extending the same lineage.
    let c = ontology.concepts().clone();
    let request = DataRequest {
        service: ServiceId::new("auditor"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(UserId(1)),
        from: Timestamp(0),
        to: Timestamp::at(0, 12, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    for _ in 0..(SEGMENT_RECORDS + 4) {
        recovered.handle_request(&request, Timestamp::at(0, 11, 0));
    }
    assert!(recovered.audit_chain().sealed_segments() >= 1);
    recovered
        .verify_audit_archive()
        .expect("extended lineage verifies");
}
