//! Kill-and-restore: a BMS is snapshotted, destroyed, and rebuilt from the
//! serialized snapshot. Stored observations, submitted preferences, and the
//! audit trail all survive; enforcement decisions after recovery are
//! identical to before the crash.

use privacy_aware_buildings::prelude::*;
use tippers::wal::{MemLog, Wal};
use tippers::{Snapshot, SnapshotError, WalConfig, WalError, WalRecord};
use tippers_policy::{ActionSet, BuildingPolicy, DataAction, PreferenceScope, UserPreference};

fn occupancy_analytics_policy(
    building: tippers_spatial::SpaceId,
    ontology: &Ontology,
) -> BuildingPolicy {
    let c = ontology.concepts();
    BuildingPolicy::new(
        PolicyId(0),
        "Occupancy analytics",
        building,
        c.occupancy,
        c.analytics,
    )
    .with_actions(ActionSet::of(&[DataAction::Share]))
}

fn deny_occupancy(user: UserId, ontology: &Ontology) -> UserPreference {
    let c = ontology.concepts();
    UserPreference::new(
        PreferenceId(0),
        user,
        PreferenceScope {
            data: Some(c.occupancy),
            ..Default::default()
        },
        Effect::Deny,
    )
}

#[test]
fn preferences_and_store_survive_a_crash() {
    let ontology = Ontology::standard();
    let c = ontology.concepts().clone();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 11,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 2,
                undergrads: 2,
                visitors: 0,
            },
            tick_secs: 600,
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    let opted_out = occupants[0].user;
    let other = occupants[1].user;

    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(&occupants);
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(occupancy_analytics_policy(building.building, &ontology));
    bms.submit_preference(deny_occupancy(opted_out, &ontology), Timestamp::at(0, 7, 0));
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 10, 0));
    let (stored, _) = bms.ingest(&trace.observations);
    assert!(stored > 0);

    let request_for = |user: UserId| DataRequest {
        service: catalog::services::smart_meeting(),
        purpose: c.analytics,
        data: c.occupancy,
        subjects: SubjectSelector::One(user),
        from: Timestamp::at(0, 8, 0),
        to: Timestamp::at(0, 10, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let now = Timestamp::at(0, 10, 30);
    let before_denied = bms.handle_request(&request_for(opted_out), now);
    let before_allowed = bms.handle_request(&request_for(other), now);
    assert_eq!(
        before_denied.results[0].decision.effect,
        Effect::Deny,
        "the opted-out user is denied before the crash"
    );
    assert_eq!(before_allowed.results[0].decision.effect, Effect::Allow);

    // --- crash: serialize the durable state, destroy the BMS ---------------
    let rows_before = bms.store().len();
    let audit_before = bms.audit().entries().len();
    let json = bms.snapshot().to_json();
    drop(bms);

    // --- restore: parse the snapshot, re-apply admin configuration ---------
    let snapshot = Snapshot::from_json(&json).expect("snapshot parses");
    let mut restored = Tippers::from_snapshot(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        snapshot,
    )
    .expect("snapshot restores");
    restored.register_occupants(&occupants);
    restored.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    restored.add_policy(occupancy_analytics_policy(building.building, &ontology));

    // Durable state survived byte-for-byte.
    assert_eq!(restored.store().len(), rows_before);
    assert_eq!(restored.audit().entries().len(), audit_before);
    assert!(restored
        .preferences()
        .iter()
        .any(|p| p.user == opted_out && p.effect == Effect::Deny));

    // Decisions after recovery are identical to before the crash.
    let after_denied = restored.handle_request(&request_for(opted_out), now);
    let after_allowed = restored.handle_request(&request_for(other), now);
    assert_eq!(
        after_denied.results[0].decision, before_denied.results[0].decision,
        "the preference still denies after restore"
    );
    assert_eq!(
        after_allowed.results[0].decision,
        before_allowed.results[0].decision
    );
    assert_eq!(
        after_allowed.results[0].records, before_allowed.results[0].records,
        "released records are identical after restore"
    );

    // New preferences keep getting fresh ids (the allocator survived too).
    let new_id = restored.submit_preference(deny_occupancy(other, &ontology), now);
    assert!(
        restored
            .preferences()
            .iter()
            .filter(|p| p.id == new_id)
            .count()
            == 1,
        "restored id allocator must not reuse ids"
    );
}

/// A snapshot from a future format version is refused, not misread.
#[test]
fn foreign_snapshot_versions_are_refused() {
    let ontology = Ontology::standard();
    let building = dbh();
    let bms = Tippers::new(ontology, building.model.clone(), TippersConfig::default());
    let mut snapshot = bms.snapshot();
    snapshot.version += 1;
    let err = Snapshot::from_json(&snapshot.to_json()).unwrap_err();
    assert!(matches!(err, SnapshotError::UnsupportedVersion { .. }));
}

/// `Tippers::from_snapshot` surfaces a future version as a typed error —
/// it never constructs a BMS around state it cannot interpret.
#[test]
fn from_snapshot_refuses_future_versions() {
    let ontology = Ontology::standard();
    let building = dbh();
    let bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let mut snapshot = bms.snapshot();
    snapshot.version += 3;
    let err = Tippers::from_snapshot(
        ontology,
        building.model.clone(),
        TippersConfig::default(),
        snapshot,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        SnapshotError::UnsupportedVersion { found, supported }
            if found == supported + 3
    ));
}

/// A snapshot whose id allocator trails its own preferences would reissue
/// ids already referenced by audit records; recovery refuses it.
#[test]
fn from_snapshot_refuses_inconsistent_id_allocator() {
    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts().clone();
    let bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let mut snapshot = bms.snapshot();
    snapshot.preferences.push(UserPreference::new(
        PreferenceId(9),
        UserId(1),
        PreferenceScope {
            data: Some(c.occupancy),
            ..Default::default()
        },
        Effect::Deny,
    ));
    snapshot.next_preference_id = 4; // trails preference 9
    let err = Tippers::from_snapshot(
        ontology,
        building.model.clone(),
        TippersConfig::default(),
        snapshot,
    )
    .unwrap_err();
    assert!(matches!(err, SnapshotError::Inconsistent(_)));
}

/// Every malformed-JSON shape decodes to a typed `Corrupt` error — no
/// panic, no unwrap, no partially-constructed snapshot.
#[test]
fn malformed_snapshot_json_is_a_typed_error() {
    let ontology = Ontology::standard();
    let building = dbh();
    let bms = Tippers::new(ontology, building.model.clone(), TippersConfig::default());
    let valid = bms.snapshot().to_json();

    let truncated = &valid[..valid.len() / 2];
    let type_confused = valid.replacen("\"version\":1", "\"version\":\"one\"", 1);
    assert_ne!(type_confused, valid, "replacement must have matched");
    for malformed in [
        truncated,
        type_confused.as_str(),
        "",
        "{}",
        "null",
        "[1,2,3]",
    ] {
        match Snapshot::from_json(malformed) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt for {malformed:?}, got {other:?}"),
        }
    }
}

/// Shed (overload) decisions are durable like any other decision: their
/// `Overload` audit entries ride the WAL checkpoint across a crash, and a
/// recovered BMS under the same admission configuration sheds the same
/// request sequence identically.
#[test]
fn shed_decisions_survive_wal_replay_identically() {
    use tippers::{AdmissionConfig, DecisionBasis, Priority, TokenBucketConfig};

    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts().clone();
    // One-token bucket with a glacial refill: the second same-instant
    // request is always shed.
    let config = || TippersConfig {
        admission: Some(AdmissionConfig {
            bucket: TokenBucketConfig {
                capacity: 1.0,
                refill_per_sec: 0.001,
            },
            ..AdmissionConfig::default()
        }),
        ..TippersConfig::default()
    };
    let request = DataRequest {
        service: catalog::services::smart_meeting(),
        purpose: c.analytics,
        data: c.occupancy,
        subjects: SubjectSelector::One(UserId(1)),
        from: Timestamp::at(0, 8, 0),
        to: Timestamp::at(0, 10, 0),
        requester_space: None,
        priority: Priority::Interactive,
        deadline: None,
    };
    let now = Timestamp::at(0, 10, 30);
    let run = |bms: &mut Tippers| {
        let admitted = bms.handle_request(&request, now);
        let shed = bms.handle_request(&request, now);
        (admitted, shed)
    };

    let log = MemLog::new();
    let (mut bms, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        config(),
    )
    .expect("fresh log opens");
    bms.add_policy(occupancy_analytics_policy(building.building, &ontology));
    let (before_admitted, before_shed) = run(&mut bms);
    assert_ne!(
        before_admitted.results[0].decision.basis,
        DecisionBasis::Overload
    );
    assert_eq!(
        before_shed.results[0].decision.basis,
        DecisionBasis::Overload,
        "the second same-instant request is shed"
    );
    let audit_before = bms.audit().entries().to_vec();
    assert!(
        audit_before
            .iter()
            .any(|e| e.basis == DecisionBasis::Overload),
        "the shed is audited under its own basis"
    );
    bms.checkpoint().expect("checkpoint");
    drop(bms);

    // --- crash + replay ----------------------------------------------------
    let (mut restored, _) = Tippers::open_with(
        Box::new(log),
        ontology.clone(),
        building.model.clone(),
        config(),
    )
    .expect("log replays");
    restored.add_policy(occupancy_analytics_policy(building.building, &ontology));
    assert_eq!(
        restored.audit().entries(),
        &audit_before[..],
        "Overload audit entries survive WAL replay byte-for-byte"
    );
    // The recovered BMS (fresh admission state, same configuration)
    // sheds the same sequence identically.
    let (after_admitted, after_shed) = run(&mut restored);
    assert_eq!(
        after_admitted.results[0].decision,
        before_admitted.results[0].decision
    );
    assert_eq!(
        after_shed.results[0].decision, before_shed.results[0].decision,
        "shed decisions replay identically after recovery"
    );
}

/// A checkpoint record claiming a policy id at or above its own allocator
/// is internally inconsistent; WAL replay refuses it with a typed error
/// rather than recovering a BMS that could reissue live policy ids.
#[test]
fn checkpoint_with_inconsistent_policy_ids_fails_replay() {
    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts().clone();

    let bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let rogue = BuildingPolicy::new(
        PolicyId(7),
        "rogue",
        building.building,
        c.occupancy,
        c.analytics,
    );
    let record = WalRecord::Checkpoint {
        snapshot: bms.snapshot(),
        policies: vec![rogue],
        next_policy_id: 2, // trails policy 7
    };
    let log = MemLog::new();
    let (mut wal, _, _) =
        Wal::open(Box::new(log.clone()), WalConfig::default()).expect("fresh log opens");
    wal.append(&record).expect("append");

    let err = Tippers::open_with(
        Box::new(log),
        ontology,
        building.model.clone(),
        TippersConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        WalError::Snapshot(SnapshotError::Inconsistent(_))
    ));
}
