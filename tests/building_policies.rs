//! Experiment E5: each of the paper's §III.A building policies expressed,
//! actuated, and enforced end-to-end.

use privacy_aware_buildings::prelude::*;
use tippers_policy::{PolicyId, Timestamp};
use tippers_sensors::{DeploymentConfig, ObservationPayload};

fn sim_config() -> SimulatorConfig {
    SimulatorConfig {
        seed: 11,
        population: Population {
            staff: 6,
            faculty: 6,
            grads: 8,
            undergrads: 8,
            visitors: 3,
        },
        tick_secs: 600,
        deployment: DeploymentConfig {
            cameras: 6,
            wifi_aps: 60,
            beacons: 30,
            power_meters: 20,
            motion_everywhere: true,
            hvac_per_floor: true,
            badge_readers: true,
        },
        identify_probability: 0.3,
    }
}

/// Policy 1: occupied rooms are held at 70 °F — the control loop activates
/// HVAC exactly on floors with occupancy signals.
#[test]
fn policy1_thermostat_actuation() {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(sim_config(), &ontology);
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));

    // Overnight: nobody in, no active HVAC.
    sim.set_clock(Timestamp::at(0, 3, 0));
    let night = sim.run_until(Timestamp::at(0, 4, 0));
    bms.ingest(&night.observations);
    let cmds = bms.thermostat_commands(&building.floors, Timestamp::at(0, 4, 0));
    assert!(cmds.iter().all(|c| !c.active), "no HVAC at night");

    // Midday: people are in; some floor must be heated to exactly 70F.
    sim.set_clock(Timestamp::at(0, 10, 0));
    let day = sim.run_until(Timestamp::at(0, 12, 0));
    bms.ingest(&day.observations);
    let cmds = bms.thermostat_commands(&building.floors, Timestamp::at(0, 12, 0));
    assert!(cmds.iter().any(|c| c.active), "occupied floors get HVAC");
    assert!(cmds
        .iter()
        .all(|c| (c.target_fahrenheit - 70.0).abs() < 1e-9));
}

/// Policy 2: WiFi association logs are stored with a six-month retention.
#[test]
fn policy2_stores_wifi_with_retention() {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(sim_config(), &ontology);
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    sim.set_clock(Timestamp::at(0, 9, 0));
    let trace = sim.run_until(Timestamp::at(0, 11, 0));
    let (stored, _) = bms.ingest(&trace.observations);
    assert!(stored > 0);
    // Every stored row is a network observation with a P6M expiry.
    let six_months = 6 * 30 * 86_400;
    for row in bms.store().iter() {
        assert!(matches!(
            row.observation.payload,
            ObservationPayload::WifiAssociation { .. } | ObservationPayload::BeaconSighting { .. }
        ));
        let expires = row.expires_at.expect("P6M retention set");
        assert_eq!(expires.seconds() - row.stored_at.seconds(), six_months);
    }
    // GC before expiry keeps everything; after expiry removes everything.
    let total = bms.store().len();
    assert_eq!(bms.gc(Timestamp(six_months / 2)), 0);
    assert_eq!(bms.gc(Timestamp(six_months + 86_400 * 2)), total);
}

/// Policy 3: meeting-room access events (badge verifications) are only
/// stored when the access-control policy exists.
#[test]
fn policy3_authorizes_badge_storage() {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(sim_config(), &ontology);
    let building = sim.dbh().clone();

    let run = |with_policy: bool| {
        let mut bms = Tippers::new(
            ontology.clone(),
            building.model.clone(),
            TippersConfig::default(),
        );
        let mut sim = BuildingSimulator::new(sim_config(), &ontology);
        bms.register_occupants(sim.occupants());
        if with_policy {
            bms.add_policy(catalog::policy3_meeting_room_access(
                PolicyId(0),
                building.building,
                building.meeting_rooms.clone(),
                &ontology,
            ));
        }
        sim.set_clock(Timestamp::at(0, 8, 0));
        let trace = sim.run_until(Timestamp::at(0, 18, 0));
        bms.ingest(&trace.observations);
        bms.store()
            .iter()
            .filter(|r| matches!(r.observation.payload, ObservationPayload::BadgeSwipe { .. }))
            .count()
    };
    let _ = &mut sim;
    assert!(run(true) > 0, "badge swipes stored under Policy 3");
    assert_eq!(run(false), 0, "no policy, no storage (default deny)");
}

/// Policy 4: event details flow only to nearby requesters.
#[test]
fn policy4_proximity_gated_disclosure() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let c = ontology.concepts().clone();
    bms.add_policy(catalog::policy4_event_proximity(
        PolicyId(0),
        vec![building.lobby],
        &ontology,
    ));
    // A registered participant opted in to event details.
    let participant = UserId(7);
    bms.submit_preference(
        tippers_policy::UserPreference::new(
            PreferenceId(0),
            participant,
            tippers_policy::PreferenceScope {
                data: Some(c.event_details),
                ..Default::default()
            },
            Effect::Allow,
        ),
        Timestamp::at(0, 9, 0),
    );
    let request = |requester_space| tippers::DataRequest {
        service: catalog::services::concierge(),
        purpose: c.event_coordination,
        data: c.event_details,
        subjects: tippers::SubjectSelector::One(participant),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(0, 23, 0),
        requester_space: Some(requester_space),
        priority: Default::default(),
        deadline: None,
    };
    // Nearby (in the lobby): permitted.
    let near = bms.handle_request(&request(building.lobby), Timestamp::at(0, 12, 0));
    assert!(near.results[0].decision.permits());
    // Far away (an upper-floor office): denied — no authorizing policy
    // applies because the proximity condition fails.
    let far_office = *building.offices.last().unwrap();
    let far = bms.handle_request(&request(far_office), Timestamp::at(0, 12, 0));
    assert!(!far.results[0].decision.permits());
}

/// The Figure 2 document itself can be imported and used as Policy 2.
#[test]
fn figure2_document_round_trips_into_enforcement() {
    let ontology = Ontology::standard();
    let building = dbh();
    let codec = tippers_policy::PolicyCodec::new(&ontology, &building.model);
    let imported = codec
        .from_document(&tippers_policy::figures::fig2_document(), 0)
        .expect("figure 2 imports");
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let id = bms.add_policy(imported.into_iter().next().unwrap());
    let policy = bms.policy(id).unwrap();
    assert!(policy.is_required());
    assert_eq!(policy.retention.unwrap().months, 6);
}
