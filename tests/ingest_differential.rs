//! Capture ≡ store differential harness for the batched ingest pipeline.
//!
//! The batched, backpressured capture path (`Tippers::ingest_batched`)
//! exists for throughput, not for different semantics: under no overload
//! its stored rows must be **byte-identical** to the one-at-a-time
//! `Tippers::ingest` path over the same corpus, no stored row may ever
//! violate the zone's capture filter, and backpressure must hand
//! observations back (capped retry at the producer) instead of buffering
//! or silently dropping them. A replication leg pins the group-shipping
//! equivalence: one `write_batch_to` commits the same state as N
//! `write_to` calls while shipping fewer frame rounds.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (CI runs 7, 42 and 4711).

use std::collections::HashMap;

use privacy_aware_buildings::prelude::*;
use tippers::replication::{Cluster, ReplicationConfig, WriteOutcome};
use tippers::{CaptureDropReason, CaptureFilter, FaultPlan, IngestConfig, StoredRow, VirtualClock};
use tippers_bench::{gen_policies, gen_preferences, service_pool};
use tippers_policy::{
    ActionSet, BuildingPolicy, DataAction, IsoDuration, Modality, PreferenceScope, UserPreference,
};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload, Occupant};
use tippers_spatial::fixtures::Dbh;

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

struct Fixture {
    ontology: Ontology,
    building: Dbh,
    occupants: Vec<Occupant>,
    policies: Vec<BuildingPolicy>,
    preferences: Vec<UserPreference>,
    trace: Vec<Observation>,
}

/// The shared corpus both twins enforce: the catalog pair, a
/// building-wide telemetry baseline (so subjectless environmental feeds
/// store), a seeded generated policy mix, and seeded preferences topped
/// with one unconditional location deny — the capture filter must be
/// non-trivial on every seed.
fn fixture() -> Fixture {
    let seed = fault_seed();
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 3,
                undergrads: 3,
                visitors: 0,
            },
            tick_secs: 300,
            ..SimulatorConfig::default()
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 13, 0)).observations;

    let c = ontology.concepts().clone();
    let services = service_pool(3);
    let mut policies = vec![
        BuildingPolicy::new(
            PolicyId(0),
            "Building telemetry baseline",
            building.building,
            c.data,
            c.logging,
        )
        .with_actions(ActionSet::of(&[DataAction::Collect, DataAction::Store]))
        .with_retention(IsoDuration::hours(2))
        .with_modality(Modality::OptOut),
        catalog::policy1_thermostat(PolicyId(0), building.building, &ontology),
        catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology),
    ];
    policies.extend(gen_policies(
        16,
        &ontology,
        &building,
        &services,
        seed ^ 0xB0,
    ));

    let mut preferences = gen_preferences(
        occupants.len(),
        4,
        &ontology,
        &building,
        &services,
        seed ^ 0x9E0,
    );
    // Occupant 0 opts out of location capture unconditionally: their MAC
    // lands on the capture-suppression list on every seed.
    preferences.push(UserPreference::new(
        PreferenceId(9_000),
        occupants[0].user,
        PreferenceScope {
            data: Some(c.location),
            ..PreferenceScope::default()
        },
        Effect::Deny,
    ));

    Fixture {
        ontology,
        building,
        occupants,
        policies,
        preferences,
        trace,
    }
}

fn build_bms(fx: &Fixture, ingest: Option<IngestConfig>) -> Tippers {
    let mut bms = Tippers::new(
        fx.ontology.clone(),
        fx.building.model.clone(),
        TippersConfig {
            ingest,
            ..TippersConfig::default()
        },
    );
    bms.register_occupants(&fx.occupants);
    for p in &fx.policies {
        bms.add_policy(p.clone());
    }
    for p in &fx.preferences {
        bms.submit_preference(p.clone(), Timestamp::at(0, 7, 0));
    }
    bms
}

fn capture_filter(fx: &Fixture, bms: &Tippers) -> CaptureFilter {
    let macs: HashMap<UserId, MacAddress> = fx.occupants.iter().map(|o| (o.user, o.mac)).collect();
    CaptureFilter::derive(&fx.ontology, bms.policies(), bms.preferences(), &macs)
}

fn rows(bms: &Tippers) -> Vec<StoredRow> {
    bms.store().iter().cloned().collect()
}

/// Under no overload, the batched pipeline and the one-at-a-time path
/// store byte-identical rows in identical order over any stream the
/// capture filter admits.
#[test]
fn batched_rows_are_byte_identical_to_the_one_at_a_time_path() {
    let seed = fault_seed();
    let fx = fixture();
    let mut legacy = build_bms(&fx, None);
    let mut batched = build_bms(
        &fx,
        Some(IngestConfig {
            // Headroom keeps every zone below the coarsen watermark: the
            // differential holds on the full-fidelity rung.
            mailbox_capacity: 1 << 16,
            ..IngestConfig::default()
        }),
    );
    let filter = capture_filter(&fx, &legacy);
    assert!(
        !filter.suppressed_macs().is_empty(),
        "the corpus must produce a non-trivial capture filter (seed {seed})"
    );
    // The legacy path's capture-time suppression happens at the device
    // (settings sync); feed both twins the stream those devices emit.
    let stream: Vec<Observation> = fx
        .trace
        .iter()
        .filter(|o| !filter.suppresses(o))
        .cloned()
        .collect();
    assert!(stream.len() > 200, "stream too small: {}", stream.len());

    for obs in &stream {
        legacy.ingest(std::slice::from_ref(obs));
    }
    for (i, chunk) in stream.chunks(200).enumerate() {
        let report = batched.ingest_batched(chunk, i as i64);
        assert!(report.rejected.is_empty(), "no overload, no backpressure");
        assert_eq!(report.suppressed, 0, "no overload, no ladder suppression");
        assert_eq!(report.coarsened, 0, "no overload, no coarsening");
        assert!(report.synced);
    }

    let legacy_rows = rows(&legacy);
    let batched_rows = rows(&batched);
    assert!(
        legacy_rows.len() > 50,
        "workload must store rows (seed {seed}): {}",
        legacy_rows.len()
    );
    assert_eq!(
        legacy_rows, batched_rows,
        "batched store diverged from the one-at-a-time path (seed {seed})"
    );
    // Byte-identical, not merely equal: the serialized forms match too.
    assert_eq!(format!("{legacy_rows:?}"), format!("{batched_rows:?}"));

    let stats = batched.ingest_stats().expect("pipeline configured");
    assert_eq!(stats.admitted, stream.len() as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.stored, batched_rows.len() as u64);
    assert_eq!(stats.rung_observations[0], stream.len() as u64);
    // Every non-stored observation is an audited storage-time denial —
    // exactly the drops the legacy path counts.
    assert_eq!(
        stats.unauthorized as usize,
        stream.len() - batched_rows.len()
    );
}

/// No stored row ever violates the zone capture filter, even when the
/// raw stream carries suppressed MACs — and each suppression is audited.
#[test]
fn no_stored_row_violates_the_capture_filter() {
    let fx = fixture();
    let mut bms = build_bms(&fx, Some(IngestConfig::default()));
    let filter = capture_filter(&fx, &bms);

    // The raw firehose, plus synthetic sightings of the opted-out MAC to
    // guarantee the filter has work on every seed.
    let mut stream = fx.trace.clone();
    for i in 0..16 {
        stream.push(Observation {
            device: DeviceId(500 + i),
            timestamp: Timestamp::at(0, 9, 0) + i64::from(i),
            space: fx.building.offices[usize::try_from(i).unwrap() % fx.building.offices.len()],
            payload: ObservationPayload::WifiAssociation {
                mac: fx.occupants[0].mac,
                ap: DeviceId(500 + i),
            },
            subject: Some(fx.occupants[0].user),
        });
    }
    let mut attempts = 0u64;
    for (i, chunk) in stream.chunks(48).enumerate() {
        let mut pending = chunk.to_vec();
        // Capped retry: re-offer what backpressure handed back, at most
        // twice, then let the remainder drop (it stays accounted).
        for now in 0..3i64 {
            if pending.is_empty() {
                break;
            }
            attempts += pending.len() as u64;
            pending = bms.ingest_batched(&pending, i as i64 * 10 + now).rejected;
        }
    }

    let suppressed = filter.suppressed_macs();
    for row in bms.store().iter() {
        if let Some(mac) = row.observation.payload.mac() {
            assert!(
                !suppressed.contains(&mac),
                "stored row carries a capture-suppressed MAC: {row:?}"
            );
        }
    }
    let drops = bms.capture_drops();
    let filtered = drops
        .iter()
        .filter(|d| d.reason == CaptureDropReason::CaptureFilter)
        .count();
    assert!(
        filtered >= 16,
        "all synthetic suppressed sightings must be audited drops: {filtered}"
    );
    // Nothing vanished silently: every offer attempt either entered a
    // mailbox or was handed back as an audited backpressure rejection.
    let stats = bms.ingest_stats().unwrap();
    assert_eq!(stats.admitted + stats.rejected, attempts);
    assert_eq!(
        stats.rejected as usize,
        drops
            .iter()
            .filter(|d| d.reason == CaptureDropReason::Backpressure)
            .count(),
        "every backpressure rejection is audited"
    );
}

/// A full mailbox hands observations back in order; re-offering them
/// (the producer's capped retry) eventually stores every authorized row
/// without the mailbox ever exceeding its bound.
#[test]
fn backpressure_hands_back_overflow_for_capped_retry() {
    let fx = fixture();
    let mut bms = build_bms(
        &fx,
        Some(IngestConfig {
            mailbox_capacity: 8,
            batch_max: 4,
            ..IngestConfig::default()
        }),
    );
    // One zone, 40 essential-category observations: motion survives every
    // rung, so backpressure is the only thing standing between capture
    // and store.
    let stream: Vec<Observation> = (0..40)
        .map(|i| Observation {
            device: DeviceId(900),
            timestamp: Timestamp::at(0, 9, 0) + i,
            space: fx.building.meeting_rooms[0],
            payload: ObservationPayload::Motion { detected: true },
            subject: None,
        })
        .collect();

    let mut report = bms.ingest_batched(&stream, 0);
    assert_eq!(report.rejected.len(), 32, "capacity 8 admits 8");
    assert_eq!(
        report.rejected,
        stream[8..].to_vec(),
        "backpressure hands back exactly the overflow tail, in order"
    );
    let mut rounds = 1usize;
    while !report.rejected.is_empty() {
        rounds += 1;
        assert!(rounds <= 8, "retry must terminate");
        let pending = report.rejected;
        report = bms.ingest_batched(&pending, rounds as i64);
    }
    assert_eq!(rounds, 5, "40 observations through a bound of 8");

    let stats = bms.ingest_stats().unwrap();
    assert_eq!(stats.admitted, 40);
    assert_eq!(stats.stored, 40, "every retried observation stores");
    assert_eq!(stats.rejected, 32 + 24 + 16 + 8);
    let pipeline = bms.ingest_pipeline().unwrap();
    assert_eq!(pipeline.max_depth(), 0, "drained after every call");
    for (_, mb) in pipeline.mailbox_stats() {
        assert!(mb.high_watermark <= 8, "mailbox bound violated");
    }
    // Stored rows preserve capture order.
    let times: Vec<i64> = bms
        .store()
        .iter()
        .map(|r| r.observation.timestamp.seconds())
        .collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted);
}

/// One `write_batch_to` call commits the same replicated state as N
/// `write_to` calls — while shipping fewer frame rounds (the replication
/// half of group-commit amortization).
#[test]
fn write_batch_to_matches_n_write_to_calls_with_fewer_shipping_rounds() {
    let fx = fixture();
    let boot = |fx: &Fixture| {
        Cluster::new(
            ReplicationConfig::default(),
            FaultPlan::disarmed(),
            VirtualClock::new(),
            fx.ontology.clone(),
            fx.building.model.clone(),
            TippersConfig::default(),
            fx.occupants.clone(),
        )
        .expect("cluster boot")
    };
    let mut one_by_one = boot(&fx);
    let mut grouped = boot(&fx);

    // N mutations: the policy corpus, the preference corpus, and an
    // ingest batch — every durable record kind the capture path ships.
    let ingest_batch: Vec<Observation> = fx.trace.iter().take(20).cloned().collect();
    let mutations = fx.policies.len() + fx.preferences.len() + 1;
    let apply = |bms: &mut Tippers, i: usize, fx: &Fixture, batch: &[Observation]| {
        if i < fx.policies.len() {
            bms.add_policy(fx.policies[i].clone());
        } else if i < fx.policies.len() + fx.preferences.len() {
            bms.submit_preference(
                fx.preferences[i - fx.policies.len()].clone(),
                Timestamp::at(0, 7, 0),
            );
        } else {
            bms.ingest(batch);
        }
    };

    let base_rounds = one_by_one.shipping_rounds();
    assert_eq!(base_rounds, grouped.shipping_rounds());
    for i in 0..mutations {
        let outcome = one_by_one
            .write_to(0, |bms| apply(bms, i, &fx, &ingest_batch))
            .expect("write");
        assert!(matches!(outcome, WriteOutcome::Committed { .. }));
    }
    let outcome = grouped
        .write_batch_to(0, mutations, |bms, i| apply(bms, i, &fx, &ingest_batch))
        .expect("batched write");
    assert!(matches!(outcome, WriteOutcome::Committed { .. }));

    for node in 0..3 {
        assert_eq!(
            one_by_one.node_bms(node).policies(),
            grouped.node_bms(node).policies(),
            "node {node} policy divergence"
        );
        assert_eq!(
            one_by_one.node_bms(node).preferences(),
            grouped.node_bms(node).preferences(),
            "node {node} preference divergence"
        );
        assert_eq!(
            rows(one_by_one.node_bms(node)),
            rows(grouped.node_bms(node)),
            "node {node} store divergence"
        );
    }
    let split = one_by_one.shipping_rounds() - base_rounds;
    let batched_rounds = grouped.shipping_rounds() - base_rounds;
    assert_eq!(split, mutations as u64, "one round per write_to");
    assert_eq!(batched_rounds, 1, "one round for the whole batch");
}
