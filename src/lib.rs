//! Privacy-aware smart buildings: capturing, communicating, and enforcing
//! privacy policies and preferences.
//!
//! This is the umbrella crate of the workspace — a Rust implementation of
//! the framework from Pappachan et al., *"Towards Privacy-Aware Smart
//! Buildings"* (ICDCS 2017): IoT Resource Registries broadcast
//! machine-readable data-practice policies, IoT Assistants discover them
//! and configure privacy settings for their users, and a TIPPERS-style
//! building management system enforces policies and preferences when
//! collecting and sharing occupant data.
//!
//! Each subsystem lives in its own crate, re-exported here as a module:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`spatial`] | `tippers-spatial` | hierarchical spatial model, granularity lattice |
//! | [`ontology`] | `tippers-ontology` | sensor/data/purpose taxonomies, inference rules |
//! | [`policy`] | `tippers-policy` | the policy & preference language (Figures 2–4), conflicts |
//! | [`sensors`] | `tippers-sensors` | building simulator, occupants, the §II.A attack |
//! | [`irr`] | `tippers-irr` | registries, discovery network, MUD auto-registration |
//! | [`bms`] | `tippers` | the BMS: storage, enforcement, managers, audit |
//! | [`iota`] | `tippers-iota` | assistants: notification, learning, configuration |
//! | [`services`] | `tippers-services` | Concierge, Smart Meeting, delivery, emergency |
//!
//! # Quickstart
//!
//! Run the end-to-end Figure 1 walkthrough:
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! or in code:
//!
//! ```
//! use privacy_aware_buildings::prelude::*;
//!
//! let ontology = Ontology::standard();
//! let building = dbh();
//! let mut bms = Tippers::new(ontology, building.model.clone(), TippersConfig::default());
//! let id = bms.add_policy(catalog::policy2_emergency_location(
//!     PolicyId(0),
//!     building.building,
//!     bms.ontology(),
//! ));
//! assert!(bms.policy(id).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tippers as bms;
pub use tippers_iota as iota;
pub use tippers_irr as irr;
pub use tippers_ontology as ontology;
pub use tippers_policy as policy;
pub use tippers_sensors as sensors;
pub use tippers_services as services;
pub use tippers_spatial as spatial;

/// The most commonly used items, for a one-line import.
pub mod prelude {
    pub use tippers::{
        DataRequest, EnforcerKind, ShardSpec, ShardedTippers, SubjectSelector, Tippers,
        TippersConfig,
    };
    pub use tippers_iota::{Iota, SensitivityProfile};
    pub use tippers_irr::{DiscoveryBus, NetworkConfig};
    pub use tippers_ontology::Ontology;
    pub use tippers_policy::{
        catalog, Effect, PolicyId, PreferenceId, ResolutionStrategy, ServiceId, Timestamp,
        UserGroup, UserId,
    };
    pub use tippers_sensors::{BuildingSimulator, Population, SimulatorConfig};
    pub use tippers_services::{
        register_service, BuildingService, Concierge, EmergencyResponse, FoodDelivery, SmartMeeting,
    };
    pub use tippers_spatial::fixtures::dbh;
    pub use tippers_spatial::{Granularity, RoomUse, SpatialModel};
}
