//! `pab` — the privacy-aware-buildings command line.
//!
//! ```bash
//! pab simulate  [--days N] [--seed S] [--population N]   # run the building
//! pab attack    [--days N] [--opt-out F]                 # §II.A inference attack
//! pab conflicts                                          # paper examples through the reasoner
//! pab figures                                            # print the paper's JSON listings
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use privacy_aware_buildings::prelude::*;
use tippers_policy::{figures, PolicyId, PreferenceId, Timestamp};
use tippers_sensors::attack::{wifi_log, Attacker};
use tippers_sensors::{DeploymentConfig, MacAddress, ObservationPayload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let command = match it.next() {
        Some(c) => c.as_str(),
        None => {
            eprintln!("usage: pab <simulate|attack|conflicts|figures> [options]");
            return ExitCode::FAILURE;
        }
    };
    let flags = parse_flags(&args[1..]);
    match command {
        "simulate" => simulate(&flags),
        "attack" => attack(&flags),
        "conflicts" => conflicts(),
        "figures" => print_figures(),
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("usage: pab <simulate|attack|conflicts|figures> [options]");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_flags(args: &[String]) -> HashMap<String, f64> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if let Ok(value) = args[i + 1].parse::<f64>() {
                flags.insert(name.to_owned(), value);
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    flags
}

fn flag(flags: &HashMap<String, f64>, name: &str, default: f64) -> f64 {
    flags.get(name).copied().unwrap_or(default)
}

fn build_sim(flags: &HashMap<String, f64>, ontology: &Ontology) -> BuildingSimulator {
    let total = flag(flags, "population", 100.0) as usize;
    BuildingSimulator::new(
        SimulatorConfig {
            seed: flag(flags, "seed", 7.0) as u64,
            population: Population {
                staff: total / 8,
                faculty: total / 6,
                grads: total / 2,
                undergrads: total / 5,
                visitors: total / 20,
            },
            tick_secs: flag(flags, "tick", 900.0) as i64,
            deployment: DeploymentConfig::default(),
            identify_probability: 0.3,
        },
        ontology,
    )
}

fn simulate(flags: &HashMap<String, f64>) {
    let ontology = Ontology::standard();
    let mut sim = build_sim(flags, &ontology);
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy3_meeting_room_access(
        PolicyId(0),
        building.building,
        building.meeting_rooms.clone(),
        &ontology,
    ));
    register_service(&mut bms, &Concierge::new());

    let days = flag(flags, "days", 1.0) as i64;
    println!(
        "simulating {} occupant(s) in DBH for {days} day(s), tick {}s...",
        sim.occupants().len(),
        flag(flags, "tick", 900.0) as i64
    );
    // Run to the last day's noon, snapshot the HVAC loop, then finish the
    // day — Policy 1's control state is meaningful only on live data.
    let last_noon = Timestamp::at(days - 1, 12, 0);
    let mut trace = sim.run_until(last_noon);
    let (stored_a, dropped_a) = bms.ingest(&trace.observations);
    let hvac_active = bms
        .thermostat_commands(&building.floors, last_noon)
        .iter()
        .filter(|c| c.active)
        .count();
    let rest = sim.run_until(Timestamp(days * 86_400));
    let (stored_b, dropped_b) = bms.ingest(&rest.observations);
    trace.extend(rest);
    let (stored, dropped) = (stored_a + stored_b, dropped_a + dropped_b);
    let mut by_kind: HashMap<&'static str, usize> = HashMap::new();
    for o in &trace.observations {
        let kind = match o.payload {
            ObservationPayload::WifiAssociation { .. } => "wifi",
            ObservationPayload::BeaconSighting { .. } => "beacon",
            ObservationPayload::CameraFrame { .. } => "camera",
            ObservationPayload::PowerReading { .. } => "power",
            ObservationPayload::Temperature { .. } => "temperature",
            ObservationPayload::Motion { .. } => "motion",
            ObservationPayload::BadgeSwipe { .. } => "badge",
            _ => "other",
        };
        *by_kind.entry(kind).or_default() += 1;
    }
    println!("observations: {} total", trace.observations.len());
    let mut kinds: Vec<_> = by_kind.into_iter().collect();
    kinds.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (kind, n) in kinds {
        println!("  {kind:<12} {n}");
    }
    println!("ingest: {stored} stored / {dropped} dropped (unauthorized practices)");
    println!(
        "ground-truth presence samples: {}",
        trace.ground_truth.len()
    );
    println!(
        "HVAC active on {hvac_active}/{} floors at the last noon",
        building.floors.len()
    );
}

fn attack(flags: &HashMap<String, f64>) {
    let ontology = Ontology::standard();
    let mut sim = build_sim(flags, &ontology);
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));

    let opt_out = flag(flags, "opt-out", 0.0).clamp(0.0, 1.0);
    let occupants = sim.occupants().to_vec();
    let n_opt_out = (occupants.len() as f64 * opt_out) as usize;
    for o in occupants.iter().take(n_opt_out) {
        bms.submit_preference(
            catalog::preference2_no_location(PreferenceId(0), o.user, &ontology),
            Timestamp::at(0, 0, 0),
        );
    }
    bms.sync_capture_settings(&mut sim);

    let days = flag(flags, "days", 5.0) as i64;
    println!(
        "attacking {} day(s) of WiFi logs, {:.0}% of {} occupants opted out...",
        days,
        opt_out * 100.0,
        occupants.len()
    );
    let trace = sim.run_days(days);
    let log = wifi_log(&trace.observations);
    println!("log rows: {}", log.len());
    let c = ontology.concepts();
    let ap_locations: HashMap<_, _> = sim
        .devices()
        .of_class(c.wifi_ap)
        .into_iter()
        .map(|id| (id, sim.devices().get(id).unwrap().space))
        .collect();
    let attacker = Attacker::new(log, ap_locations, &building.model);
    let mac_of: HashMap<UserId, MacAddress> = occupants.iter().map(|o| (o.user, o.mac)).collect();

    let mut floor_hits = 0usize;
    let mut samples = 0usize;
    for g in trace.ground_truth.iter().step_by(37) {
        samples += 1;
        if let Some(guess) = attacker.locate(mac_of[&g.user], g.time, 1800) {
            if building.model.floor_of(guess) == building.model.floor_of(g.space) {
                floor_hits += 1;
            }
        }
    }
    let mut role_hits = 0usize;
    let mut role_total = 0usize;
    for o in &occupants {
        if let Some(guess) = attacker.infer_role(o.mac) {
            role_total += 1;
            if guess.group == o.group {
                role_hits += 1;
            }
        }
    }
    let links = attacker.link_identities(sim.teaching_schedule(), 2);
    let correct = links
        .iter()
        .filter(|(mac, user)| occupants.iter().any(|o| o.mac == **mac && o.user == **user))
        .count();
    println!(
        "location: {:.1}% of samples located to the correct floor",
        100.0 * floor_hits as f64 / samples.max(1) as f64
    );
    println!(
        "role:     {role_total} occupants classified, {:.1}% correct",
        100.0 * role_hits as f64 / role_total.max(1) as f64
    );
    println!("identity: {} linked, {correct} correct", links.len());
}

fn conflicts() {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));
    bms.add_policy(catalog::policy3_meeting_room_access(
        PolicyId(0),
        building.building,
        building.meeting_rooms.clone(),
        &ontology,
    ));
    bms.add_policy(catalog::policy4_event_proximity(
        PolicyId(0),
        vec![building.lobby],
        &ontology,
    ));
    let mary = UserId(1);
    for pref in [
        catalog::preference1_afterhours_occupancy(
            PreferenceId(0),
            mary,
            building.offices[0],
            &ontology,
        ),
        catalog::preference2_no_location(PreferenceId(0), mary, &ontology),
        catalog::preference3_concierge_location(PreferenceId(0), mary, &ontology),
        catalog::preference4_smart_meeting(PreferenceId(0), mary, &ontology),
    ] {
        bms.submit_preference(pref, Timestamp::at(0, 9, 0));
    }
    let found = bms.detect_conflicts();
    println!(
        "{} policies x {} preferences -> {} conflict(s)",
        bms.policies().len(),
        bms.preferences().len(),
        found.len()
    );
    for c in &found {
        println!("  {} vs {} ({:?})", c.policy, c.preference, c.kind);
        println!("    {}", c.notice);
    }
}

fn print_figures() {
    println!("--- Figure 2: building policy ---");
    println!("{}", figures::FIG2_JSON.trim());
    println!("\n--- Figure 3: service policy ---");
    println!("{}", figures::FIG3_JSON.trim());
    println!("\n--- Figure 4: privacy settings ---");
    println!("{}", figures::FIG4_JSON.trim());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_known_flags() {
        let flags = parse_flags(&args(&["--days", "3", "--opt-out", "0.5"]));
        assert_eq!(flag(&flags, "days", 1.0), 3.0);
        assert!((flag(&flags, "opt-out", 0.0) - 0.5).abs() < 1e-9);
        assert_eq!(flag(&flags, "missing", 7.0), 7.0);
    }

    #[test]
    fn ignores_malformed_input() {
        // Non-numeric values and stray words are skipped, not fatal.
        let flags = parse_flags(&args(&["--days", "soon", "verbose", "--seed", "9"]));
        assert_eq!(flag(&flags, "days", 1.0), 1.0);
        assert_eq!(flag(&flags, "seed", 0.0), 9.0);
    }

    #[test]
    fn empty_args_yield_defaults() {
        let flags = parse_flags(&[]);
        assert!(flags.is_empty());
        assert_eq!(flag(&flags, "population", 100.0), 100.0);
    }
}
