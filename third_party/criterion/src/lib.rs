//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface this workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a straightforward warmup + timed-batch loop over
//! `std::time::Instant` — good enough for the relative comparisons the
//! experiment write-ups make, with none of the statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// Finishes the group (a no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs long
        // enough for Instant to resolve it.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        if self.samples.is_empty() {
            println!("{group}/{label}: no samples", label = id.label);
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{label}: median {median:?} (min {min:?}, max {max:?}, n={n})",
            label = id.label,
            n = sorted.len()
        );
    }
}

/// Reuses `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
