//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the shim `serde::Serialize` /
//! `serde::Deserialize` traits (which go through a concrete `serde::Value`
//! tree) for non-generic structs and enums. Supported field attributes:
//! `#[serde(rename = "...")]`, `#[serde(default)]`, `#[serde(skip)]`,
//! `#[serde(skip_serializing_if = "path")]`, `#[serde(flatten)]`.
//!
//! The parser is deliberately small: it handles the shapes this workspace
//! declares (named/tuple structs, enums with unit/tuple/struct variants)
//! and rejects anything else with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let code = match parse(input) {
        Ok(item) => {
            if ser {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated code parses")
}

// ---- model -----------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    attrs: FieldAttrs,
    is_option: bool,
}

#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
    skip: bool,
    skip_serializing_if: Option<String>,
    flatten: bool,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---- parsing ---------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Skips `#[...]` attribute groups, collecting serde attributes.
    fn attrs(&mut self) -> Result<FieldAttrs, String> {
        let mut out = FieldAttrs::default();
        while self.is_punct('#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                return Err("expected attribute body after #".into());
            };
            let mut inner = Cursor::new(g.stream());
            if inner.is_ident("serde") {
                inner.next();
                let Some(TokenTree::Group(args)) = inner.next() else {
                    return Err("expected #[serde(...)]".into());
                };
                parse_serde_args(&mut Cursor::new(args.stream()), &mut out)?;
            }
        }
        Ok(out)
    }

    /// Skips `pub` / `pub(crate)` visibility.
    fn vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

fn parse_serde_args(c: &mut Cursor, out: &mut FieldAttrs) -> Result<(), String> {
    while !c.at_end() {
        let key = c.ident()?;
        match key.as_str() {
            "default" => out.default = true,
            "skip" | "skip_serializing" | "skip_deserializing" => out.skip = true,
            "flatten" => out.flatten = true,
            "rename" | "skip_serializing_if" => {
                if !c.is_punct('=') {
                    return Err(format!("expected = after serde attribute {key}"));
                }
                c.next();
                let lit = match c.next() {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    other => return Err(format!("expected string literal, found {other:?}")),
                };
                let value = lit.trim_matches('"').to_string();
                if key == "rename" {
                    out.rename = Some(value);
                } else {
                    out.skip_serializing_if = Some(value);
                }
            }
            other => return Err(format!("unsupported serde attribute: {other}")),
        }
        if c.is_punct(',') {
            c.next();
        }
    }
    Ok(())
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.attrs()?;
    c.vis();
    let item_kind = c.ident()?;
    let name = c.ident()?;
    if c.is_punct('<') {
        return Err(format!(
            "serde shim derive does not support generic type {name}"
        ));
    }
    match item_kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                kind: Kind::Tuple(count_tuple_fields(g.stream())?),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: Kind::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for {other}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.attrs()?;
        c.vis();
        let name = c.ident()?;
        if !c.is_punct(':') {
            return Err(format!("expected : after field {name}"));
        }
        c.next();
        // Consume the type, tracking angle-bracket depth so commas inside
        // generic arguments do not end the field.
        let mut depth = 0i32;
        let mut first_type_tok: Option<String> = None;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            if first_type_tok.is_none() {
                first_type_tok = Some(t.to_string());
            }
            c.next();
        }
        if c.is_punct(',') {
            c.next();
        }
        let is_option = first_type_tok.as_deref() == Some("Option");
        fields.push(Field {
            name,
            attrs,
            is_option,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.attrs()?;
        let name = c.ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream())?;
                c.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        if c.is_punct('=') {
            return Err(format!(
                "explicit discriminant on variant {name} unsupported"
            ));
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- codegen: Serialize ----------------------------------------------------

fn gen_named_serialize(fields: &[Field], accessor: &dyn Fn(&str) -> String) -> String {
    let mut body = String::from("let mut __m = ::serde::Map::new();\n");
    for f in fields.iter().filter(|f| !f.attrs.skip && !f.attrs.flatten) {
        let access = accessor(&f.name);
        let insert = format!(
            "__m.insert(::std::string::String::from({key:?}), ::serde::Serialize::serialize_value(&{access}));",
            key = f.key()
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            body.push_str(&format!("if !{pred}(&{access}) {{ {insert} }}\n"));
        } else {
            body.push_str(&insert);
            body.push('\n');
        }
    }
    for f in fields.iter().filter(|f| f.attrs.flatten) {
        let access = accessor(&f.name);
        body.push_str(&format!(
            "if let ::serde::Value::Object(__o) = ::serde::Serialize::serialize_value(&{access}) {{ __m.merge(__o); }}\n"
        ));
    }
    body.push_str("::serde::Value::Object(__m)");
    body
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => gen_named_serialize(fields, &|f| format!("self.{f}")),
        Kind::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{ let mut __m = ::serde::Map::new(); __m.insert(::std::string::String::from({vname:?}), ::serde::Serialize::serialize_value(__f0)); ::serde::Value::Object(__m) }}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{ let mut __m = ::serde::Map::new(); __m.insert(::std::string::String::from({vname:?}), ::serde::Value::Array(vec![{items}])); ::serde::Value::Object(__m) }}\n",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = gen_named_serialize(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ let mut __om = ::serde::Map::new(); __om.insert(::std::string::String::from({vname:?}), {{ {inner} }}); ::serde::Value::Object(__om) }}\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn serialize_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

// ---- codegen: Deserialize --------------------------------------------------

/// Generates `let <field> = ...;` bindings out of a map named `__m`, then a
/// constructor expression `ctor { fields }`.
fn gen_named_deserialize(type_label: &str, fields: &[Field], ctor: &str) -> String {
    let mut body = String::new();
    for f in fields.iter().filter(|f| !f.attrs.flatten) {
        let fname = &f.name;
        if f.attrs.skip {
            body.push_str(&format!(
                "let {fname} = ::core::default::Default::default();\n"
            ));
            continue;
        }
        let missing = if f.attrs.default || f.is_option {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::de::Error::custom(\"{type_label}: missing field `{key}`\"))",
                key = f.key()
            )
        };
        body.push_str(&format!(
            "let {fname} = match __m.remove({key:?}) {{ Some(__x) => ::serde::Deserialize::deserialize_value(__x)?, None => {missing} }};\n",
            key = f.key()
        ));
    }
    for f in fields.iter().filter(|f| f.attrs.flatten) {
        let fname = &f.name;
        body.push_str(&format!(
            "let {fname} = ::serde::Deserialize::deserialize_value(::serde::Value::Object(::core::mem::take(&mut __m)))?;\n"
        ));
    }
    let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
    body.push_str(&format!("Ok({ctor} {{ {} }})", names.join(", ")));
    body
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let inner = gen_named_deserialize(name, fields, name);
            format!(
                "let mut __m = match __v {{ ::serde::Value::Object(__m) => __m, __other => return Err(::serde::de::Error::custom(format!(\"{name}: expected object, found {{}}\", __other.kind()))) }};\nlet _ = &mut __m;\n{inner}"
            )
        }
        Kind::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(__v)?))")
        }
        Kind::Tuple(n) => {
            let mut body = format!(
                "let __items = match __v {{ ::serde::Value::Array(__a) => __a, __other => return Err(::serde::de::Error::custom(format!(\"{name}: expected array, found {{}}\", __other.kind()))) }};\nif __items.len() != {n} {{ return Err(::serde::de::Error::custom(\"{name}: wrong tuple length\")); }}\nlet mut __it = __items.into_iter();\n"
            );
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            for b in &binders {
                body.push_str(&format!(
                    "let {b} = ::serde::Deserialize::deserialize_value(__it.next().expect(\"length checked\"))?;\n"
                ));
            }
            body.push_str(&format!("Ok({name}({}))", binders.join(", ")));
            body
        }
        Kind::Unit => format!("let _ = __v; Ok({name})"),
        Kind::Enum(variants) => {
            let mut string_arms = String::new();
            let mut object_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        string_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                        object_arms.push_str(&format!(
                            "{vname:?} => {{ let _ = __payload; Ok({name}::{vname}) }}\n"
                        ));
                    }
                    VariantKind::Tuple(1) => object_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::deserialize_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{vname:?} => {{ let __items = match __payload {{ ::serde::Value::Array(__a) => __a, _ => return Err(::serde::de::Error::custom(\"{name}::{vname}: expected array\")) }};\nif __items.len() != {n} {{ return Err(::serde::de::Error::custom(\"{name}::{vname}: wrong tuple length\")); }}\nlet mut __it = __items.into_iter();\n"
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "let {b} = ::serde::Deserialize::deserialize_value(__it.next().expect(\"length checked\"))?;\n"
                            ));
                        }
                        arm.push_str(&format!(
                            "Ok({name}::{vname}({})) }}\n",
                            binders.join(", ")
                        ));
                        object_arms.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let label = format!("{name}::{vname}");
                        let inner =
                            gen_named_deserialize(&label, fields, &format!("{name}::{vname}"));
                        object_arms.push_str(&format!(
                            "{vname:?} => {{ let mut __m = match __payload {{ ::serde::Value::Object(__m) => __m, _ => return Err(::serde::de::Error::custom(\"{label}: expected object\")) }};\nlet _ = &mut __m;\n{inner} }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n::serde::Value::String(__s) => match __s.as_str() {{\n{string_arms}__other => Err(::serde::de::Error::custom(format!(\"{name}: unknown variant {{__other}}\"))),\n}},\n::serde::Value::Object(mut __m) => {{\nif __m.len() != 1 {{ return Err(::serde::de::Error::custom(\"{name}: expected single-variant object\")); }}\nlet (__tag, __payload) = __m.pop().expect(\"length checked\");\nmatch __tag.as_str() {{\n{object_arms}__other => Err(::serde::de::Error::custom(format!(\"{name}: unknown variant {{__other}}\"))),\n}}\n}}\n__other => Err(::serde::de::Error::custom(format!(\"{name}: expected string or object, found {{}}\", __other.kind()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn deserialize_value(__v: ::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n        {body}\n    }}\n}}\n"
    )
}
