//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a transformation to every generated value.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The full-range strategy for a type (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Generates arbitrary values of `T` across its whole range.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

/// String strategies are written as regex literals (`"[A-Za-z]{0,30}"`).
/// This supports the subset proptest users reach for in practice: literal
/// characters, `[...]` classes with ranges, and `?`/`*`/`+`/`{m}`/`{m,n}`
/// quantifiers. Unsupported syntax panics at generation time.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for (choices, min, max) in &atoms {
            let reps = min + (rng.next_u64() % (max - min + 1) as u64) as usize;
            for _ in 0..reps {
                let idx = (rng.next_u64() % choices.len() as u64) as usize;
                out.push(choices[idx]);
            }
        }
        out
    }
}

type RegexAtom = (Vec<char>, usize, usize);

fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c if "(){}*+?|^$.".contains(c) => {
                panic!("unsupported regex syntax {c:?} in strategy {pattern:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("regex quantifier"),
                        hi.trim().parse().expect("regex quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("regex quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(
            !choices.is_empty() && min <= max,
            "degenerate regex strategy {pattern:?}"
        );
        atoms.push((choices, min, max));
    }
    atoms
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
