//! Deterministic case generation for the `proptest!` macro.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Controls how many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// The RNG handed to strategies; seeded deterministically per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a), so every run of a
    /// given test explores the same cases.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}
