//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by this workspace's property tests: the
//! [`proptest!`] macro, `any::<T>()`, numeric range strategies, tuples,
//! `Just`, `prop_oneof!`, `prop_map` / `prop_flat_map`, `collection::vec`,
//! and `option::of`. Cases are generated deterministically from a seed
//! derived from the test's name; there is no shrinking — a failing case
//! panics with the assertion message directly.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Unions two or more heterogeneous strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn` runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strategy, &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}
