//! The JSON-like value tree all (de)serialization goes through.

use std::fmt;
use std::ops::Index;

use crate::de;

/// A JSON number: signed, unsigned, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    I(i64),
    /// An unsigned integer.
    U(u64),
    /// A floating-point number.
    F(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (*self, *other) {
            (Number::I(a), Number::I(b)) => a == b,
            (Number::U(a), Number::U(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            (Number::I(a), Number::U(b)) | (Number::U(b), Number::I(a)) => a >= 0 && a as u64 == b,
            // Mirrors serde_json: floats never equal integers.
            _ => false,
        }
    }
}

/// An order-preserving string-keyed map with order-insensitive equality
/// (mirrors `serde_json::Map` semantics at the value level).
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks an entry up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Removes and returns the last entry.
    pub fn pop(&mut self) -> Option<(String, Value)> {
        self.entries.pop()
    }

    /// Merges another map's entries into this one (later keys win).
    pub fn merge(&mut self, other: Map) {
        for (k, v) in other.entries {
            self.insert(k, v);
        }
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        self.len() == other.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|o| o == v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_int(&self) -> Result<i64, de::Error> {
        match self {
            Value::Number(Number::I(i)) => Ok(*i),
            Value::Number(Number::U(u)) => i64::try_from(*u)
                .map_err(|_| de::Error::custom(format!("integer {u} out of i64 range"))),
            other => Err(de::Error::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    pub(crate) fn as_uint(&self) -> Result<u64, de::Error> {
        match self {
            Value::Number(Number::U(u)) => Ok(*u),
            Value::Number(Number::I(i)) => u64::try_from(*i).map_err(|_| {
                de::Error::custom(format!("negative integer {i} where unsigned expected"))
            }),
            other => Err(de::Error::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    pub(crate) fn as_float(&self) -> Result<f64, de::Error> {
        match self {
            Value::Number(Number::F(f)) => Ok(*f),
            Value::Number(Number::I(i)) => Ok(*i as f64),
            Value::Number(Number::U(u)) => Ok(*u as f64),
            other => Err(de::Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::U(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(Number::I(n))
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::F(n))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        crate::json::write_json(self, &mut out);
        f.write_str(&out)
    }
}
