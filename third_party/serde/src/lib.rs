//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serialization framework under the same crate name. It keeps the
//! parts of serde's surface this repository actually uses: the
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`
//! with the `rename`/`default`/`skip`/`skip_serializing_if`/`flatten`
//! attributes, and a JSON value model (see the sibling `serde_json` shim).
//!
//! Unlike real serde, serialization goes through a concrete [`Value`] tree
//! rather than a generic `Serializer`; that is all the JSON-only call sites
//! here need, and it keeps the vendored code small and auditable.

mod json;
mod value;

pub use json::{parse_json, write_json};
pub use value::{Map, Number, Value};

/// Deserialization error support (`serde::de::Error::custom`).
pub mod de {
    use std::fmt;

    /// A deserialization (or JSON parse) error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error from any displayable message.
        pub fn custom<T: fmt::Display>(msg: T) -> Error {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into a JSON-like [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON-like [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`de::Error`] when the value's shape does not match.
    fn deserialize_value(v: Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: Value) -> Result<Self, de::Error> {
                let n = v.as_int()?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: Value) -> Result<Self, de::Error> {
                let n = v.as_uint()?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: Value) -> Result<Self, de::Error> {
                Ok(v.as_float()? as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.into_iter().map(T::deserialize_value).collect(),
            other => Err(de::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

/// Turns a serialized map key into the string JSON objects require.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize_value() {
        Value::String(s) => s,
        other => {
            let mut out = String::new();
            write_json(&other, &mut out);
            out
        }
    }
}

/// Recovers a typed map key from a JSON object key.
fn key_from_string<K: Deserialize>(key: String) -> Result<K, de::Error> {
    match K::deserialize_value(Value::String(key.clone())) {
        Ok(k) => Ok(k),
        Err(_) => {
            let v = parse_json(&key)
                .map_err(|e| de::Error::custom(format!("bad object key {key:?}: {e}")))?;
            K::deserialize_value(v)
        }
    }
}

macro_rules! impl_map {
    ($name:ident, $($bound:tt)*) => {
        impl<K: Serialize + $($bound)*, V: Serialize> Serialize for std::collections::$name<K, V> {
            fn serialize_value(&self) -> Value {
                let mut m = Map::new();
                for (k, v) in self {
                    m.insert(key_to_string(k), v.serialize_value());
                }
                Value::Object(m)
            }
        }
        impl<K: Deserialize + $($bound)*, V: Deserialize> Deserialize
            for std::collections::$name<K, V>
        {
            fn deserialize_value(v: Value) -> Result<Self, de::Error> {
                match v {
                    Value::Object(m) => m
                        .into_iter()
                        .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                        .collect(),
                    other => Err(de::Error::custom(format!(
                        "expected object, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    };
}

impl_map!(HashMap, std::cmp::Eq + std::hash::Hash);
impl_map!(BTreeMap, Ord);

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        Ok(v)
    }
}
