//! JSON text ⇄ [`Value`] conversion (shared by the `serde_json` shim).

use crate::de;
use crate::value::{Map, Number, Value};

/// Renders a value tree as compact JSON.
pub fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::F(f)) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // `5f64` formats as "5"; keep it a float on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a value tree.
///
/// # Errors
///
/// Returns a [`de::Error`] describing the first syntax error.
pub fn parse_json(text: &str) -> Result<Value, de::Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> de::Error {
        de::Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), de::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, de::Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character {:?}", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, de::Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, de::Error> {
        self.eat(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, de::Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, de::Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, de::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F(f)))
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(|i| Value::Number(Number::I(i)))
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(|u| Value::Number(Number::U(u)))
                .map_err(|_| self.err("integer out of range"))
        }
    }
}
