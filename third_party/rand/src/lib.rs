//! Offline stand-in for the `rand` crate.
//!
//! Implements the small slice of the rand 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and [`Rng::gen`] for
//! `f64` / `bool` / integer outputs. The generator is SplitMix64 — fast,
//! deterministic, and more than adequate for simulation seeds; it makes no
//! cryptographic claims.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling support for a given output type.
pub trait Sample: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of type `T`.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0xbb67ae8584caa73b,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
