//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Only the pieces this workspace uses: [`Mutex`] and [`RwLock`] whose lock
//! methods return guards directly (poisoning is converted into a panic,
//! matching parking_lot's no-poisoning semantics closely enough for
//! deterministic simulations that never unwind while holding a lock).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose lock methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value in a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
