//! Offline stand-in for `serde_json`, backed by the vendored `serde` shim.
//!
//! Provides the JSON entry points this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], plus the
//! [`Value`] tree re-exported from the shim.

pub use serde::{Map, Number, Value};

/// A JSON (de)serialization error.
pub type Error = serde::de::Error;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the shim's value model; the `Result` mirrors the real
/// `serde_json` signature so call sites keep compiling.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serializes a value to indented JSON text.
///
/// # Errors
///
/// Never fails for the shim's value model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                serde::write_json(&Value::String(k.clone()), out);
                out.push_str(": ");
                write_pretty(val, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => serde::write_json(other, out),
    }
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on syntax errors or shape mismatches.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize_value(serde::parse_json(text)?)
}

/// Converts a serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(value)
}
