//! From learned permission profiles to live sensitivity profiles.
//!
//! §V.B closes a loop the other modules leave open: the assistant asks the
//! user a handful of permission questions, assigns them to a learned
//! profile (Liu et al.), *predicts* the rest, and then needs those
//! predictions in the form the notification/configuration pipeline
//! understands — a [`SensitivityProfile`]. This module defines the
//! standard question grid and the conversion.

use tippers_ontology::{ConceptId, Ontology};

use crate::profiles::{PermissionMatrix, PrivacyProfiles};
use crate::relevance::SensitivityProfile;

/// The standard question grid: one dimension per (data category, purpose
/// family) pair the IoTA asks about.
#[derive(Debug, Clone)]
pub struct QuestionGrid {
    dims: Vec<(ConceptId, ConceptId)>,
}

impl QuestionGrid {
    /// The standard grid: {location, occupancy, imagery, energy, identity}
    /// × {safety/security, building services, analytics/marketing}.
    pub fn standard(ontology: &Ontology) -> QuestionGrid {
        let c = ontology.concepts();
        let data = [
            c.location,
            c.occupancy,
            c.image,
            c.power_consumption,
            c.person_identity,
        ];
        let purposes = [c.emergency_response, c.providing_service, c.analytics];
        let dims = data
            .iter()
            .flat_map(|&d| purposes.iter().map(move |&p| (d, p)))
            .collect();
        QuestionGrid { dims }
    }

    /// Number of questions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True if the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The (data, purpose) pair behind dimension `dim`.
    pub fn dimension(&self, dim: usize) -> (ConceptId, ConceptId) {
        self.dims[dim]
    }

    /// An all-unknown answer sheet for this grid.
    pub fn blank(&self) -> PermissionMatrix {
        PermissionMatrix::unknown(self.dims.len())
    }

    /// Phrases one question for the user.
    pub fn question_text(&self, dim: usize, ontology: &Ontology) -> String {
        let (d, p) = self.dims[dim];
        format!(
            "May the building use your {} for {}?",
            ontology.data.concept(d).label().to_lowercase(),
            ontology.purposes.concept(p).label().to_lowercase()
        )
    }

    /// Converts a (possibly predicted) answer sheet into a sensitivity
    /// profile: a data category's sensitivity is the fraction of its
    /// purposes the user denies, so an all-deny row maps to 1.0 and an
    /// all-allow row to 0.0. Unknown answers count half.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimensions don't match the grid.
    pub fn to_sensitivity(
        &self,
        answers: &PermissionMatrix,
        ontology: &Ontology,
    ) -> SensitivityProfile {
        assert_eq!(
            answers.dims(),
            self.dims.len(),
            "answer sheet shape mismatch"
        );
        let _ = ontology;
        let mut profile = SensitivityProfile::new();
        let mut categories: Vec<ConceptId> = self.dims.iter().map(|&(d, _)| d).collect();
        categories.sort();
        categories.dedup();
        for category in categories {
            let mut score = 0.0;
            let mut n = 0.0;
            for (i, &(d, _)) in self.dims.iter().enumerate() {
                if d != category {
                    continue;
                }
                n += 1.0;
                score += match answers.get(i) {
                    -1 => 1.0,
                    0 => 0.5,
                    _ => 0.0,
                };
            }
            if n > 0.0 {
                profile.set(category, score / n);
            }
        }
        profile
    }
}

/// The full §V.B loop: a few answered questions + learned profiles →
/// completed answers → a sensitivity profile ready for
/// [`Iota::set_profile`](crate::Iota::set_profile).
pub fn infer_sensitivity(
    grid: &QuestionGrid,
    partial_answers: &PermissionMatrix,
    learned: &PrivacyProfiles,
    ontology: &Ontology,
) -> SensitivityProfile {
    let completed = learned.complete(partial_answers);
    grid.to_sensitivity(&completed, ontology)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_text() {
        let ont = Ontology::standard();
        let grid = QuestionGrid::standard(&ont);
        assert_eq!(grid.len(), 15);
        assert!(!grid.is_empty());
        let q = grid.question_text(0, &ont);
        assert!(q.starts_with("May the building use your "));
        assert!(q.contains("location"));
    }

    #[test]
    fn all_deny_maps_to_full_sensitivity() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let grid = QuestionGrid::standard(&ont);
        let mut answers = grid.blank();
        for d in 0..grid.len() {
            answers.set(d, -1);
        }
        let profile = grid.to_sensitivity(&answers, &ont);
        assert!((profile.sensitivity(&ont, c.location) - 1.0).abs() < 1e-9);
        assert!((profile.sensitivity(&ont, c.image) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_allow_maps_to_zero() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let grid = QuestionGrid::standard(&ont);
        let mut answers = grid.blank();
        for d in 0..grid.len() {
            answers.set(d, 1);
        }
        let profile = grid.to_sensitivity(&answers, &ont);
        assert_eq!(profile.sensitivity(&ont, c.location), 0.0);
    }

    #[test]
    fn mixed_answers_average() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let grid = QuestionGrid::standard(&ont);
        let mut answers = grid.blank();
        // Deny location for exactly one of its three purposes; allow the
        // other two.
        let loc_dims: Vec<usize> = (0..grid.len())
            .filter(|&i| grid.dimension(i).0 == c.location)
            .collect();
        answers.set(loc_dims[0], -1);
        answers.set(loc_dims[1], 1);
        answers.set(loc_dims[2], 1);
        let profile = grid.to_sensitivity(&answers, &ont);
        assert!((profile.sensitivity(&ont, c.location) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn learned_profiles_complete_sparse_answers() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let grid = QuestionGrid::standard(&ont);
        // Train on two archetypes: deniers and allowers.
        let mut users = Vec::new();
        for i in 0..30 {
            let mut m = grid.blank();
            let v = if i % 2 == 0 { -1 } else { 1 };
            for d in 0..grid.len() {
                if (i + d) % 3 != 0 {
                    m.set(d, v);
                }
            }
            users.push(m);
        }
        let learned = crate::profiles::PrivacyProfiles::learn(&users, 2, 20, 3);
        // A new privacy-sensitive user answers just two questions (deny).
        let mut sparse = grid.blank();
        sparse.set(0, -1);
        sparse.set(5, -1);
        let profile = infer_sensitivity(&grid, &sparse, &learned, &ont);
        assert!(
            profile.sensitivity(&ont, c.image) > 0.7,
            "the denier profile should generalize to unasked categories: {}",
            profile.sensitivity(&ont, c.image)
        );
    }
}
