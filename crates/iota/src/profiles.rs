//! Privacy-profile learning — the Liu et al. (SOUPS '16) mechanism the
//! paper says IoTAs should adopt (§V.B): cluster users' permission
//! decisions into a small number of profiles, assign each user to the
//! nearest profile, and predict their unstated preferences from it.
//!
//! Users are represented as permission matrices over (data category ×
//! purpose) dimensions with ternary entries: deny (−1), unknown (0),
//! allow (+1). Unknown entries don't contribute to distance and are what
//! prediction fills in.

use serde::{Deserialize, Serialize};

/// One user's (partial) permission decisions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionMatrix {
    values: Vec<i8>,
}

impl PermissionMatrix {
    /// An all-unknown matrix over `dims` dimensions.
    pub fn unknown(dims: usize) -> PermissionMatrix {
        PermissionMatrix {
            values: vec![0; dims],
        }
    }

    /// Builds from raw values.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `{-1, 0, 1}`.
    pub fn from_values(values: Vec<i8>) -> PermissionMatrix {
        assert!(
            values.iter().all(|v| (-1..=1).contains(v)),
            "entries must be -1, 0 or 1"
        );
        PermissionMatrix { values }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// The entry at `dim`.
    pub fn get(&self, dim: usize) -> i8 {
        self.values[dim]
    }

    /// Sets the entry at `dim`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values or dimensions.
    pub fn set(&mut self, dim: usize, value: i8) {
        assert!((-1..=1).contains(&value), "entries must be -1, 0 or 1");
        self.values[dim] = value;
    }

    /// Number of known (non-zero) entries.
    pub fn known(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count()
    }

    /// Distance to a centroid: mean squared difference over this matrix's
    /// *known* entries (unknowns cost nothing).
    fn distance(&self, centroid: &[f64]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if v != 0 {
                let d = v as f64 - centroid[i];
                sum += d * d;
                n += 1;
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            sum / n as f64
        }
    }
}

/// Learned privacy profiles (cluster centroids).
///
/// # Examples
///
/// ```
/// use tippers_iota::{PermissionMatrix, PrivacyProfiles};
///
/// let users = vec![
///     PermissionMatrix::from_values(vec![1, 1, 1]),
///     PermissionMatrix::from_values(vec![-1, -1, -1]),
/// ];
/// let profiles = PrivacyProfiles::learn(&users, 2, 10, 0);
/// // A mostly-deny user is completed from the denier profile.
/// let partial = PermissionMatrix::from_values(vec![-1, 0, 0]);
/// let full = profiles.complete(&partial);
/// assert_eq!(full.get(1), -1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyProfiles {
    centroids: Vec<Vec<f64>>,
    dims: usize,
}

impl PrivacyProfiles {
    /// K-means over permission matrices. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty, `k` is zero, or dimensions disagree.
    pub fn learn(users: &[PermissionMatrix], k: usize, iterations: usize, seed: u64) -> Self {
        assert!(!users.is_empty(), "need at least one user");
        assert!(k > 0, "need at least one profile");
        let dims = users[0].dims();
        assert!(
            users.iter().all(|u| u.dims() == dims),
            "all users must share dimensions"
        );
        // Deterministic farthest-point seeding: start from a seed-chosen
        // user, then repeatedly pick the user farthest from its nearest
        // existing centroid.
        let as_centroid =
            |u: &PermissionMatrix| (0..dims).map(|d| u.get(d) as f64).collect::<Vec<f64>>();
        let mut centroids: Vec<Vec<f64>> = vec![as_centroid(&users[(seed as usize) % users.len()])];
        while centroids.len() < k {
            let farthest = users
                .iter()
                .max_by(|a, b| {
                    let da = centroids
                        .iter()
                        .map(|c| a.distance(c))
                        .fold(f64::INFINITY, f64::min);
                    let db = centroids
                        .iter()
                        .map(|c| b.distance(c))
                        .fold(f64::INFINITY, f64::min);
                    // All-unknown users have infinite distance everywhere;
                    // rank them last so they never seed a centroid.
                    let norm = |d: f64| if d.is_finite() { d } else { -1.0 };
                    norm(da).partial_cmp(&norm(db)).expect("not NaN")
                })
                .expect("users is non-empty");
            centroids.push(as_centroid(farthest));
        }

        for _ in 0..iterations {
            // Assign.
            let assignment: Vec<usize> = users
                .iter()
                .map(|u| {
                    centroids
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            u.distance(a)
                                .partial_cmp(&u.distance(b))
                                .expect("distances are not NaN")
                        })
                        .map(|(i, _)| i)
                        .expect("k > 0")
                })
                .collect();
            // Update: mean of known entries per dimension.
            let mut next = vec![vec![0.0f64; dims]; k];
            let mut counts = vec![vec![0usize; dims]; k];
            for (u, &c) in users.iter().zip(&assignment) {
                for d in 0..dims {
                    let v = u.get(d);
                    if v != 0 {
                        next[c][d] += v as f64;
                        counts[c][d] += 1;
                    }
                }
            }
            for c in 0..k {
                for d in 0..dims {
                    if counts[c][d] > 0 {
                        next[c][d] /= counts[c][d] as f64;
                    } else {
                        next[c][d] = centroids[c][d];
                    }
                }
            }
            if next == centroids {
                break;
            }
            centroids = next;
        }
        PrivacyProfiles { centroids, dims }
    }

    /// Number of profiles.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The nearest profile for a user.
    pub fn assign(&self, user: &PermissionMatrix) -> usize {
        self.centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                user.distance(a)
                    .partial_cmp(&user.distance(b))
                    .expect("distances are not NaN")
            })
            .map_or(0, |(i, _)| i)
    }

    /// Predicted decision for `dim` under `profile`: +1 allow, −1 deny,
    /// 0 when the profile has no signal.
    pub fn predict(&self, profile: usize, dim: usize) -> i8 {
        let v = self.centroids[profile][dim];
        if v > 0.2 {
            1
        } else if v < -0.2 {
            -1
        } else {
            0
        }
    }

    /// Predicts a user's full matrix: their known answers stay, unknowns
    /// are filled from their assigned profile.
    pub fn complete(&self, user: &PermissionMatrix) -> PermissionMatrix {
        let p = self.assign(user);
        let values = (0..self.dims)
            .map(|d| {
                let v = user.get(d);
                if v != 0 {
                    v
                } else {
                    self.predict(p, d)
                }
            })
            .collect();
        PermissionMatrix::from_values(values)
    }
}

/// Fraction of `truth`'s known entries that `predicted` matches — the E10
/// accuracy metric.
pub fn prediction_accuracy(predicted: &PermissionMatrix, truth: &PermissionMatrix) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for d in 0..truth.dims() {
        if truth.get(d) != 0 {
            total += 1;
            if predicted.get(d) == truth.get(d) {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious archetypes: all-allow and all-deny, with partial views.
    fn synthetic_users() -> Vec<PermissionMatrix> {
        let mut users = Vec::new();
        for i in 0..20 {
            let mut m = PermissionMatrix::unknown(8);
            let allow = i % 2 == 0;
            // Each user reveals 5 of 8 answers.
            for d in 0..5 {
                let dim = (i + d) % 8;
                m.set(dim, if allow { 1 } else { -1 });
            }
            users.push(m);
        }
        users
    }

    #[test]
    fn learns_two_archetypes() {
        let users = synthetic_users();
        let profiles = PrivacyProfiles::learn(&users, 2, 20, 1);
        // Completion should recover the hidden full matrix.
        for (i, u) in users.iter().enumerate() {
            let completed = profiles.complete(u);
            let expected = if i % 2 == 0 { 1 } else { -1 };
            let full = PermissionMatrix::from_values(vec![expected; 8]);
            let acc = prediction_accuracy(&completed, &full);
            assert!(acc > 0.9, "user {i} accuracy {acc}");
        }
    }

    #[test]
    fn assignment_groups_like_users() {
        let users = synthetic_users();
        let profiles = PrivacyProfiles::learn(&users, 2, 20, 3);
        let a0 = profiles.assign(&users[0]);
        let a2 = profiles.assign(&users[2]);
        let a1 = profiles.assign(&users[1]);
        assert_eq!(a0, a2);
        assert_ne!(a0, a1);
    }

    #[test]
    fn unknowns_do_not_affect_distance() {
        let users = synthetic_users();
        let profiles = PrivacyProfiles::learn(&users, 2, 20, 1);
        let empty = PermissionMatrix::unknown(8);
        // All-unknown user: assignment is arbitrary but must not panic,
        // and prediction returns profile values.
        let p = profiles.assign(&empty);
        assert!(p < 2);
        let completed = profiles.complete(&empty);
        assert_eq!(completed.dims(), 8);
    }

    #[test]
    #[should_panic(expected = "entries must be")]
    fn invalid_entries_panic() {
        let _ = PermissionMatrix::from_values(vec![2]);
    }

    #[test]
    fn accuracy_metric() {
        let truth = PermissionMatrix::from_values(vec![1, -1, 0, 1]);
        let pred = PermissionMatrix::from_values(vec![1, 1, 1, 1]);
        let acc = prediction_accuracy(&pred, &truth);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }
}
