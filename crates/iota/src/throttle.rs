//! Notification fatigue control.
//!
//! §V.B: "the challenges include when and how to notify a user and how to
//! obtain user feedback without inducing user fatigue". The throttle caps
//! notifications per sliding window; the assistant additionally suppresses
//! repeats through its seen-set.
//!
//! The windowing itself is the shared [`SlidingWindow`] limiter from
//! `tippers-resilience`, driven by the same virtual clock as the rest of
//! the stack (seconds scaled to milliseconds by [`ms_from_secs`]) — one
//! rate-limiting implementation, not per-crate interval arithmetic.

use serde::{Deserialize, Serialize};
use tippers_policy::Timestamp;
use tippers_resilience::{ms_from_secs, SlidingWindow};

/// A sliding-window notification rate limiter.
///
/// # Examples
///
/// ```
/// use tippers_iota::NotificationThrottle;
/// use tippers_policy::Timestamp;
///
/// let mut throttle = NotificationThrottle::new(1, 600);
/// assert!(throttle.allow(Timestamp::at(0, 9, 0)));
/// assert!(!throttle.allow(Timestamp::at(0, 9, 5)));
/// assert!(throttle.allow(Timestamp::at(0, 9, 15)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NotificationThrottle {
    window: SlidingWindow,
}

impl NotificationThrottle {
    /// At most `max_per_window` notifications every `window_secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive.
    pub fn new(max_per_window: usize, window_secs: i64) -> NotificationThrottle {
        assert!(window_secs > 0, "window must be positive");
        NotificationThrottle {
            window: SlidingWindow::new(max_per_window, ms_from_secs(window_secs)),
        }
    }

    /// A reasonable default: three notifications per hour.
    pub fn default_hourly() -> NotificationThrottle {
        NotificationThrottle::new(3, 3600)
    }

    /// True if a notification may fire now; if so, it is recorded.
    pub fn allow(&mut self, now: Timestamp) -> bool {
        self.window.allow(ms_from_secs(now.seconds()))
    }

    /// Notifications fired in the current window.
    pub fn in_window(&self, now: Timestamp) -> usize {
        self.window.count(ms_from_secs(now.seconds()))
    }
}

impl Default for NotificationThrottle {
    fn default() -> Self {
        NotificationThrottle::default_hourly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_within_window() {
        let mut t = NotificationThrottle::new(2, 600);
        let t0 = Timestamp::at(0, 9, 0);
        assert!(t.allow(t0));
        assert!(t.allow(t0 + 10));
        assert!(!t.allow(t0 + 20));
        assert_eq!(t.in_window(t0 + 20), 2);
    }

    #[test]
    fn window_slides() {
        let mut t = NotificationThrottle::new(1, 600);
        let t0 = Timestamp::at(0, 9, 0);
        assert!(t.allow(t0));
        assert!(!t.allow(t0 + 599));
        assert!(t.allow(t0 + 601));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = NotificationThrottle::new(1, 0);
    }
}
