//! IoT Assistants (IoTAs).
//!
//! The framework's second component: personal agents that "selectively
//! notify users about the policies advertised by IRRs and configure any
//! available privacy settings" (§I). This crate provides:
//!
//! * [`Iota`] — discovery ([`Iota::poll`], step 5), relevance-ranked
//!   notification ([`Iota::review`], step 6) and automatic settings
//!   configuration ([`Iota::configure`], steps 7–8).
//! * [`SensitivityProfile`] and [`score_resource`] — per-user relevance
//!   scoring that looks through the *inference closure* of advertised
//!   practices, not just what they literally collect.
//! * [`NotificationThrottle`] — fatigue control (§V.B).
//! * [`PrivacyProfiles`] — the Liu et al. profile learner the paper cites
//!   for preference prediction (§V.B), over ternary permission matrices.
//!
//! # Examples
//!
//! ```
//! use tippers_iota::{Iota, SensitivityProfile};
//! use tippers_ontology::Ontology;
//! use tippers_policy::{UserGroup, UserId};
//!
//! let ontology = Ontology::standard();
//! let iota = Iota::new(
//!     UserId(1),
//!     UserGroup::GradStudent,
//!     SensitivityProfile::fundamentalist(&ontology),
//! );
//! assert!(iota.notifications().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assistant;
mod learning_bridge;
mod profiles;
mod relevance;
mod throttle;

pub use assistant::{Iota, IotaConfig, IotaNotification, PollStats};
pub use learning_bridge::{infer_sensitivity, QuestionGrid};
pub use profiles::{prediction_accuracy, PermissionMatrix, PrivacyProfiles};
pub use relevance::{purpose_factor, score_resource, RelevanceScore, SensitivityProfile};
pub use throttle::NotificationThrottle;
