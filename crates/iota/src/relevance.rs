//! Relevance scoring: which advertised practices does *this* user care
//! about?
//!
//! §II.C: the IoTA "displays summaries of relevant elements of these
//! policies to the user … by focusing on the elements of a policy that are
//! important with respect to the user's privacy preferences". A
//! [`SensitivityProfile`] holds per-category sensitivities; scoring takes
//! the *inference closure* of an advertised practice into account, so a
//! WiFi-log advertisement scores high for a location-sensitive user even
//! though it never says "location".

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::ResourceBlock;

/// Per-category sensitivity weights in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SensitivityProfile {
    weights: HashMap<ConceptId, f64>,
}

impl SensitivityProfile {
    /// An empty profile (indifferent to everything).
    pub fn new() -> SensitivityProfile {
        SensitivityProfile::default()
    }

    /// Sets the sensitivity of a category (clamped to `[0, 1]`).
    pub fn set(&mut self, category: ConceptId, weight: f64) {
        self.weights.insert(category, weight.clamp(0.0, 1.0));
    }

    /// The sensitivity of a category: the max over the category itself and
    /// its ancestors (a `location`-sensitive user is `location/fine`-
    /// sensitive too).
    pub fn sensitivity(&self, ontology: &Ontology, category: ConceptId) -> f64 {
        let mut s = self.weights.get(&category).copied().unwrap_or(0.0);
        for anc in ontology.data.ancestors(category) {
            if let Some(&w) = self.weights.get(&anc) {
                s = s.max(w);
            }
        }
        s
    }

    /// The privacy-*fundamentalist* archetype: highly sensitive to
    /// location, identity and behaviour.
    pub fn fundamentalist(ontology: &Ontology) -> SensitivityProfile {
        let c = ontology.concepts();
        let mut p = SensitivityProfile::new();
        p.set(c.location, 0.95);
        p.set(c.person_identity, 1.0);
        p.set(c.device_mac, 0.9);
        p.set(c.occupancy, 0.8);
        p.set(c.image, 0.95);
        p.set(ontology.data.id("data/behavior").expect("standard"), 0.9);
        p
    }

    /// The *pragmatist* archetype: cares about identity and imagery, less
    /// about coarse whereabouts.
    pub fn pragmatist(ontology: &Ontology) -> SensitivityProfile {
        let c = ontology.concepts();
        let mut p = SensitivityProfile::new();
        p.set(c.person_identity, 0.8);
        p.set(c.image, 0.7);
        p.set(c.location_fine, 0.6);
        p.set(c.occupancy, 0.3);
        p
    }

    /// The *unconcerned* archetype.
    pub fn unconcerned(_ontology: &Ontology) -> SensitivityProfile {
        SensitivityProfile::new()
    }
}

/// How much a purpose amplifies concern: data collected for marketing or
/// law-enforcement sharing worries users more than safety automation
/// (Peppet's analysis, §IV.B).
pub fn purpose_factor(ontology: &Ontology, purpose: ConceptId) -> f64 {
    let c = ontology.concepts();
    let p = &ontology.purposes;
    if p.is_a(purpose, c.marketing) {
        1.0
    } else if p.is_a(purpose, c.law_enforcement) {
        0.95
    } else if p.is_a(purpose, c.analytics) {
        0.85
    } else if p.is_a(purpose, c.providing_service) {
        0.7
    } else if p.is_a(purpose, c.emergency_response) {
        0.5
    } else {
        0.6
    }
}

/// A scored explanation of why an advertisement is (ir)relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct RelevanceScore {
    /// Combined score in `[0, 1]`.
    pub score: f64,
    /// The collected or inferable category that drove the score.
    pub driving_category: Option<ConceptId>,
    /// True if the driver is only *inferable*, not directly collected —
    /// worth surfacing ("this WiFi log can reveal your location").
    pub via_inference: bool,
}

/// Scores one advertised resource against a profile.
///
/// For every observation category the resource declares, the score
/// considers the category itself and everything inferable from it (scaled
/// by inference confidence), multiplied by the purpose factor; missing
/// machine-readable categories are ignored (the validator warns on them).
pub fn score_resource(
    resource: &ResourceBlock,
    profile: &SensitivityProfile,
    ontology: &Ontology,
) -> RelevanceScore {
    let mut best = RelevanceScore {
        score: 0.0,
        driving_category: None,
        via_inference: false,
    };
    let purpose = resource
        .purpose
        .purposes
        .keys()
        .next()
        .and_then(|k| resolve_purpose(ontology, k));
    let pf = purpose.map_or(0.6, |p| purpose_factor(ontology, p));

    for obs in &resource.observations {
        let Some(cat) = obs.category.as_ref().and_then(|k| ontology.data.id(k)) else {
            continue;
        };
        let direct = profile.sensitivity(ontology, cat) * pf;
        if direct > best.score {
            best = RelevanceScore {
                score: direct,
                driving_category: Some(cat),
                via_inference: false,
            };
        }
        for inf in ontology.inference().closure(&[cat]) {
            let s = profile.sensitivity(ontology, inf.concept) * inf.confidence * pf;
            if s > best.score {
                best = RelevanceScore {
                    score: s,
                    driving_category: Some(inf.concept),
                    via_inference: true,
                };
            }
        }
    }
    best
}

fn resolve_purpose(ontology: &Ontology, key: &str) -> Option<ConceptId> {
    if let Some(id) = ontology.purposes.id(key) {
        return Some(id);
    }
    let normalized = key.to_lowercase().replace(['_', ' '], "-");
    ontology
        .purposes
        .iter()
        .find(|c| {
            c.key().rsplit('/').next() == Some(normalized.as_str())
                || c.label().to_lowercase() == key.to_lowercase()
        })
        .map(tippers_ontology::Concept::id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::{catalog, PolicyCodec, PolicyId};
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn ancestor_sensitivity_propagates() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut p = SensitivityProfile::new();
        p.set(c.location, 0.9);
        assert!((p.sensitivity(&ont, c.location_fine) - 0.9).abs() < 1e-9);
        assert_eq!(p.sensitivity(&ont, c.ambient_temperature), 0.0);
    }

    #[test]
    fn wifi_advert_is_relevant_via_inference() {
        let ont = Ontology::standard();
        let d = dbh();
        let codec = PolicyCodec::new(&ont, &d.model);
        let policy = catalog::policy2_emergency_location(PolicyId(2), d.building, &ont);
        let doc = codec.to_document(&policy);
        let profile = SensitivityProfile::fundamentalist(&ont);
        let score = score_resource(&doc.resources[0], &profile, &ont);
        assert!(score.score > 0.3, "score {}", score.score);
        // WiFi logs are network metadata; the concern comes through
        // inference (device MAC is directly collected at weight 0.9, but
        // also location at 0.95 × 0.9 confidence — either way a driver
        // exists).
        assert!(score.driving_category.is_some());
    }

    #[test]
    fn unconcerned_users_score_zero() {
        let ont = Ontology::standard();
        let d = dbh();
        let codec = PolicyCodec::new(&ont, &d.model);
        let policy = catalog::policy2_emergency_location(PolicyId(2), d.building, &ont);
        let doc = codec.to_document(&policy);
        let profile = SensitivityProfile::unconcerned(&ont);
        let score = score_resource(&doc.resources[0], &profile, &ont);
        assert_eq!(score.score, 0.0);
    }

    #[test]
    fn marketing_purposes_amplify() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        assert!(purpose_factor(&ont, c.marketing) > purpose_factor(&ont, c.emergency_response));
        assert!(purpose_factor(&ont, c.navigation) > purpose_factor(&ont, c.emergency_response));
    }
}
