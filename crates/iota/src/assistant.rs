//! The IoT Assistant itself: discovery, selective notification, and
//! automatic settings configuration (Figure 1, steps 5–8).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use tippers::{SettingsError, Tippers};
use tippers_irr::{AdvertisementId, DiscoveryBus, RegistryId, ResourceAdvertisement};
use tippers_ontology::Ontology;
use tippers_policy::{
    diff_documents, BuildingPolicy, Effect, PolicyDocument, PreferenceId, Timestamp, UserGroup,
    UserId,
};
use tippers_spatial::{Granularity, SpaceId, SpatialModel};

use crate::relevance::{score_resource, RelevanceScore, SensitivityProfile};
use crate::throttle::NotificationThrottle;

/// IoTA behaviour parameters.
#[derive(Debug, Clone)]
pub struct IotaConfig {
    /// Minimum relevance score to notify about (step 6's selectivity).
    pub relevance_threshold: f64,
    /// Fetch retries on simulated message loss.
    pub fetch_retries: usize,
    /// Sensitivity above which the assistant denies a practice outright.
    pub deny_threshold: f64,
    /// Sensitivity above which it degrades instead of allowing.
    pub degrade_threshold: f64,
    /// Fatigue throttle applied to notifications (§V.B).
    pub throttle: NotificationThrottle,
}

impl Default for IotaConfig {
    fn default() -> Self {
        IotaConfig {
            relevance_threshold: 0.35,
            fetch_retries: 3,
            deny_threshold: 0.75,
            degrade_threshold: 0.4,
            throttle: NotificationThrottle::default_hourly(),
        }
    }
}

/// A notification shown to the user (step 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IotaNotification {
    /// When it fired.
    pub time: Timestamp,
    /// Short title (the resource name).
    pub title: String,
    /// Why the user should care.
    pub body: String,
    /// Relevance score that triggered it.
    pub score: f64,
}

/// A user's IoT Assistant.
#[derive(Debug)]
pub struct Iota {
    /// The user it assists.
    pub user: UserId,
    /// The user's group.
    pub group: UserGroup,
    profile: SensitivityProfile,
    config: IotaConfig,
    throttle: NotificationThrottle,
    seen: HashSet<(RegistryId, AdvertisementId, u32)>,
    last_docs: HashMap<(RegistryId, AdvertisementId), PolicyDocument>,
    notification_log: Vec<IotaNotification>,
    suppressed_relevant: usize,
}

impl Iota {
    /// Creates an assistant with the default configuration.
    pub fn new(user: UserId, group: UserGroup, profile: SensitivityProfile) -> Iota {
        Iota::with_config(user, group, profile, IotaConfig::default())
    }

    /// Creates an assistant with a custom configuration.
    pub fn with_config(
        user: UserId,
        group: UserGroup,
        profile: SensitivityProfile,
        config: IotaConfig,
    ) -> Iota {
        let throttle = config.throttle.clone();
        Iota {
            user,
            group,
            profile,
            config,
            throttle,
            seen: HashSet::new(),
            last_docs: HashMap::new(),
            notification_log: Vec::new(),
            suppressed_relevant: 0,
        }
    }

    /// The user's sensitivity profile.
    pub fn profile(&self) -> &SensitivityProfile {
        &self.profile
    }

    /// Updates the profile (e.g. after learning).
    pub fn set_profile(&mut self, profile: SensitivityProfile) {
        self.profile = profile;
    }

    /// All notifications shown so far.
    pub fn notifications(&self) -> &[IotaNotification] {
        &self.notification_log
    }

    /// Relevant notifications suppressed by the fatigue throttle (E10's
    /// burden-vs-coverage trade-off).
    pub fn suppressed_relevant(&self) -> usize {
        self.suppressed_relevant
    }

    /// Step 5: discover registries near `space` and fetch fresh
    /// advertisements, retrying lost fetches.
    pub fn poll(
        &self,
        bus: &DiscoveryBus,
        model: &SpatialModel,
        space: SpaceId,
        now: Timestamp,
    ) -> Vec<(RegistryId, ResourceAdvertisement)> {
        let (registries, _) = bus.discover(model, space);
        let mut out = Vec::new();
        for registry in registries {
            for attempt in 0..=self.config.fetch_retries {
                match bus.fetch_near(registry, model, space, now) {
                    Ok((ads, _latency)) => {
                        out.extend(ads.into_iter().map(|a| (registry, a)));
                        break;
                    }
                    Err(_) if attempt < self.config.fetch_retries => continue,
                    Err(_) => break,
                }
            }
        }
        out
    }

    /// Step 6: review fetched advertisements, notifying about unseen,
    /// relevant ones, under the fatigue throttle.
    ///
    /// Republished advertisements (version bumps) are semantically diffed
    /// against the last version this assistant saw; *expanding* changes —
    /// new practices, new purposes, longer retention, hardened modality —
    /// always notify, regardless of the relevance threshold.
    pub fn review(
        &mut self,
        ads: &[(RegistryId, ResourceAdvertisement)],
        ontology: &Ontology,
        now: Timestamp,
    ) -> Vec<IotaNotification> {
        let mut fired = Vec::new();
        for (registry, ad) in ads {
            let key = (*registry, ad.id, ad.version);
            if self.seen.contains(&key) {
                continue;
            }
            self.seen.insert(key);
            let doc_key = (*registry, ad.id);
            let changes = self
                .last_docs
                .get(&doc_key)
                .map(|prev| diff_documents(prev, &ad.document))
                .unwrap_or_default();
            self.last_docs.insert(doc_key, ad.document.clone());
            let has_expansion = changes.iter().any(|c| c.is_expansion());
            let change_summary = if changes.is_empty() {
                String::new()
            } else {
                let listed: Vec<String> = changes.iter().map(|c| c.to_string()).collect();
                format!(" Changed since you last saw it: {}.", listed.join("; "))
            };
            for resource in &ad.document.resources {
                let score = score_resource(resource, &self.profile, ontology);
                if score.score < self.config.relevance_threshold && !has_expansion {
                    continue;
                }
                if !self.throttle.allow(now) {
                    self.suppressed_relevant += 1;
                    continue;
                }
                let notification = IotaNotification {
                    time: now,
                    title: resource.info.name.clone(),
                    body: format!("{}{}", describe(resource, &score, ontology), change_summary),
                    score: score.score,
                };
                self.notification_log.push(notification.clone());
                fired.push(notification);
            }
        }
        fired
    }

    /// The effect this user would want for a policy's data practice,
    /// derived from their sensitivity to what it collects *and implies*.
    pub fn desired_effect(&self, policy: &BuildingPolicy, ontology: &Ontology) -> Effect {
        let mut s = self.profile.sensitivity(ontology, policy.data);
        for inf in ontology.inference().closure(&[policy.data]) {
            s = s.max(self.profile.sensitivity(ontology, inf.concept) * inf.confidence);
        }
        if s >= self.config.deny_threshold {
            Effect::Deny
        } else if s >= self.config.degrade_threshold {
            Effect::Degrade(Granularity::Floor)
        } else {
            Effect::Allow
        }
    }

    /// Steps 7–8: configure every configurable policy in the BMS on the
    /// user's behalf — pick the advertised setting option closest to the
    /// desired effect and submit the choice.
    ///
    /// Returns the preference ids created.
    pub fn configure(&mut self, bms: &mut Tippers) -> Result<Vec<PreferenceId>, SettingsError> {
        let ontology = bms.ontology().clone();
        let plans: Vec<(tippers_policy::PolicyId, String, usize)> = bms
            .policies()
            .iter()
            .filter(|p| !p.settings.is_empty())
            .map(|policy| {
                let desired = self.desired_effect(policy, &ontology);
                let setting = &policy.settings[0];
                let option_index = setting
                    .options
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, o)| {
                        (o.effect.strictness() as i32 - desired.strictness() as i32).abs()
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(setting.default_option);
                (policy.id, setting.key.clone(), option_index)
            })
            .collect();
        let mut created = Vec::new();
        for (policy, key, option) in plans {
            created.push(bms.apply_setting_choice(self.user, policy, &key, option)?);
        }
        Ok(created)
    }
}

fn describe(
    resource: &tippers_policy::ResourceBlock,
    score: &RelevanceScore,
    ontology: &Ontology,
) -> String {
    let driver = score
        .driving_category
        .map(|c| ontology.data.concept(c).label().to_lowercase())
        .unwrap_or_else(|| "your data".to_owned());
    let retention = resource
        .retention
        .map(|r| format!(" Data is retained for {}.", r.duration))
        .unwrap_or_default();
    if score.via_inference {
        format!(
            "This resource collects data from which your {driver} can be inferred.{retention}"
        )
    } else {
        format!("This resource collects your {driver}.{retention}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers::{TippersConfig};
    use tippers_irr::NetworkConfig;
    use tippers_policy::{catalog, PolicyId};
    use tippers_spatial::fixtures::dbh;

    fn setup() -> (Ontology, tippers_spatial::fixtures::Dbh, DiscoveryBus, RegistryId, Tippers) {
        let ont = Ontology::standard();
        let d = dbh();
        let mut bms = Tippers::new(ont.clone(), d.model.clone(), TippersConfig::default());
        bms.add_policy(
            catalog::policy2_emergency_location(PolicyId(0), d.building, &ont)
                .with_setting(BuildingPolicy::location_setting()),
        );
        let mut bus = DiscoveryBus::new(NetworkConfig::default());
        let irr = bus.add_registry("DBH IRR", d.building);
        bms.publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0)).unwrap();
        (ont, d, bus, irr, bms)
    }

    #[test]
    fn poll_review_notifies_sensitive_users() {
        let (ont, d, bus, _irr, _bms) = setup();
        let mut iota = Iota::new(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
        );
        let ads = iota.poll(&bus, &d.model, d.offices[0], Timestamp::at(0, 9, 0));
        assert_eq!(ads.len(), 1);
        let fired = iota.review(&ads, &ont, Timestamp::at(0, 9, 0));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].body.contains("inferred") || fired[0].body.contains("collects"));
        // Re-reviewing the same version stays quiet.
        let again = iota.review(&ads, &ont, Timestamp::at(0, 9, 5));
        assert!(again.is_empty());
    }

    #[test]
    fn unconcerned_users_hear_nothing() {
        let (ont, d, bus, _irr, _bms) = setup();
        let mut iota = Iota::new(
            UserId(2),
            UserGroup::Undergrad,
            SensitivityProfile::unconcerned(&ont),
        );
        let ads = iota.poll(&bus, &d.model, d.offices[0], Timestamp::at(0, 9, 0));
        let fired = iota.review(&ads, &ont, Timestamp::at(0, 9, 0));
        assert!(fired.is_empty());
    }

    #[test]
    fn configure_submits_strict_choice_for_fundamentalist() {
        let (ont, _d, _bus, _irr, mut bms) = setup();
        let mut iota = Iota::new(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
        );
        let created = iota.configure(&mut bms).unwrap();
        assert_eq!(created.len(), 1);
        let prefs = bms.preferences();
        assert_eq!(prefs.len(), 1);
        assert_eq!(prefs[0].effect, Effect::Deny);
        // The deny of a mandatory policy produced a conflict notification
        // the next sync will surface.
        let conflicts = bms.detect_conflicts();
        assert_eq!(conflicts.len(), 1);
    }

    #[test]
    fn configure_leaves_relaxed_users_permissive() {
        let (ont, _d, _bus, _irr, mut bms) = setup();
        let mut iota = Iota::new(
            UserId(2),
            UserGroup::Undergrad,
            SensitivityProfile::unconcerned(&ont),
        );
        iota.configure(&mut bms).unwrap();
        assert_eq!(bms.preferences()[0].effect, Effect::Allow);
        assert!(bms.detect_conflicts().is_empty());
    }

    #[test]
    fn desired_effect_tracks_sensitivity() {
        let (ont, d, _bus, _irr, _bms) = setup();
        let policy = catalog::policy2_emergency_location(PolicyId(0), d.building, &ont);
        let strict = Iota::new(
            UserId(1),
            UserGroup::Faculty,
            SensitivityProfile::fundamentalist(&ont),
        );
        let relaxed = Iota::new(
            UserId(2),
            UserGroup::Faculty,
            SensitivityProfile::unconcerned(&ont),
        );
        assert_eq!(strict.desired_effect(&policy, &ont), Effect::Deny);
        assert_eq!(relaxed.desired_effect(&policy, &ont), Effect::Allow);
    }
}
