//! The IoT Assistant itself: discovery, selective notification, and
//! automatic settings configuration (Figure 1, steps 5–8).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use tippers::{SettingsError, Tippers};
use tippers_irr::{AdvertisementId, DiscoveryBus, NetError, RegistryId, ResourceAdvertisement};
use tippers_ontology::Ontology;
use tippers_policy::{
    diff_documents, BuildingPolicy, Effect, PolicyDocument, PreferenceId, Timestamp, UserGroup,
    UserId,
};
use tippers_resilience::{
    BackoffSchedule, BreakerConfig, CircuitBreaker, FaultPoint, RetryPolicy, Transient,
};
use tippers_spatial::{Granularity, SpaceId, SpatialModel};

use crate::relevance::{score_resource, RelevanceScore, SensitivityProfile};
use crate::throttle::NotificationThrottle;

/// IoTA behaviour parameters.
#[derive(Debug, Clone)]
pub struct IotaConfig {
    /// Minimum relevance score to notify about (step 6's selectivity).
    pub relevance_threshold: f64,
    /// Fetch retries on simulated message loss (attempts = retries + 1).
    pub fetch_retries: usize,
    /// Backoff between fetch retries (delays are charged against
    /// `fetch_deadline_ms`, never slept).
    pub fetch_backoff: BackoffSchedule,
    /// Virtual-time budget for one registry's fetch retries, milliseconds.
    pub fetch_deadline_ms: u64,
    /// Per-registry circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// How stale a cached advertisement set may be and still serve as a
    /// fallback when a registry is unreachable or circuit-broken, seconds.
    pub cache_staleness_secs: i64,
    /// Sensitivity above which the assistant denies a practice outright.
    pub deny_threshold: f64,
    /// Sensitivity above which it degrades instead of allowing.
    pub degrade_threshold: f64,
    /// Fatigue throttle applied to notifications (§V.B).
    pub throttle: NotificationThrottle,
}

impl Default for IotaConfig {
    fn default() -> Self {
        IotaConfig {
            relevance_threshold: 0.35,
            fetch_retries: 3,
            fetch_backoff: BackoffSchedule::default(),
            fetch_deadline_ms: 30_000,
            breaker: BreakerConfig::default(),
            cache_staleness_secs: 1_800,
            deny_threshold: 0.75,
            degrade_threshold: 0.4,
            throttle: NotificationThrottle::default_hourly(),
        }
    }
}

/// Counters describing how discovery has gone so far (resilience
/// observability for tests and experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Individual fetch attempts made (including retries).
    pub fetch_attempts: u64,
    /// Registries whose fetch ultimately failed this lifetime.
    pub fetch_failures: u64,
    /// Fetches skipped because the registry's circuit was open.
    pub breaker_rejections: u64,
    /// Rounds served from the stale-bounded advertisement cache.
    pub cache_fallbacks: u64,
    /// Fetched documents dropped because they failed to decode.
    pub decode_failures: u64,
}

/// A fetch attempt's failure: either the network lost it or the payload
/// would not decode. Both are worth retrying; a refetch redraws the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchError {
    Net(NetError),
    Decode,
}

impl Transient for FetchError {
    fn is_transient(&self) -> bool {
        match self {
            FetchError::Net(e) => e.is_transient(),
            FetchError::Decode => true,
        }
    }
}

/// A notification shown to the user (step 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IotaNotification {
    /// When it fired.
    pub time: Timestamp,
    /// Short title (the resource name).
    pub title: String,
    /// Why the user should care.
    pub body: String,
    /// Relevance score that triggered it.
    pub score: f64,
}

/// A user's IoT Assistant.
#[derive(Debug)]
pub struct Iota {
    /// The user it assists.
    pub user: UserId,
    /// The user's group.
    pub group: UserGroup,
    profile: SensitivityProfile,
    config: IotaConfig,
    throttle: NotificationThrottle,
    seen: HashSet<(RegistryId, AdvertisementId, u32)>,
    last_docs: HashMap<(RegistryId, AdvertisementId), PolicyDocument>,
    notification_log: Vec<IotaNotification>,
    suppressed_relevant: usize,
    breakers: HashMap<RegistryId, CircuitBreaker>,
    ad_cache: HashMap<RegistryId, (Timestamp, Vec<ResourceAdvertisement>)>,
    poll_stats: PollStats,
}

impl Iota {
    /// Creates an assistant with the default configuration.
    pub fn new(user: UserId, group: UserGroup, profile: SensitivityProfile) -> Iota {
        Iota::with_config(user, group, profile, IotaConfig::default())
    }

    /// Creates an assistant with a custom configuration.
    pub fn with_config(
        user: UserId,
        group: UserGroup,
        profile: SensitivityProfile,
        config: IotaConfig,
    ) -> Iota {
        let throttle = config.throttle.clone();
        Iota {
            user,
            group,
            profile,
            config,
            throttle,
            seen: HashSet::new(),
            last_docs: HashMap::new(),
            notification_log: Vec::new(),
            suppressed_relevant: 0,
            breakers: HashMap::new(),
            ad_cache: HashMap::new(),
            poll_stats: PollStats::default(),
        }
    }

    /// The user's sensitivity profile.
    pub fn profile(&self) -> &SensitivityProfile {
        &self.profile
    }

    /// Updates the profile (e.g. after learning).
    pub fn set_profile(&mut self, profile: SensitivityProfile) {
        self.profile = profile;
    }

    /// All notifications shown so far.
    pub fn notifications(&self) -> &[IotaNotification] {
        &self.notification_log
    }

    /// Relevant notifications suppressed by the fatigue throttle (E10's
    /// burden-vs-coverage trade-off).
    pub fn suppressed_relevant(&self) -> usize {
        self.suppressed_relevant
    }

    /// Resilience counters accumulated across polls.
    pub fn poll_stats(&self) -> PollStats {
        self.poll_stats
    }

    /// The breaker state for one registry, if it has ever been fetched.
    pub fn breaker_state(&self, registry: RegistryId) -> Option<tippers_resilience::BreakerState> {
        self.breakers
            .get(&registry)
            .map(tippers_resilience::CircuitBreaker::state)
    }

    /// Step 5: discover registries near `space` and fetch fresh
    /// advertisements.
    ///
    /// Each registry's fetch runs under a bounded retry policy (capped
    /// backoff, virtual-time deadline — see [`IotaConfig::fetch_deadline_ms`])
    /// behind a per-registry circuit breaker. When a registry is
    /// circuit-broken or its retries exhaust, the assistant falls back to
    /// its last-known advertisements, bounded by
    /// [`IotaConfig::cache_staleness_secs`] — stale knowledge beats none,
    /// but not indefinitely.
    pub fn poll(
        &mut self,
        bus: &DiscoveryBus,
        model: &SpatialModel,
        space: SpaceId,
        now: Timestamp,
    ) -> Vec<(RegistryId, ResourceAdvertisement)> {
        let (registries, _) = bus.discover(model, space);
        let retry = RetryPolicy {
            max_attempts: self.config.fetch_retries as u32 + 1,
            deadline_ms: self.config.fetch_deadline_ms,
            backoff: self.config.fetch_backoff,
        };
        let mut out = Vec::new();
        for registry in registries {
            let breaker = self
                .breakers
                .entry(registry)
                .or_insert_with(|| CircuitBreaker::new(self.config.breaker));
            if !breaker.admit(now.0) {
                self.poll_stats.breaker_rejections += 1;
                Self::serve_cached(
                    &self.ad_cache,
                    &mut self.poll_stats,
                    registry,
                    now,
                    self.config.cache_staleness_secs,
                    &mut out,
                );
                continue;
            }
            let attempts = &mut self.poll_stats.fetch_attempts;
            let decode_failures = &mut self.poll_stats.decode_failures;
            let fetched = retry.run(|_| {
                *attempts += 1;
                let (ads, _latency) = bus
                    .fetch_near(registry, model, space, now)
                    .map_err(FetchError::Net)?;
                if bus.fault_plan().should_fail(FaultPoint::PolicyDecode) {
                    *decode_failures += 1;
                    return Err(FetchError::Decode);
                }
                Ok(ads)
            });
            let breaker = self.breakers.get_mut(&registry).expect("inserted above");
            match fetched {
                Ok((ads, _report)) => {
                    breaker.record_success();
                    self.ad_cache.insert(registry, (now, ads.clone()));
                    out.extend(ads.into_iter().map(|a| (registry, a)));
                }
                Err(_) => {
                    breaker.record_failure(now.0);
                    self.poll_stats.fetch_failures += 1;
                    Self::serve_cached(
                        &self.ad_cache,
                        &mut self.poll_stats,
                        registry,
                        now,
                        self.config.cache_staleness_secs,
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// Serves a registry's cached advertisements if they are within the
    /// staleness bound, discarding advertisements no longer fresh at `now`.
    fn serve_cached(
        cache: &HashMap<RegistryId, (Timestamp, Vec<ResourceAdvertisement>)>,
        stats: &mut PollStats,
        registry: RegistryId,
        now: Timestamp,
        staleness_secs: i64,
        out: &mut Vec<(RegistryId, ResourceAdvertisement)>,
    ) {
        if let Some((cached_at, ads)) = cache.get(&registry) {
            if now - *cached_at <= staleness_secs {
                stats.cache_fallbacks += 1;
                out.extend(
                    ads.iter()
                        .filter(|a| a.is_fresh(now))
                        .map(|a| (registry, a.clone())),
                );
            }
        }
    }

    /// Step 6: review fetched advertisements, notifying about unseen,
    /// relevant ones, under the fatigue throttle.
    ///
    /// Republished advertisements (version bumps) are semantically diffed
    /// against the last version this assistant saw; *expanding* changes —
    /// new practices, new purposes, longer retention, hardened modality —
    /// always notify, regardless of the relevance threshold.
    pub fn review(
        &mut self,
        ads: &[(RegistryId, ResourceAdvertisement)],
        ontology: &Ontology,
        now: Timestamp,
    ) -> Vec<IotaNotification> {
        let mut fired = Vec::new();
        for (registry, ad) in ads {
            let key = (*registry, ad.id, ad.version);
            if self.seen.contains(&key) {
                continue;
            }
            self.seen.insert(key);
            let doc_key = (*registry, ad.id);
            let changes = self
                .last_docs
                .get(&doc_key)
                .map(|prev| diff_documents(prev, &ad.document))
                .unwrap_or_default();
            self.last_docs.insert(doc_key, ad.document.clone());
            let has_expansion = changes
                .iter()
                .any(tippers_policy::PolicyChange::is_expansion);
            let change_summary = if changes.is_empty() {
                String::new()
            } else {
                let listed: Vec<String> = changes
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect();
                format!(" Changed since you last saw it: {}.", listed.join("; "))
            };
            for resource in &ad.document.resources {
                let score = score_resource(resource, &self.profile, ontology);
                if score.score < self.config.relevance_threshold && !has_expansion {
                    continue;
                }
                if !self.throttle.allow(now) {
                    self.suppressed_relevant += 1;
                    continue;
                }
                let notification = IotaNotification {
                    time: now,
                    title: resource.info.name.clone(),
                    body: format!("{}{}", describe(resource, &score, ontology), change_summary),
                    score: score.score,
                };
                self.notification_log.push(notification.clone());
                fired.push(notification);
            }
        }
        fired
    }

    /// The effect this user would want for a policy's data practice,
    /// derived from their sensitivity to what it collects *and implies*.
    pub fn desired_effect(&self, policy: &BuildingPolicy, ontology: &Ontology) -> Effect {
        let mut s = self.profile.sensitivity(ontology, policy.data);
        for inf in ontology.inference().closure(&[policy.data]) {
            s = s.max(self.profile.sensitivity(ontology, inf.concept) * inf.confidence);
        }
        if s >= self.config.deny_threshold {
            Effect::Deny
        } else if s >= self.config.degrade_threshold {
            Effect::Degrade(Granularity::Floor)
        } else {
            Effect::Allow
        }
    }

    /// Steps 7–8: configure every configurable policy in the BMS on the
    /// user's behalf — pick the advertised setting option closest to the
    /// desired effect and submit the choice.
    ///
    /// Returns the preference ids created.
    pub fn configure(&mut self, bms: &mut Tippers) -> Result<Vec<PreferenceId>, SettingsError> {
        let ontology = bms.ontology().clone();
        let plans: Vec<(tippers_policy::PolicyId, String, usize)> = bms
            .policies()
            .iter()
            .filter(|p| !p.settings.is_empty())
            .map(|policy| {
                let desired = self.desired_effect(policy, &ontology);
                let setting = &policy.settings[0];
                let option_index = setting
                    .options
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, o)| {
                        (o.effect.strictness() as i32 - desired.strictness() as i32).abs()
                    })
                    .map_or(setting.default_option, |(i, _)| i);
                (policy.id, setting.key.clone(), option_index)
            })
            .collect();
        let mut created = Vec::new();
        for (policy, key, option) in plans {
            created.push(bms.apply_setting_choice(self.user, policy, &key, option)?);
        }
        Ok(created)
    }
}

fn describe(
    resource: &tippers_policy::ResourceBlock,
    score: &RelevanceScore,
    ontology: &Ontology,
) -> String {
    let driver = score.driving_category.map_or_else(
        || "your data".to_owned(),
        |c| ontology.data.concept(c).label().to_lowercase(),
    );
    let retention = resource
        .retention
        .map(|r| format!(" Data is retained for {}.", r.duration))
        .unwrap_or_default();
    if score.via_inference {
        format!("This resource collects data from which your {driver} can be inferred.{retention}")
    } else {
        format!("This resource collects your {driver}.{retention}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers::TippersConfig;
    use tippers_irr::NetworkConfig;
    use tippers_policy::{catalog, PolicyId};
    use tippers_spatial::fixtures::dbh;

    fn setup() -> (
        Ontology,
        tippers_spatial::fixtures::Dbh,
        DiscoveryBus,
        RegistryId,
        Tippers,
    ) {
        let ont = Ontology::standard();
        let d = dbh();
        let mut bms = Tippers::new(ont.clone(), d.model.clone(), TippersConfig::default());
        bms.add_policy(
            catalog::policy2_emergency_location(PolicyId(0), d.building, &ont)
                .with_setting(BuildingPolicy::location_setting()),
        );
        let mut bus = DiscoveryBus::new(NetworkConfig::default());
        let irr = bus.add_registry("DBH IRR", d.building);
        bms.publish_policies(&mut bus, irr, Timestamp::at(0, 8, 0))
            .unwrap();
        (ont, d, bus, irr, bms)
    }

    #[test]
    fn poll_review_notifies_sensitive_users() {
        let (ont, d, bus, _irr, _bms) = setup();
        let mut iota = Iota::new(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
        );
        let ads = iota.poll(&bus, &d.model, d.offices[0], Timestamp::at(0, 9, 0));
        assert_eq!(ads.len(), 1);
        let fired = iota.review(&ads, &ont, Timestamp::at(0, 9, 0));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].body.contains("inferred") || fired[0].body.contains("collects"));
        // Re-reviewing the same version stays quiet.
        let again = iota.review(&ads, &ont, Timestamp::at(0, 9, 5));
        assert!(again.is_empty());
    }

    #[test]
    fn unconcerned_users_hear_nothing() {
        let (ont, d, bus, _irr, _bms) = setup();
        let mut iota = Iota::new(
            UserId(2),
            UserGroup::Undergrad,
            SensitivityProfile::unconcerned(&ont),
        );
        let ads = iota.poll(&bus, &d.model, d.offices[0], Timestamp::at(0, 9, 0));
        let fired = iota.review(&ads, &ont, Timestamp::at(0, 9, 0));
        assert!(fired.is_empty());
    }

    #[test]
    fn configure_submits_strict_choice_for_fundamentalist() {
        let (ont, _d, _bus, _irr, mut bms) = setup();
        let mut iota = Iota::new(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
        );
        let created = iota.configure(&mut bms).unwrap();
        assert_eq!(created.len(), 1);
        let prefs = bms.preferences();
        assert_eq!(prefs.len(), 1);
        assert_eq!(prefs[0].effect, Effect::Deny);
        // The deny of a mandatory policy produced a conflict notification
        // the next sync will surface.
        let conflicts = bms.detect_conflicts();
        assert_eq!(conflicts.len(), 1);
    }

    #[test]
    fn configure_leaves_relaxed_users_permissive() {
        let (ont, _d, _bus, _irr, mut bms) = setup();
        let mut iota = Iota::new(
            UserId(2),
            UserGroup::Undergrad,
            SensitivityProfile::unconcerned(&ont),
        );
        iota.configure(&mut bms).unwrap();
        assert_eq!(bms.preferences()[0].effect, Effect::Allow);
        assert!(bms.detect_conflicts().is_empty());
    }

    #[test]
    fn poll_survives_transient_loss_via_retry() {
        let (ont, d, mut bus, _irr, _bms) = setup();
        // One guaranteed drop, then the budget is spent: the retry layer
        // absorbs it within a single poll.
        let plan = tippers_resilience::FaultPlan::seeded(5);
        plan.arm_limited(FaultPoint::RegistryFetch, 1.0, 1);
        bus.set_fault_plan(plan);
        let mut iota = Iota::new(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
        );
        let ads = iota.poll(&bus, &d.model, d.offices[0], Timestamp::at(0, 9, 0));
        assert_eq!(ads.len(), 1);
        let stats = iota.poll_stats();
        assert!(stats.fetch_attempts >= 2, "at least one retry happened");
        assert_eq!(stats.fetch_failures, 0);
    }

    #[test]
    fn breaker_opens_and_cache_serves_with_staleness_bound() {
        let (ont, d, mut bus, irr, _bms) = setup();
        let mut iota = Iota::with_config(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
            IotaConfig {
                fetch_retries: 1,
                cache_staleness_secs: 3_600,
                ..IotaConfig::default()
            },
        );
        // A healthy poll primes the advertisement cache.
        let t0 = Timestamp::at(0, 9, 0);
        assert_eq!(iota.poll(&bus, &d.model, d.offices[0], t0).len(), 1);

        // The registry goes dark (fetches fail; discovery still answers).
        let plan = tippers_resilience::FaultPlan::seeded(5);
        plan.arm(FaultPoint::RegistryFetch, 1.0);
        bus.set_fault_plan(plan);

        // Three failed polls trip the default breaker; each is served from
        // cache meanwhile.
        for i in 1..=3 {
            let ads = iota.poll(&bus, &d.model, d.offices[0], t0 + i * 60);
            assert_eq!(ads.len(), 1, "cache fallback keeps serving");
        }
        assert_eq!(
            iota.breaker_state(irr),
            Some(tippers_resilience::BreakerState::Open)
        );
        let before = iota.poll_stats();
        assert_eq!(before.fetch_failures, 3);
        assert!(before.cache_fallbacks >= 3);

        // While open (within cooldown) no fetch is attempted at all.
        let ads = iota.poll(&bus, &d.model, d.offices[0], t0 + 4 * 60);
        assert_eq!(ads.len(), 1, "still served from cache");
        let after = iota.poll_stats();
        assert_eq!(after.fetch_attempts, before.fetch_attempts);
        assert_eq!(after.breaker_rejections, before.breaker_rejections + 1);

        // Past the staleness bound the cache refuses to answer: stale
        // knowledge is bounded, not eternal.
        let ads = iota.poll(&bus, &d.model, d.offices[0], t0 + 7_200);
        assert!(ads.is_empty(), "stale cache must not serve");
    }

    #[test]
    fn breaker_probe_recovers_after_registry_heals() {
        let (ont, d, mut bus, irr, _bms) = setup();
        let mut iota = Iota::with_config(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ont),
            IotaConfig {
                fetch_retries: 0,
                ..IotaConfig::default()
            },
        );
        let t0 = Timestamp::at(0, 9, 0);
        let plan = tippers_resilience::FaultPlan::seeded(5);
        plan.arm(FaultPoint::RegistryFetch, 1.0);
        bus.set_fault_plan(plan.clone());
        for i in 0..3 {
            iota.poll(&bus, &d.model, d.offices[0], t0 + i * 60);
        }
        assert_eq!(
            iota.breaker_state(irr),
            Some(tippers_resilience::BreakerState::Open)
        );
        // Registry heals; after the cooldown a half-open probe succeeds and
        // the circuit closes again.
        plan.disarm(FaultPoint::RegistryFetch);
        let recovered = iota.poll(&bus, &d.model, d.offices[0], t0 + 600);
        assert_eq!(recovered.len(), 1);
        assert_eq!(
            iota.breaker_state(irr),
            Some(tippers_resilience::BreakerState::Closed)
        );
    }

    #[test]
    fn desired_effect_tracks_sensitivity() {
        let (ont, d, _bus, _irr, _bms) = setup();
        let policy = catalog::policy2_emergency_location(PolicyId(0), d.building, &ont);
        let strict = Iota::new(
            UserId(1),
            UserGroup::Faculty,
            SensitivityProfile::fundamentalist(&ont),
        );
        let relaxed = Iota::new(
            UserId(2),
            UserGroup::Faculty,
            SensitivityProfile::unconcerned(&ont),
        );
        assert_eq!(strict.desired_effect(&policy, &ont), Effect::Deny);
        assert_eq!(relaxed.desired_effect(&policy, &ont), Effect::Allow);
    }
}
