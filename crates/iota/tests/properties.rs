//! Property-based tests for the IoT Assistant.

use proptest::prelude::*;
use tippers_iota::{
    prediction_accuracy, NotificationThrottle, PermissionMatrix, PrivacyProfiles,
    SensitivityProfile,
};
use tippers_ontology::Ontology;
use tippers_policy::Timestamp;

proptest! {
    /// The throttle never admits more than its cap inside any window, for
    /// arbitrary (sorted) request times.
    #[test]
    fn throttle_cap_holds(
        cap in 1usize..6,
        window in 60i64..7200,
        mut times in proptest::collection::vec(0i64..100_000, 1..80),
    ) {
        times.sort_unstable();
        let mut throttle = NotificationThrottle::new(cap, window);
        let mut admitted: Vec<i64> = Vec::new();
        for &t in &times {
            if throttle.allow(Timestamp(t)) {
                admitted.push(t);
            }
        }
        // Check the cap over every admitted point's trailing window.
        for &t in &admitted {
            let in_window = admitted
                .iter()
                .filter(|&&u| u <= t && t - u < window)
                .count();
            prop_assert!(in_window <= cap, "window ending at {t} holds {in_window} > {cap}");
        }
    }

    /// Completion never alters a user's known answers and always yields a
    /// full-dimension matrix.
    #[test]
    fn completion_preserves_known(
        k in 1usize..4,
        dims in 2usize..16,
        seed in any::<u64>(),
    ) {
        let mut users = Vec::new();
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..20 {
            let mut m = PermissionMatrix::unknown(dims);
            for d in 0..dims {
                match next() % 3 {
                    0 => m.set(d, 1),
                    1 => m.set(d, -1),
                    _ => {}
                }
            }
            users.push(m);
        }
        let profiles = PrivacyProfiles::learn(&users, k, 10, seed);
        for u in &users {
            let completed = profiles.complete(u);
            prop_assert_eq!(completed.dims(), dims);
            for d in 0..dims {
                if u.get(d) != 0 {
                    prop_assert_eq!(completed.get(d), u.get(d));
                }
            }
        }
    }

    /// Accuracy is a proper fraction and equals 1 against itself.
    #[test]
    fn accuracy_bounds(values in proptest::collection::vec(-1i8..=1, 1..24)) {
        let m = PermissionMatrix::from_values(values);
        let acc_self = prediction_accuracy(&m, &m);
        if m.known() > 0 {
            prop_assert!((acc_self - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(acc_self, 0.0);
        }
        let blank = PermissionMatrix::unknown(m.dims());
        let acc_blank = prediction_accuracy(&blank, &m);
        prop_assert!((0.0..=1.0).contains(&acc_blank));
    }

    /// Sensitivity lookups are monotone under ancestor weights: raising a
    /// parent's weight never lowers a child's effective sensitivity.
    #[test]
    fn sensitivity_monotone(w1 in 0.0f64..1.0, w2 in 0.0f64..1.0) {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut low = SensitivityProfile::new();
        low.set(c.location, w1.min(w2));
        let mut high = SensitivityProfile::new();
        high.set(c.location, w1.max(w2));
        prop_assert!(
            high.sensitivity(&ont, c.location_fine) + 1e-12
                >= low.sensitivity(&ont, c.location_fine)
        );
        // Child weight and parent weight combine by max.
        let mut combined = SensitivityProfile::new();
        combined.set(c.location, w1);
        combined.set(c.location_fine, w2);
        prop_assert!(
            (combined.sensitivity(&ont, c.location_fine) - w1.max(w2)).abs() < 1e-9
        );
    }
}
