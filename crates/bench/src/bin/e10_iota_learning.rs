//! Experiment E10 — IoTA preference learning and notification burden
//! (§V.B, the Liu et al. mechanism).
//!
//! Part A: synthetic users drawn from hidden privacy archetypes answer a
//! growing number of permission questions; the profile learner predicts
//! their remaining answers. Reported: prediction accuracy vs. number of
//! labeled answers, against a majority-vote baseline.
//!
//! Part B: notification burden vs. coverage as the relevance threshold
//! sweeps — notify-everything maximizes coverage and burden; the relevance
//! model keeps coverage of *sensitive* practices while cutting burden.
//!
//! ```bash
//! cargo run --release -p tippers-bench --bin e10_iota_learning
//! ```

use tippers_bench::Lcg;
use tippers_iota::{
    prediction_accuracy, Iota, IotaConfig, PermissionMatrix, PrivacyProfiles, SensitivityProfile,
};
use tippers_irr::{DiscoveryBus, NetworkConfig};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, PolicyCodec, PolicyId, Timestamp, UserGroup, UserId};
use tippers_spatial::fixtures::dbh;

const DIMS: usize = 24;
const USERS: usize = 120;
const NOISE: f64 = 0.08;

/// Three hidden archetypes over (data × purpose) permission dimensions.
fn archetype(which: usize, dim: usize) -> i8 {
    match which {
        0 => 1, // unconcerned: allow all
        1 => {
            if dim.is_multiple_of(3) {
                -1 // pragmatist: denies identity-ish dims
            } else {
                1
            }
        }
        _ => -1, // fundamentalist: deny all
    }
}

fn make_user(which: usize, lcg: &mut Lcg) -> PermissionMatrix {
    let mut full = PermissionMatrix::unknown(DIMS);
    for d in 0..DIMS {
        let mut v = archetype(which, d);
        if lcg.unit() < NOISE {
            v = -v;
        }
        full.set(d, v);
    }
    full
}

fn mask(full: &PermissionMatrix, known: usize, lcg: &mut Lcg) -> PermissionMatrix {
    let mut m = PermissionMatrix::unknown(DIMS);
    let mut picked = 0usize;
    let mut guard = 0usize;
    while picked < known && guard < 10_000 {
        guard += 1;
        let d = lcg.below(DIMS);
        if m.get(d) == 0 {
            m.set(d, full.get(d));
            picked += 1;
        }
    }
    m
}

fn part_a() {
    println!("E10.A — profile-learning accuracy vs labeled answers");
    println!("({USERS} users, {DIMS} dimensions, 3 hidden archetypes, {NOISE:.0}% answer noise)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "labels", "k=3 profiles", "k=1 (global)", "majority"
    );
    let mut lcg = Lcg(0xE10);
    let truth: Vec<(usize, PermissionMatrix)> = (0..USERS)
        .map(|i| {
            let which = i % 3;
            (which, make_user(which, &mut lcg))
        })
        .collect();

    for &labels in &[2usize, 4, 6, 10, 16] {
        let observed: Vec<PermissionMatrix> = truth
            .iter()
            .map(|(_, full)| mask(full, labels, &mut lcg))
            .collect();
        let profiles = PrivacyProfiles::learn(&observed, 3, 25, 7);
        let global = PrivacyProfiles::learn(&observed, 1, 25, 7);

        let mut acc_k3 = 0.0;
        let mut acc_k1 = 0.0;
        let mut acc_major = 0.0;
        for ((_, full), partial) in truth.iter().zip(&observed) {
            acc_k3 += prediction_accuracy(&profiles.complete(partial), full);
            acc_k1 += prediction_accuracy(&global.complete(partial), full);
            // Majority baseline: predict the globally most common answer.
            let majority = PermissionMatrix::from_values(vec![1; DIMS]);
            acc_major += prediction_accuracy(&majority, full);
        }
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            labels,
            100.0 * acc_k3 / USERS as f64,
            100.0 * acc_k1 / USERS as f64,
            100.0 * acc_major / USERS as f64
        );
    }
    println!();
}

fn part_b() {
    println!("E10.B — notification burden vs coverage (relevance threshold sweep)");
    let ontology = Ontology::standard();
    let building = dbh();
    let codec = PolicyCodec::new(&ontology, &building.model);
    let mut bus = DiscoveryBus::new(NetworkConfig::default());
    let irr = bus.add_registry("DBH IRR", building.building);
    let now = Timestamp::at(0, 8, 0);

    // 40 advertised practices of varying sensitivity and purpose,
    // floor-scoped. Sensitive ground truth: everything except the
    // environmental (temperature) practices.
    let c = ontology.concepts();
    let practice_data = [
        c.wifi_association,
        c.image,
        c.occupancy,
        c.power_consumption,
        c.ambient_temperature,
    ];
    let practice_purposes = [
        c.marketing,
        c.analytics,
        c.navigation,
        c.logging,
        c.emergency_response,
    ];
    let mut sensitive: Vec<String> = Vec::new();
    let mut total_ads = 0usize;
    for i in 0..40 {
        let mut policy =
            catalog::policy2_emergency_location(PolicyId(i as u64), building.building, &ontology);
        policy.data = practice_data[i % practice_data.len()];
        policy.purpose = practice_purposes[(i / practice_data.len()) % practice_purposes.len()];
        policy.name = format!("practice-{i}");
        policy.space = building.floors[i % building.floors.len()];
        let doc = codec.to_document(&policy);
        bus.registry_mut(irr)
            .unwrap()
            .publish(doc, policy.space, now, 86_400)
            .unwrap();
        total_ads += 1;
        if i % practice_data.len() != 4 {
            sensitive.push(policy.name.clone());
        }
    }
    println!(
        "({total_ads} advertised practices, {} privacy-relevant)\n",
        sensitive.len()
    );
    println!(
        "{:<12} {:>10} {:>14} {:>16} {:>10}",
        "threshold", "throttle", "notifications", "sensitive-covered", "burden"
    );
    for &(threshold, throttled) in &[
        (0.0f64, false),
        (0.1, false),
        (0.25, false),
        (0.4, false),
        (0.6, false),
        (0.8, false),
        (0.25, true),
    ] {
        let throttle = if throttled {
            tippers_iota::NotificationThrottle::default_hourly()
        } else {
            tippers_iota::NotificationThrottle::new(10_000, 3600)
        };
        let mut iota = Iota::with_config(
            UserId(1),
            UserGroup::GradStudent,
            SensitivityProfile::fundamentalist(&ontology),
            IotaConfig {
                relevance_threshold: threshold,
                throttle,
                ..IotaConfig::default()
            },
        );
        // Walk all six floors, one poll per floor.
        let mut fired: Vec<String> = Vec::new();
        for (i, &floor) in building.floors.iter().enumerate() {
            let office = building
                .offices
                .iter()
                .copied()
                .find(|&o| building.model.floor_of(o) == Some(floor))
                .expect("office per floor");
            let t = Timestamp(now.seconds() + (i as i64) * 1800);
            let ads = iota.poll(&bus, &building.model, office, t);
            fired.extend(iota.review(&ads, &ontology, t).into_iter().map(|n| n.title));
        }
        let covered = fired.iter().filter(|t| sensitive.contains(t)).count();
        println!(
            "{:<12.2} {:>10} {:>14} {:>15.1}% {:>9.1}%",
            threshold,
            if throttled { "3/hour" } else { "off" },
            fired.len(),
            100.0 * covered as f64 / sensitive.len() as f64,
            100.0 * fired.len() as f64 / total_ads as f64,
        );
    }
    println!("\nExpected shape: threshold 0 notifies about everything (max burden);");
    println!("moderate thresholds keep sensitive coverage while cutting burden;");
    println!("extreme thresholds go quiet; the fatigue throttle caps burden at the");
    println!("cost of missed relevant practices (IoTA reports them as suppressed).");
}

fn main() {
    part_a();
    part_b();
}
