//! Experiment E9 — the privacy/utility trade-off of granularity
//! enforcement (§II.A threats × §V.C enforcement *hows*).
//!
//! A 5-day simulated trace. Occupants' location sharing is set to one of
//! Figure 4's options (fine / coarse / none); an adversary then consumes
//! the *released* data — everything the enforcement engine lets a location
//! consumer see — and runs the §II.A inference attack on it. Reported per
//! setting:
//!
//! * attack surface — room/floor location accuracy, role-classification
//!   accuracy, identity links recovered from released data;
//! * service utility — Concierge direction success rate and
//!   correct-destination rate.
//!
//! ```bash
//! cargo run --release -p tippers-bench --bin e9_privacy_utility
//! ```

use std::collections::HashMap;

use tippers::{DataRequest, ReleasedValue, SubjectSelector, Tippers, TippersConfig};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, PolicyId, PreferenceId, Timestamp};
use tippers_sensors::attack::{Attacker, WifiLogRow};
use tippers_sensors::{
    BuildingSimulator, DeploymentConfig, DeviceId, MacAddress, Population, SimulatorConfig,
};
use tippers_services::{register_service, Concierge};
use tippers_spatial::{Granularity, RoomUse, SpaceId};

#[derive(Debug, Clone, Copy)]
enum Setting {
    Fine,
    Coarse,
    None,
}

struct Row {
    setting: &'static str,
    loc_room: f64,
    loc_floor: f64,
    role: f64,
    id_links: usize,
    dir_success: f64,
    dest_correct: f64,
}

fn run(name: &'static str, setting: Setting) -> Row {
    let ontology = Ontology::standard();
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed: 31,
            population: Population {
                staff: 10,
                faculty: 10,
                grads: 15,
                undergrads: 15,
                visitors: 0,
            },
            tick_secs: 900,
            deployment: DeploymentConfig {
                cameras: 0,
                wifi_aps: 240,
                beacons: 0,
                power_meters: 0,
                motion_everywhere: false,
                hvac_per_floor: false,
                badge_readers: false,
            },
            identify_probability: 0.0,
        },
        &ontology,
    );
    let building = sim.dbh().clone();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());
    register_service(&mut bms, &Concierge::new());
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        &ontology,
    ));

    let occupants = sim.occupants().to_vec();
    for o in &occupants {
        match setting {
            Setting::Fine => {}
            Setting::Coarse => {
                bms.submit_preference(
                    catalog::preference_coarse_location(
                        PreferenceId(0),
                        o.user,
                        Granularity::Floor,
                        &ontology,
                    ),
                    Timestamp::at(0, 0, 0),
                );
            }
            Setting::None => {
                bms.submit_preference(
                    catalog::preference2_no_location(PreferenceId(0), o.user, &ontology),
                    Timestamp::at(0, 0, 0),
                );
            }
        }
    }
    bms.sync_capture_settings(&mut sim);

    let trace = sim.run_days(5);
    bms.ingest(&trace.observations);

    // --- the adversary's view: everything a location consumer is given --
    // Rebuild a pseudo WiFi log from *released* records: each released
    // space acts as its own "AP", so the standard attacker runs unchanged
    // on exactly the data that crossed the enforcement boundary.
    let c = ontology.concepts().clone();
    let mut released_log: Vec<WifiLogRow> = Vec::new();
    let mut pseudo_aps: HashMap<DeviceId, SpaceId> = HashMap::new();
    for o in &occupants {
        let request = DataRequest {
            service: catalog::services::concierge(),
            purpose: c.navigation,
            data: c.location_room,
            subjects: SubjectSelector::One(o.user),
            from: Timestamp::at(0, 0, 0),
            to: Timestamp::at(5, 0, 0),
            requester_space: None,
            priority: Default::default(),
            deadline: None,
        };
        let response = bms.handle_request(&request, Timestamp::at(5, 0, 0));
        for result in response.results {
            for record in result.records {
                if let ReleasedValue::Location(loc) = record.value {
                    if let Some(space) = loc.space {
                        let ap = DeviceId(space.index() as u32);
                        pseudo_aps.insert(ap, space);
                        released_log.push(WifiLogRow {
                            time: record.time,
                            mac: o.mac,
                            ap,
                        });
                    }
                }
            }
        }
    }
    let model = building.model.clone();
    let attacker = Attacker::new(released_log, pseudo_aps, &model);
    let mac_of: HashMap<_, MacAddress> = occupants.iter().map(|o| (o.user, o.mac)).collect();

    let mut room_hits = 0usize;
    let mut floor_hits = 0usize;
    let mut samples = 0usize;
    for g in trace.ground_truth.iter().step_by(53) {
        samples += 1;
        if let Some(guess) = attacker.locate(mac_of[&g.user], g.time, 1800) {
            if guess == g.space {
                room_hits += 1;
            }
            let guess_floor = model
                .floor_of(guess)
                .or(Some(guess))
                .filter(|&s| matches!(model.space(s).kind(), tippers_spatial::SpaceKind::Floor));
            if guess_floor.is_some() && guess_floor == model.floor_of(g.space) {
                floor_hits += 1;
            }
        }
    }
    let mut role_hits = 0usize;
    let mut role_total = 0usize;
    for o in &occupants {
        if let Some(guess) = attacker.infer_role(o.mac) {
            role_total += 1;
            if guess.group == o.group {
                role_hits += 1;
            }
        }
    }
    let id_links = attacker.link_identities(sim.teaching_schedule(), 2).len();

    // --- utility: Concierge directions ----------------------------------
    let concierge = Concierge::new();
    let noon = Timestamp::at(4, 12, 0);
    let mut served = 0usize;
    let mut asked = 0usize;
    let mut dest_correct = 0usize;
    for o in &occupants {
        let Some(truth) = sim.position_of(o.user, noon) else {
            continue;
        };
        asked += 1;
        if let Ok(d) = concierge.nearest(&mut bms, o.user, RoomUse::Kitchen, noon) {
            served += 1;
            if let Some((ideal, _)) = building.model.nearest(truth, &building.kitchens) {
                if d.destination == ideal {
                    dest_correct += 1;
                }
            }
        }
    }

    Row {
        setting: name,
        loc_room: room_hits as f64 / samples.max(1) as f64,
        loc_floor: floor_hits as f64 / samples.max(1) as f64,
        role: role_hits as f64 / role_total.max(1) as f64,
        id_links,
        dir_success: served as f64 / asked.max(1) as f64,
        dest_correct: dest_correct as f64 / served.max(1) as f64,
    }
}

fn main() {
    println!("E9 — privacy/utility trade-off of Figure 4's location settings");
    println!("(5 simulated days, 50 occupants; the attacker sees only RELEASED data)\n");
    println!(
        "{:<10} {:>10} {:>11} {:>9} {:>9} {:>12} {:>13}",
        "setting", "loc(room)", "loc(floor)", "role", "id-links", "dir-success", "dest-correct"
    );
    for (name, setting) in [
        ("fine", Setting::Fine),
        ("coarse", Setting::Coarse),
        ("none", Setting::None),
    ] {
        let r = run(name, setting);
        println!(
            "{:<10} {:>9.1}% {:>10.1}% {:>8.1}% {:>9} {:>11.1}% {:>12.1}%",
            r.setting,
            r.loc_room * 100.0,
            r.loc_floor * 100.0,
            r.role * 100.0,
            r.id_links,
            r.dir_success * 100.0,
            r.dest_correct * 100.0
        );
    }
    println!("\nExpected shape: room-level attack accuracy collapses fine -> coarse");
    println!("-> none, and identity linkage dies at coarse (no classroom-level");
    println!("evidence); role inference partially SURVIVES coarse granularity");
    println!("(presence schedules leak through floor-level data) — the paper's");
    println!("point that granularity choices must consider inference (SIV.B.2).");
    println!("The Concierge keeps serving coarse users with mostly-correct");
    println!("destinations and cannot serve opted-out users at all.");
}
