//! Shared workload generation for the benchmark harness.
//!
//! Every experiment in EXPERIMENTS.md draws its policies, preferences and
//! flows from here, so benchmark and table binaries agree on workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;

use tippers::{FaultPlan, Priority, Tippers, TippersConfig};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{
    ActionSet, BuildingPolicy, Condition, DataAction, Effect, IsoDuration, Modality, PolicyId,
    PreferenceId, PreferenceScope, ServiceId, TimeWindow, Timestamp, UserGroup, UserId,
    UserPreference,
};
use tippers_sensors::{BuildingSimulator, Observation, Occupant, Population, SimulatorConfig};
use tippers_spatial::fixtures::Dbh;
use tippers_spatial::{Granularity, SpaceId};

/// A deterministic 64-bit LCG — cheap, seedable, and independent of the
/// `rand` version, so workloads are stable across toolchains.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw value.
    #[allow(clippy::should_implement_trait)] // not an iterator: never ends
    pub fn next(&mut self) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.next() % n.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// The data categories building policies realistically govern.
pub fn policy_categories(ontology: &Ontology) -> Vec<ConceptId> {
    let c = ontology.concepts();
    vec![
        c.wifi_association,
        c.bluetooth_sighting,
        c.occupancy,
        c.image,
        c.power_consumption,
        c.ambient_temperature,
        c.person_identity,
        c.location_room,
        c.meeting_details,
        c.event_details,
    ]
}

/// The purposes building policies realistically declare.
pub fn policy_purposes(ontology: &Ontology) -> Vec<ConceptId> {
    let c = ontology.concepts();
    vec![
        c.emergency_response,
        c.surveillance,
        c.access_control,
        c.comfort,
        c.energy_management,
        c.logging,
        c.navigation,
        c.scheduling,
        c.delivery,
        c.analytics,
    ]
}

/// Service ids used by generated workloads.
pub fn service_pool(n: usize) -> Vec<ServiceId> {
    (0..n).map(|i| ServiceId::new(format!("svc-{i}"))).collect()
}

/// Generates `n` building policies over a DBH model: ~10% required, ~60%
/// opt-out, ~30% opt-in; spaces drawn from the whole hierarchy; a third
/// carry time conditions; service policies reference the pool.
pub fn gen_policies(
    n: usize,
    ontology: &Ontology,
    dbh: &Dbh,
    services: &[ServiceId],
    seed: u64,
) -> Vec<BuildingPolicy> {
    let categories = policy_categories(ontology);
    let purposes = policy_purposes(ontology);
    let spaces: Vec<SpaceId> = std::iter::once(dbh.building)
        .chain(dbh.floors.iter().copied())
        .chain(dbh.offices.iter().copied())
        .chain(dbh.meeting_rooms.iter().copied())
        .collect();
    let mut lcg = Lcg(seed);
    (0..n)
        .map(|i| {
            let mut p = BuildingPolicy::new(
                PolicyId(i as u64),
                format!("generated-policy-{i}"),
                spaces[lcg.below(spaces.len())],
                categories[lcg.below(categories.len())],
                purposes[lcg.below(purposes.len())],
            );
            p.modality = match lcg.below(10) {
                0 => Modality::Required,
                1..=6 => Modality::OptOut,
                _ => Modality::OptIn,
            };
            p.actions = if lcg.below(2) == 0 {
                ActionSet::ALL
            } else {
                ActionSet::of(&[DataAction::Collect, DataAction::Store, DataAction::Share])
            };
            if lcg.below(3) == 0 {
                p.condition = Condition::during(if lcg.below(2) == 0 {
                    TimeWindow::business_hours()
                } else {
                    TimeWindow::after_hours()
                });
            }
            if !services.is_empty() && lcg.below(3) == 0 {
                p.service = Some(services[lcg.below(services.len())].clone());
            }
            p
        })
        .collect()
}

/// Generates `per_user` preferences for each of `users` users, mirroring
/// the paper's examples: blanket denials, per-service grants, granularity
/// caps and time-conditioned rules.
pub fn gen_preferences(
    users: usize,
    per_user: usize,
    ontology: &Ontology,
    dbh: &Dbh,
    services: &[ServiceId],
    seed: u64,
) -> Vec<UserPreference> {
    let categories = policy_categories(ontology);
    let c = ontology.concepts();
    let mut lcg = Lcg(seed ^ 0x5EED);
    let mut out = Vec::with_capacity(users * per_user);
    let mut id = 0u64;
    for u in 0..users {
        for _ in 0..per_user {
            let effect = match lcg.below(10) {
                0..=3 => Effect::Deny,
                4..=5 => Effect::Degrade(Granularity::ALL[1 + lcg.below(4)]),
                6 => Effect::Noise { sigma: 5.0 },
                _ => Effect::Allow,
            };
            let scope = PreferenceScope {
                data: if lcg.below(5) == 0 {
                    None
                } else if lcg.below(3) == 0 {
                    Some(c.location)
                } else {
                    Some(categories[lcg.below(categories.len())])
                },
                purpose: None,
                service: if !services.is_empty() && lcg.below(3) == 0 {
                    Some(services[lcg.below(services.len())].clone())
                } else {
                    None
                },
                space: if lcg.below(2) == 0 {
                    Some(dbh.offices[lcg.below(dbh.offices.len())])
                } else {
                    None
                },
                condition: if lcg.below(4) == 0 {
                    Condition::during(TimeWindow::after_hours())
                } else {
                    Condition::always()
                },
            };
            out.push(
                UserPreference::new(PreferenceId(id), UserId(u as u64), scope, effect)
                    .with_priority(lcg.below(3) as u8),
            );
            id += 1;
        }
    }
    out
}

/// A random share-stage flow for enforcement benchmarks.
pub fn gen_flow(
    ontology: &Ontology,
    dbh: &Dbh,
    services: &[ServiceId],
    users: usize,
    lcg: &mut Lcg,
) -> tippers::RequestFlow {
    let categories = policy_categories(ontology);
    let purposes = policy_purposes(ontology);
    tippers::RequestFlow {
        subject: UserId(lcg.below(users) as u64),
        subject_group: UserGroup::ALL[lcg.below(5)],
        data: categories[lcg.below(categories.len())],
        purpose: purposes[lcg.below(purposes.len())],
        service: if services.is_empty() {
            None
        } else {
            Some(services[lcg.below(services.len())].clone())
        },
        action: DataAction::Share,
        time: Timestamp::at(lcg.below(7) as i64, lcg.below(24) as u32, 0),
        subject_space: Some(dbh.offices[lcg.below(dbh.offices.len())]),
        requester_space: None,
        room_occupied: None,
    }
}

/// Builds a registered, populated BMS over pre-generated policies and
/// preferences — the shared fixture of the E12 and E13 benches (one
/// definition, so both experiments measure the same system).
pub fn build_bms(
    ontology: &Ontology,
    dbh: &Dbh,
    policies: &[BuildingPolicy],
    prefs: &[UserPreference],
    users: usize,
    plan: FaultPlan,
) -> Tippers {
    let mut bms = Tippers::new(
        ontology.clone(),
        dbh.model.clone(),
        TippersConfig {
            fault_plan: plan,
            ..TippersConfig::default()
        },
    );
    let occupants: Vec<Occupant> = (0..users as u64)
        .map(|u| Occupant::new(UserId(u), format!("user-{u}"), UserGroup::GradStudent))
        .collect();
    bms.register_occupants(&occupants);
    for p in policies {
        bms.add_policy(p.clone());
    }
    for p in prefs {
        bms.submit_preference(p.clone(), Timestamp::at(0, 7, 0));
    }
    bms
}

/// One durable BMS mutation in a generated crash-recovery workload
/// (the units the recovery fuzz harness crashes between).
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Publish a building policy.
    AddPolicy(BuildingPolicy),
    /// Retract a policy by id (may be a no-op if already retracted).
    RemovePolicy(PolicyId),
    /// Submit a user preference at a timestamp.
    SubmitPreference(UserPreference, Timestamp),
    /// Retroactively enforce a previously submitted preference.
    Retroactive(PreferenceId),
    /// Ingest a batch of captured observations.
    Ingest(Vec<Observation>),
    /// Run a retention sweep at a timestamp.
    Gc(Timestamp),
    /// Write a full-state checkpoint and compact the log.
    Checkpoint,
}

/// Generates a seeded, deterministic mutation workload over the DBH
/// building: simulator-driven ingest batches interleaved with policy
/// publishes/retractions, preference submissions, retroactive purges,
/// retention sweeps and checkpoints. Returns the building fixture, its
/// occupants (administrative state the caller re-registers after every
/// recovery) and the mutation list.
pub fn gen_mutations(
    n: usize,
    ontology: &Ontology,
    seed: u64,
) -> (Dbh, Vec<Occupant>, Vec<Mutation>) {
    let mut sim = BuildingSimulator::new(
        SimulatorConfig {
            seed,
            population: Population {
                staff: 2,
                faculty: 2,
                grads: 3,
                undergrads: 3,
                visitors: 0,
            },
            tick_secs: 300,
            ..SimulatorConfig::default()
        },
        ontology,
    );
    let dbh = sim.dbh().clone();
    let occupants = sim.occupants().to_vec();
    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 20, 0)).observations;

    let services = service_pool(4);
    let mut policy_pool = gen_policies(24, ontology, &dbh, &services, seed ^ 0xB0);
    // A third of the generated policies carry a short retention window so
    // retention sweeps mid-workload actually delete rows.
    for (i, p) in policy_pool.iter_mut().enumerate() {
        if i % 3 == 0 {
            p.retention = Some(IsoDuration::hours(1 + (i % 4) as u32));
        }
    }
    let pref_pool = gen_preferences(occupants.len(), 6, ontology, &dbh, &services, seed ^ 0x9E0);

    let mut lcg = Lcg(seed ^ 0xFA11);
    let mut mutations = Vec::with_capacity(n);
    // Storage authorizers go first so ingest stores rows from the start:
    // the catalog pair, plus a building-wide telemetry baseline covering
    // the subjectless environmental feeds (power, occupancy, temperature)
    // that dominate the simulator trace. Its two-hour retention gives the
    // workload's gc sweeps real rows to reap.
    let c = ontology.concepts();
    let baseline = BuildingPolicy::new(
        PolicyId(0),
        "Building telemetry baseline",
        dbh.building,
        c.data,
        c.logging,
    )
    .with_actions(ActionSet::of(&[DataAction::Collect, DataAction::Store]))
    .with_retention(IsoDuration::hours(2))
    .with_modality(Modality::OptOut);
    mutations.push(Mutation::AddPolicy(baseline));
    mutations.push(Mutation::AddPolicy(
        tippers_policy::catalog::policy1_thermostat(PolicyId(0), dbh.building, ontology),
    ));
    mutations.push(Mutation::AddPolicy(
        tippers_policy::catalog::policy2_emergency_location(PolicyId(0), dbh.building, ontology),
    ));
    let mut added = 3usize;
    let mut submitted = 0usize;
    let mut next_policy = 0usize;
    let mut next_pref = 0usize;
    let mut next_obs = 0usize;
    let mut clock = Timestamp::at(0, 8, 0);
    while mutations.len() < n {
        clock = clock + 60 + lcg.below(540) as i64;
        let roll = lcg.below(100);
        let mutation = if roll < 40 {
            let len = 3 + lcg.below(9);
            let batch: Vec<Observation> = (0..len)
                .map(|i| {
                    let mut obs = trace[next_obs % trace.len()].clone();
                    next_obs += 1;
                    // Rebase onto the workload clock so retention windows
                    // straddle the gc sweeps instead of expiring wholesale.
                    obs.timestamp = clock + i as i64;
                    obs
                })
                .collect();
            Mutation::Ingest(batch)
        } else if roll < 60 {
            let pref = pref_pool[next_pref % pref_pool.len()].clone();
            next_pref += 1;
            submitted += 1;
            Mutation::SubmitPreference(pref, clock)
        } else if roll < 70 {
            let policy = policy_pool[next_policy % policy_pool.len()].clone();
            next_policy += 1;
            added += 1;
            Mutation::AddPolicy(policy)
        } else if roll < 77 {
            // Retract only generated policies: the three seed authorizers
            // stay in force so ingest keeps storing rows on every seed.
            Mutation::RemovePolicy(PolicyId((3 + lcg.below(added - 3)) as u64))
        } else if roll < 85 && submitted > 0 {
            Mutation::Retroactive(PreferenceId(lcg.below(submitted) as u64))
        } else if roll < 93 {
            Mutation::Gc(clock)
        } else {
            Mutation::Checkpoint
        };
        mutations.push(mutation);
    }
    (dbh, occupants, mutations)
}

/// Applies one workload mutation to a BMS. Checkpoint failures are
/// tolerated (the log's older segments stay authoritative); everything
/// else is infallible by construction.
pub fn apply_mutation(bms: &mut Tippers, mutation: &Mutation) {
    match mutation {
        Mutation::AddPolicy(p) => {
            bms.add_policy(p.clone());
        }
        Mutation::RemovePolicy(id) => {
            bms.remove_policy(*id);
        }
        Mutation::SubmitPreference(p, now) => {
            bms.submit_preference(p.clone(), *now);
        }
        Mutation::Retroactive(id) => {
            bms.apply_retroactively(*id);
        }
        Mutation::Ingest(observations) => {
            bms.ingest(observations);
        }
        Mutation::Gc(now) => {
            bms.gc(*now);
        }
        Mutation::Checkpoint => {
            let _ = bms.checkpoint();
        }
    }
}

/// Shape of an open-loop request storm (experiment E15): a Poisson
/// baseline with periodic bursts, a small Emergency share that must
/// survive any overload, and a Batch share that is first to be shed.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Workload seed.
    pub seed: u64,
    /// Storm length, virtual seconds.
    pub duration_secs: i64,
    /// Baseline Poisson arrival rate, requests per virtual second.
    pub rate_per_sec: f64,
    /// Arrival-rate multiplier inside bursts.
    pub burst_multiplier: f64,
    /// Burst period, seconds (a burst starts every this many seconds).
    pub burst_every_secs: i64,
    /// Burst length, seconds.
    pub burst_len_secs: i64,
    /// Fraction of arrivals classed Emergency.
    pub emergency_share: f64,
    /// Fraction of arrivals classed Batch (the rest are Interactive).
    pub batch_share: f64,
    /// Deadline horizon attached to non-Emergency arrivals, seconds.
    pub deadline_secs: i64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            seed: 7,
            duration_secs: 120,
            rate_per_sec: 8.0,
            burst_multiplier: 6.0,
            burst_every_secs: 30,
            burst_len_secs: 10,
            emergency_share: 0.05,
            batch_share: 0.3,
            deadline_secs: 30,
        }
    }
}

/// One arrival in a storm trace.
#[derive(Debug, Clone)]
pub struct StormArrival {
    /// Virtual arrival time.
    pub at: Timestamp,
    /// The request as the service would issue it (priority and deadline
    /// already attached).
    pub request: tippers::DataRequest,
}

/// Generates a seeded open-loop storm trace starting at `start`: bursty
/// Poisson arrivals over `users` subjects, classed
/// Emergency/Interactive/Batch per the configured shares. Open loop means
/// arrivals do not wait for responses — exactly the load shape that
/// overwhelms an unprotected enforcement point.
pub fn gen_storm(
    config: StormConfig,
    ontology: &Ontology,
    users: usize,
    start: Timestamp,
) -> Vec<StormArrival> {
    let c = ontology.concepts();
    let services = service_pool(3);
    let mut lcg = Lcg(config.seed ^ 0x5708);
    let mut arrivals = Vec::new();
    let duration_ms = config.duration_secs.max(1) * 1000;
    let mut t_ms = 0i64;
    while t_ms < duration_ms {
        let in_burst = config.burst_every_secs > 0
            && (t_ms / 1000) % config.burst_every_secs < config.burst_len_secs;
        let rate = if in_burst {
            config.rate_per_sec * config.burst_multiplier
        } else {
            config.rate_per_sec
        };
        // Exponential inter-arrival time for a Poisson process, in ms.
        let dt_ms = (-lcg.unit().max(1e-6).ln() / rate.max(1e-6) * 1000.0) as i64;
        t_ms += dt_ms.max(1);
        if t_ms >= duration_ms {
            break;
        }
        let at = start + t_ms / 1000;
        let class = lcg.unit();
        let (priority, purpose, deadline) = if class < config.emergency_share {
            (Priority::Emergency, c.emergency_response, None)
        } else if class < config.emergency_share + config.batch_share {
            (
                Priority::Batch,
                c.analytics,
                Some(at + config.deadline_secs),
            )
        } else {
            (
                Priority::Interactive,
                [c.comfort, c.scheduling, c.navigation][lcg.below(3)],
                Some(at + config.deadline_secs),
            )
        };
        arrivals.push(StormArrival {
            at,
            request: tippers::DataRequest {
                service: services[lcg.below(services.len())].clone(),
                purpose,
                data: if lcg.below(2) == 0 {
                    c.location_room
                } else {
                    c.occupancy
                },
                subjects: tippers::SubjectSelector::One(UserId(lcg.below(users.max(1)) as u64)),
                from: Timestamp(at.seconds() - 3600),
                to: Timestamp(at.seconds() + 1),
                requester_space: None,
                priority,
                deadline,
            },
        });
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn generators_are_deterministic() {
        let ont = Ontology::standard();
        let d = dbh();
        let services = service_pool(5);
        let a = gen_policies(50, &ont, &d, &services, 9);
        let b = gen_policies(50, &ont, &d, &services, 9);
        assert_eq!(a, b);
        let pa = gen_preferences(10, 3, &ont, &d, &services, 9);
        let pb = gen_preferences(10, 3, &ont, &d, &services, 9);
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 30);
    }

    #[test]
    fn mutation_workload_is_deterministic_and_mixed() {
        let ont = Ontology::standard();
        let (_, occupants, a) = gen_mutations(210, &ont, 7);
        let (_, _, b) = gen_mutations(210, &ont, 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.len() >= 210);
        assert!(!occupants.is_empty());
        let count = |f: fn(&Mutation) -> bool| a.iter().filter(|m| f(m)).count();
        assert!(count(|m| matches!(m, Mutation::Ingest(_))) > 20);
        assert!(count(|m| matches!(m, Mutation::SubmitPreference(..))) > 10);
        assert!(count(|m| matches!(m, Mutation::Checkpoint)) > 2);
        assert!(count(|m| matches!(m, Mutation::Gc(_))) > 2);
        assert!(count(|m| matches!(m, Mutation::RemovePolicy(_))) > 2);
        assert!(count(|m| matches!(m, Mutation::Retroactive(_))) > 2);
    }

    #[test]
    fn storm_is_deterministic_bursty_and_classed() {
        let ont = Ontology::standard();
        let start = Timestamp::at(0, 9, 0);
        let a = gen_storm(StormConfig::default(), &ont, 10, start);
        let b = gen_storm(StormConfig::default(), &ont, 10, start);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Roughly rate × duration arrivals, inflated by bursts.
        assert!(a.len() > 900, "storm too small: {}", a.len());
        let of = |p: Priority| a.iter().filter(|s| s.request.priority == p).count();
        assert!(of(Priority::Emergency) > 10);
        assert!(of(Priority::Batch) > 100);
        assert!(of(Priority::Interactive) > 300);
        // Bursts concentrate arrivals: the busiest second beats the mean.
        let mut per_sec = std::collections::HashMap::new();
        for s in &a {
            *per_sec.entry(s.at.seconds()).or_insert(0usize) += 1;
        }
        let max = per_sec.values().copied().max().unwrap_or(0);
        let mean = a.len() / 120;
        assert!(max > mean * 2, "no burst visible: max {max}, mean {mean}");
        // Every non-Emergency arrival carries a deadline.
        assert!(a
            .iter()
            .all(|s| s.request.priority == Priority::Emergency || s.request.deadline.is_some()));
    }

    #[test]
    fn policy_mix_contains_all_modalities() {
        let ont = Ontology::standard();
        let d = dbh();
        let services = service_pool(5);
        let policies = gen_policies(200, &ont, &d, &services, 4);
        let required = policies.iter().filter(|p| p.is_required()).count();
        assert!(
            required > 5 && required < 60,
            "required share: {required}/200"
        );
    }
}
