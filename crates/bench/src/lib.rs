//! Shared workload generation for the benchmark harness.
//!
//! Every experiment in EXPERIMENTS.md draws its policies, preferences and
//! flows from here, so benchmark and table binaries agree on workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{
    ActionSet, BuildingPolicy, Condition, DataAction, Effect, Modality, PolicyId, PreferenceId,
    PreferenceScope, ServiceId, TimeWindow, Timestamp, UserGroup, UserId, UserPreference,
};
use tippers_spatial::fixtures::Dbh;
use tippers_spatial::{Granularity, SpaceId};

/// A deterministic 64-bit LCG — cheap, seedable, and independent of the
/// `rand` version, so workloads are stable across toolchains.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw value.
    #[allow(clippy::should_implement_trait)] // not an iterator: never ends
    pub fn next(&mut self) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.next() % n.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// The data categories building policies realistically govern.
pub fn policy_categories(ontology: &Ontology) -> Vec<ConceptId> {
    let c = ontology.concepts();
    vec![
        c.wifi_association,
        c.bluetooth_sighting,
        c.occupancy,
        c.image,
        c.power_consumption,
        c.ambient_temperature,
        c.person_identity,
        c.location_room,
        c.meeting_details,
        c.event_details,
    ]
}

/// The purposes building policies realistically declare.
pub fn policy_purposes(ontology: &Ontology) -> Vec<ConceptId> {
    let c = ontology.concepts();
    vec![
        c.emergency_response,
        c.surveillance,
        c.access_control,
        c.comfort,
        c.energy_management,
        c.logging,
        c.navigation,
        c.scheduling,
        c.delivery,
        c.analytics,
    ]
}

/// Service ids used by generated workloads.
pub fn service_pool(n: usize) -> Vec<ServiceId> {
    (0..n).map(|i| ServiceId::new(format!("svc-{i}"))).collect()
}

/// Generates `n` building policies over a DBH model: ~10% required, ~60%
/// opt-out, ~30% opt-in; spaces drawn from the whole hierarchy; a third
/// carry time conditions; service policies reference the pool.
pub fn gen_policies(
    n: usize,
    ontology: &Ontology,
    dbh: &Dbh,
    services: &[ServiceId],
    seed: u64,
) -> Vec<BuildingPolicy> {
    let categories = policy_categories(ontology);
    let purposes = policy_purposes(ontology);
    let spaces: Vec<SpaceId> = std::iter::once(dbh.building)
        .chain(dbh.floors.iter().copied())
        .chain(dbh.offices.iter().copied())
        .chain(dbh.meeting_rooms.iter().copied())
        .collect();
    let mut lcg = Lcg(seed);
    (0..n)
        .map(|i| {
            let mut p = BuildingPolicy::new(
                PolicyId(i as u64),
                format!("generated-policy-{i}"),
                spaces[lcg.below(spaces.len())],
                categories[lcg.below(categories.len())],
                purposes[lcg.below(purposes.len())],
            );
            p.modality = match lcg.below(10) {
                0 => Modality::Required,
                1..=6 => Modality::OptOut,
                _ => Modality::OptIn,
            };
            p.actions = if lcg.below(2) == 0 {
                ActionSet::ALL
            } else {
                ActionSet::of(&[DataAction::Collect, DataAction::Store, DataAction::Share])
            };
            if lcg.below(3) == 0 {
                p.condition = Condition::during(if lcg.below(2) == 0 {
                    TimeWindow::business_hours()
                } else {
                    TimeWindow::after_hours()
                });
            }
            if !services.is_empty() && lcg.below(3) == 0 {
                p.service = Some(services[lcg.below(services.len())].clone());
            }
            p
        })
        .collect()
}

/// Generates `per_user` preferences for each of `users` users, mirroring
/// the paper's examples: blanket denials, per-service grants, granularity
/// caps and time-conditioned rules.
pub fn gen_preferences(
    users: usize,
    per_user: usize,
    ontology: &Ontology,
    dbh: &Dbh,
    services: &[ServiceId],
    seed: u64,
) -> Vec<UserPreference> {
    let categories = policy_categories(ontology);
    let c = ontology.concepts();
    let mut lcg = Lcg(seed ^ 0x5EED);
    let mut out = Vec::with_capacity(users * per_user);
    let mut id = 0u64;
    for u in 0..users {
        for _ in 0..per_user {
            let effect = match lcg.below(10) {
                0..=3 => Effect::Deny,
                4..=5 => Effect::Degrade(Granularity::ALL[1 + lcg.below(4)]),
                6 => Effect::Noise { sigma: 5.0 },
                _ => Effect::Allow,
            };
            let scope = PreferenceScope {
                data: if lcg.below(5) == 0 {
                    None
                } else if lcg.below(3) == 0 {
                    Some(c.location)
                } else {
                    Some(categories[lcg.below(categories.len())])
                },
                purpose: None,
                service: if !services.is_empty() && lcg.below(3) == 0 {
                    Some(services[lcg.below(services.len())].clone())
                } else {
                    None
                },
                space: if lcg.below(2) == 0 {
                    Some(dbh.offices[lcg.below(dbh.offices.len())])
                } else {
                    None
                },
                condition: if lcg.below(4) == 0 {
                    Condition::during(TimeWindow::after_hours())
                } else {
                    Condition::always()
                },
            };
            out.push(
                UserPreference::new(PreferenceId(id), UserId(u as u64), scope, effect)
                    .with_priority(lcg.below(3) as u8),
            );
            id += 1;
        }
    }
    out
}

/// A random share-stage flow for enforcement benchmarks.
pub fn gen_flow(
    ontology: &Ontology,
    dbh: &Dbh,
    services: &[ServiceId],
    users: usize,
    lcg: &mut Lcg,
) -> tippers::RequestFlow {
    let categories = policy_categories(ontology);
    let purposes = policy_purposes(ontology);
    tippers::RequestFlow {
        subject: UserId(lcg.below(users) as u64),
        subject_group: UserGroup::ALL[lcg.below(5)],
        data: categories[lcg.below(categories.len())],
        purpose: purposes[lcg.below(purposes.len())],
        service: if services.is_empty() {
            None
        } else {
            Some(services[lcg.below(services.len())].clone())
        },
        action: DataAction::Share,
        time: Timestamp::at(lcg.below(7) as i64, lcg.below(24) as u32, 0),
        subject_space: Some(dbh.offices[lcg.below(dbh.offices.len())]),
        requester_space: None,
        room_occupied: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn generators_are_deterministic() {
        let ont = Ontology::standard();
        let d = dbh();
        let services = service_pool(5);
        let a = gen_policies(50, &ont, &d, &services, 9);
        let b = gen_policies(50, &ont, &d, &services, 9);
        assert_eq!(a, b);
        let pa = gen_preferences(10, 3, &ont, &d, &services, 9);
        let pb = gen_preferences(10, 3, &ont, &d, &services, 9);
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 30);
    }

    #[test]
    fn policy_mix_contains_all_modalities() {
        let ont = Ontology::standard();
        let d = dbh();
        let services = service_pool(5);
        let policies = gen_policies(200, &ont, &d, &services, 4);
        let required = policies.iter().filter(|p| p.is_required()).count();
        assert!(
            required > 5 && required < 60,
            "required share: {required}/200"
        );
    }
}
