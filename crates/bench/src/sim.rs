//! The simulated shard storm: `shard_chaos.rs`'s invariants as a
//! deterministic-simulation workload.
//!
//! One [`Schedule`] fully determines a run: the scheduler interleaving
//! (seed + optional pinned steps), the workload's own choices (derived
//! from the same seed), and the per-round fault lattice (maskable by
//! the shrinker). The storm drives a sharded runtime against a
//! fault-free unsharded control and asserts, every round:
//!
//! 1. **Zero cross-shard blast radius** — users on up shards answer
//!    byte-identically to the control;
//! 2. **Fail-closed while down** — users on down shards get audited
//!    `ShardUnavailable` denials with no records;
//!
//! and at the end, after an epilogue that forces every shard through
//! one more quarantine + WAL replay:
//!
//! 3. **No lost committed mutation** — every accepted preference is
//!    enforced after recovery, byte-identically to the control;
//! 4. **No id reuse / no double apply** — per-user preference counts
//!    match the control exactly (a zombie append by an unfenced
//!    abandoned writer duplicates a WAL record and trips this);
//! 5. **Audited fail-closed** — router audit length equals the
//!    fail-closed denial count, and no shard is left quarantined.
//!
//! The fault lattice mixes `shard-panic`, `shard-stall`, and (sim mode
//! only) `shard-slow-job` — the fault whose watchdog race the threaded
//! chaos storm cannot schedule deterministically, and the one that
//! exposes a reintroduced PR 9 fence bug
//! (`ShardSpec::sim_reintroduce_fence_bug`, experiment E21).

use tippers::{
    DataRequest, DecisionBasis, EnforcementCore, FaultPoint, HealthStatus, Priority, ShardSpec,
    ShardedTippers, SubjectSelector, Tippers, TippersConfig,
};
use tippers_ontology::Ontology;
use tippers_policy::{
    ActionSet, BuildingPolicy, Effect, PolicyId, PreferenceId, PreferenceScope, ServiceId,
    Timestamp, UserGroup, UserId, UserPreference,
};
use tippers_resilience::sim::{Schedule, SimExecutor, SimOutcome};
use tippers_sensors::Occupant;
use tippers_spatial::fixtures::dbh;

/// The simulated storm's shape. The defaults are sized so a full run
/// takes milliseconds and a 200-seed sweep stays in CI-seconds.
#[derive(Debug, Clone)]
pub struct SimStorm {
    /// Shard count.
    pub shards: usize,
    /// Occupant population (requests fan over all of them each round).
    pub users: u64,
    /// Storm rounds (each submits a preference and may inject a fault).
    pub rounds: usize,
    /// Watchdog backstop, ms — virtual under the sim executor.
    pub watchdog_ms: u64,
    /// Arms `ShardSpec::sim_reintroduce_fence_bug`: the E21 bug hunt.
    pub reintroduce_fence_bug: bool,
    /// Include `shard-slow-job` in the fault mix. The threaded chaos
    /// baseline keeps this off — mirroring `shard_chaos.rs`'s
    /// panic/stall storm — which is exactly why it misses the fence bug.
    pub slow_jobs: bool,
}

impl Default for SimStorm {
    fn default() -> SimStorm {
        SimStorm {
            shards: 4,
            users: 16,
            rounds: 6,
            watchdog_ms: 200,
            reintroduce_fence_bug: false,
            slow_jobs: true,
        }
    }
}

/// Workload RNG (xorshift64*), independent of both the scheduler RNG
/// and the fault plan's RNG.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn request_for(ontology: &Ontology, user: u64) -> DataRequest {
    let c = ontology.concepts().clone();
    DataRequest {
        service: ServiceId::new("Concierge"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(UserId(user)),
        from: Timestamp::at(0, 0, 0),
        to: Timestamp::at(30, 0, 0),
        requester_space: None,
        priority: Priority::Interactive,
        deadline: None,
    }
}

fn deny_pref(ontology: &Ontology, user: u64) -> UserPreference {
    let c = ontology.concepts().clone();
    UserPreference::new(
        PreferenceId(0),
        UserId(user),
        PreferenceScope {
            data: Some(c.wifi_association),
            ..Default::default()
        },
        Effect::Deny,
    )
}

impl SimStorm {
    /// Total fault-lattice rounds: the storm rounds plus one epilogue
    /// round per shard (the forced final quarantine + WAL replay).
    /// This is the length [`Schedule::fault_mask`] is interpreted at.
    pub fn fault_rounds(&self) -> usize {
        self.rounds + self.shards
    }

    /// Runs the storm under the deterministic simulation executor.
    pub fn run(&self, schedule: &Schedule) -> SimOutcome {
        let cfg = self.clone();
        let sched = schedule.clone();
        SimExecutor::run(schedule, move || storm(&cfg, &sched))
    }

    /// Runs the same storm on plain OS threads (the wall-clock chaos
    /// baseline), returning the first invariant violation, if any.
    pub fn run_threaded(&self, schedule: &Schedule) -> Option<String> {
        let cfg = self.clone();
        let sched = schedule.clone();
        std::panic::catch_unwind(move || storm(&cfg, &sched))
            .err()
            .map(|p| {
                p.downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned())
            })
    }
}

/// The storm body — identical under both executors.
#[allow(clippy::too_many_lines)]
fn storm(cfg: &SimStorm, schedule: &Schedule) {
    let seed = schedule.seed;
    let mut rng = Xs(seed ^ 0x53_49_4d_53_54_4f_52_4d); // "SIMSTORM"
    let ontology = Ontology::standard();
    let building = dbh();
    let mut sharded = ShardedTippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards: cfg.shards,
            watchdog_ms: cfg.watchdog_ms,
            backoff_base_ms: 10,
            backoff_max_ms: 40,
            sim_reintroduce_fence_bug: cfg.reintroduce_fence_bug,
            ..ShardSpec::default()
        },
    );
    let mut control = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    );
    let occupants: Vec<Occupant> = (0..cfg.users)
        .map(|u| Occupant::new(UserId(u), format!("occupant-{u}"), UserGroup::GradStudent))
        .collect();
    let c = ontology.concepts().clone();
    let policy = BuildingPolicy::new(
        PolicyId(0),
        "Network logging",
        building.building,
        c.wifi_association,
        c.logging,
    )
    .with_actions(ActionSet::ALL);
    for core in [&mut sharded as &mut dyn EnforcementCore, &mut control] {
        core.register_occupants(&occupants);
        core.add_policy(policy.clone());
    }
    // Owners are routing, not chance: some shard may own no user at
    // small populations, so faults aim only at populated shards.
    let owners: Vec<Vec<u64>> = (0..cfg.shards)
        .map(|s| {
            (0..cfg.users)
                .filter(|&u| sharded.shard_of_user(UserId(u)) == s)
                .collect()
        })
        .collect();
    let populated: Vec<usize> = (0..cfg.shards).filter(|&s| !owners[s].is_empty()).collect();
    assert!(
        !populated.is_empty(),
        "sim storm misconfigured: no shard owns any user"
    );

    for round in 0..cfg.rounds {
        let now = Timestamp::at(0, 10, u32::try_from(round).unwrap_or(0) * 2);

        // Draws happen unconditionally so a masked fault round changes
        // nothing else about the workload.
        let target = populated[usize::try_from(rng.below(populated.len() as u64)).unwrap_or(0)];
        let mix = if cfg.slow_jobs { 3 } else { 2 };
        let point = match rng.below(mix) {
            0 => FaultPoint::ShardPanic,
            1 => FaultPoint::ShardStall,
            _ => FaultPoint::ShardSlowJob,
        };
        let mutator = rng.below(cfg.users);
        let inject = schedule.fault_enabled(round);

        if inject && point == FaultPoint::ShardSlowJob {
            // The dangerous fault: the round's preference submission is
            // itself the slow job, so the worker outlives the watchdog
            // with a *write* in flight. The router resolves the
            // indeterminate id against the replayed partition; the
            // abandoned worker's late append must hit the fence.
            let victim = owners[target][0];
            let mut pref = deny_pref(&ontology, victim);
            pref.priority = 3 + (round % 5) as u8;
            sharded.config_fault_plan().arm_limited(point, 1.0, 1);
            sharded.submit_preference(pref.clone(), now);
            control.submit_preference(pref, now);
        } else {
            // Continuous mutation load on a workload-chosen user
            // (possibly one whose shard is down).
            let mut pref = deny_pref(&ontology, mutator);
            pref.priority = 3 + (round % 5) as u8;
            sharded.submit_preference(pref.clone(), now);
            control.submit_preference(pref, now);
            if inject {
                let trigger = owners[target][0];
                sharded.config_fault_plan().arm_limited(point, 1.0, 1);
                let r = sharded.handle_request(&request_for(&ontology, trigger), now);
                assert_eq!(
                    r.results[0].decision.basis,
                    DecisionBasis::ShardUnavailable,
                    "invariant violated (seed {seed}, round {round}): injected {point} \
                     on shard {target} was not contained fail-closed"
                );
            }
        }

        // Storm the population: blast-radius and fail-closed checks.
        for u in 0..cfg.users {
            let got = sharded.handle_request(&request_for(&ontology, u), now);
            if sharded
                .shard_health(sharded.shard_of_user(UserId(u)))
                .is_up()
            {
                let want = control.handle_request(&request_for(&ontology, u), now);
                assert_eq!(
                    serde_json::to_string(&got).unwrap(),
                    serde_json::to_string(&want).unwrap(),
                    "invariant violated (seed {seed}, round {round}): blast radius \
                     reached user {u} on an up shard"
                );
            } else {
                assert!(
                    got.degraded
                        && got.results[0].decision.basis == DecisionBasis::ShardUnavailable
                        && got.results[0].records.is_empty(),
                    "invariant violated (seed {seed}, round {round}): user {u} on a \
                     down shard was not denied fail-closed"
                );
            }
        }
    }

    // Epilogue: force every populated shard through one more quarantine
    // and WAL replay, so any zombie append an unfenced abandoned writer
    // landed is pulled into live state where the final checks see it.
    for (i, &s) in populated.iter().enumerate() {
        if !schedule.fault_enabled(cfg.rounds + s) {
            continue;
        }
        let now = Timestamp::at(0, 11, u32::try_from(i).unwrap_or(0));
        let trigger = owners[s][0];
        sharded
            .config_fault_plan()
            .arm_limited(FaultPoint::ShardPanic, 1.0, 1);
        let r = sharded.handle_request(&request_for(&ontology, trigger), now);
        assert_eq!(
            r.results[0].decision.basis,
            DecisionBasis::ShardUnavailable,
            "invariant violated (seed {seed}): epilogue kill of shard {s} escaped"
        );
    }

    // Recovery: everything comes back, and nothing committed was lost,
    // duplicated, or resurrected. Under a preemptive schedule *any*
    // dispatch can spuriously hit the virtual watchdog (the executor is
    // allowed to expire it against an in-flight reply), so recovery is
    // a settle loop — each retry advances the virtual clock past the
    // restart backoff — rather than a one-shot "all shards are up"
    // assumption. The safety invariants stay exact: an authoritative
    // (non-fail-closed) answer must match the control byte-for-byte on
    // the first try.
    let mut late = 0u32;
    let mut settle_minute = || {
        late += 1;
        assert!(
            late < 240,
            "invariant violated (seed {seed}): recovery did not settle \
             within {late} virtual minutes"
        );
        Timestamp::at(0, 12, late)
    };
    for u in 0..cfg.users {
        loop {
            let end = settle_minute();
            let got = sharded.handle_request(&request_for(&ontology, u), end);
            if got.results[0].decision.basis == DecisionBasis::ShardUnavailable {
                continue; // spuriously quarantined; back off and retry
            }
            let want = control.handle_request(&request_for(&ontology, u), end);
            assert_eq!(
                serde_json::to_string(&got).unwrap(),
                serde_json::to_string(&want).unwrap(),
                "invariant violated (seed {seed}): user {u} diverged after recovery \
                 (lost or corrupted committed mutation)"
            );
            break;
        }
    }
    for u in 0..cfg.users {
        let idx = sharded.shard_of_user(UserId(u));
        let got = loop {
            let probe = sharded.inspect_shard(idx, move |bms| {
                bms.preferences()
                    .iter()
                    .filter(|p| p.user == UserId(u))
                    .count()
            });
            match probe {
                Some(count) => break count,
                None => {
                    // Down (possibly spuriously, mid-inspect): advance
                    // the virtual clock past the backoff and retry.
                    let end = settle_minute();
                    sharded.handle_request(&request_for(&ontology, u), end);
                }
            }
        };
        let want = control
            .preferences()
            .iter()
            .filter(|p| p.user == UserId(u))
            .count();
        assert_eq!(
            got, want,
            "invariant violated (seed {seed}): user {u} holds {got} preferences, \
             control holds {want} — a lost write or a zombie double-apply"
        );
    }
    // Quiescence: drive any shard a late spurious quarantine left down
    // back up (including user-less shards that only ever saw policy
    // broadcasts), then the runtime must report fully healthy.
    while sharded.stats().down > 0 {
        let end = settle_minute();
        // Any routed operation advances the virtual clock past backoffs…
        sharded.handle_request(&request_for(&ontology, owners[populated[0]][0]), end);
        // …and a probe on each down shard forces its restart attempt.
        for s in 0..cfg.shards {
            if !sharded.shard_health(s).is_up() {
                sharded.inspect_shard(s, |_| ());
            }
        }
    }
    let stats = sharded.stats();
    assert_eq!(
        u64::try_from(sharded.router_audit().entries().len()).unwrap_or(u64::MAX),
        stats.unavailable_denials,
        "invariant violated (seed {seed}): fail-closed denial not audited"
    );
    assert_eq!(
        sharded.health(),
        HealthStatus::Healthy,
        "invariant violated (seed {seed}): runtime still degraded after recovery"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_clean_and_deterministic_under_the_sim_executor() {
        let cfg = SimStorm::default();
        let schedule = Schedule::seeded(42, 0);
        let a = cfg.run(&schedule);
        assert!(
            !a.failed(),
            "fault-free fence should hold: {:?}",
            a.violation
        );
        let b = cfg.run(&schedule);
        assert_eq!(a.trace, b.trace, "same schedule, same interleaving");
        assert_eq!(a.end_ms, b.end_ms);
    }

    #[test]
    fn reintroduced_fence_bug_is_caught_by_a_seed_sweep() {
        let cfg = SimStorm {
            reintroduce_fence_bug: true,
            ..SimStorm::default()
        };
        let hit = (1..=32).find_map(|seed| {
            let out = cfg.run(&Schedule::seeded(seed, 0));
            out.failed().then_some((seed, out.violation.unwrap()))
        });
        let (seed, violation) = hit.expect("32 seeds should surface the fence bug");
        assert!(
            violation.contains("invariant violated"),
            "unexpected violation at seed {seed}: {violation}"
        );
    }

    #[test]
    fn threaded_baseline_with_the_chaos_fault_mix_misses_the_fence_bug() {
        let cfg = SimStorm {
            reintroduce_fence_bug: true,
            slow_jobs: false,
            ..SimStorm::default()
        };
        assert_eq!(cfg.run_threaded(&Schedule::seeded(42, 0)), None);
    }
}
