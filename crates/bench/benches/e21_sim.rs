//! Experiment E21 — deterministic simulation of the sharded runtime.
//!
//! Two legs:
//!
//! * criterion timing of one full storm schedule (build runtime +
//!   control, 6 fault rounds over 16 users on 4 shards, epilogue
//!   replay, every chaos invariant checked) under the simulation
//!   executor, and
//! * a metrics leg producing `BENCH_e21_sim.json`:
//!   - `schedules_per_sec` — full storm schedules simulated per second
//!     of wall time (the cost of a CI seed sweep);
//!   - `seeds_to_bug` — seeds explored until the deliberately
//!     reintroduced PR 9 fence bug (`ShardSpec::sim_reintroduce_
//!     fence_bug`, an unfenced abandoned writer's zombie append)
//!     produces an invariant violation;
//!   - `shrink_iterations` / `shrunk_steps` / `shrunk_preemptions` /
//!     `shrunk_fault_rounds_disabled` — the delta-debugging cost and
//!     the size of the minimized, replayable schedule;
//!   - `threaded_chaos_missed_bug` — whether the wall-clock chaos
//!     baseline (the same storm on OS threads with `shard_chaos.rs`'s
//!     panic/stall fault mix) fails to detect that same bug, which is
//!     the acceptance claim of the whole harness;
//!   - `fence_closes_shrunk_schedule` — the minimized schedule passes
//!     once the real fence is back, pinning the violation on the bug.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (defaults to 7, the first CI seed).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tippers_bench::sim::SimStorm;
use tippers_resilience::sim::{explore, shrink, Schedule};

/// Schedules timed for the throughput figure.
const THROUGHPUT_SCHEDULES: u64 = 64;
/// Threaded baseline storms run against the reintroduced bug.
const BASELINE_RUNS: u64 = 8;
/// Written to the workspace root so CI can pick it up regardless of the
/// bench process's working directory.
const OUTPUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e21_sim.json");

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn bench_sim_schedule(criterion: &mut Criterion) {
    let cfg = SimStorm::default();
    let schedule = Schedule::seeded(fault_seed().max(1), 0);
    let mut group = criterion.benchmark_group("e21_sim");
    group.sample_size(10);
    group.bench_function("full_storm_schedule", |b| {
        b.iter(|| {
            let outcome = cfg.run(&schedule);
            assert!(!outcome.failed(), "{:?}", outcome.violation);
            outcome.decisions
        });
    });
    group.finish();
}

fn emit_sim_metrics(_c: &mut Criterion) {
    let seed = fault_seed();
    let origin = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;

    // Throughput: full storm schedules per second of wall time.
    let cfg = SimStorm::default();
    let started = Instant::now();
    let mut decisions = 0u64;
    for i in 0..THROUGHPUT_SCHEDULES {
        let outcome = cfg.run(&Schedule::seeded(origin.wrapping_add(i), 0));
        assert!(
            !outcome.failed(),
            "clean storm failed: {:?}",
            outcome.violation
        );
        decisions += outcome.decisions;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let schedules_per_sec = THROUGHPUT_SCHEDULES as f64 / elapsed;
    let decisions_per_schedule = decisions / THROUGHPUT_SCHEDULES;

    // The bug hunt: reintroduce the PR 9 fence hole and sweep seeds
    // until the storm's invariants catch the zombie append.
    let buggy = SimStorm {
        reintroduce_fence_bug: true,
        ..SimStorm::default()
    };
    let hunt_started = Instant::now();
    let exploration = explore((0..10_000).map(|i| origin.wrapping_add(i)), 0, |s| {
        buggy.run(s)
    })
    .expect_err("the reintroduced fence bug must be found");
    let seeds_to_bug = exploration.seeds_tried;
    let hunt_secs = hunt_started.elapsed().as_secs_f64();

    // Shrink the failing interleaving to its minimal replayable form.
    let report = shrink(
        &exploration.schedule,
        &exploration.outcome,
        buggy.fault_rounds(),
        |s| buggy.run(s),
    );
    assert!(report.reproduced, "pinned trace must reproduce");
    let fence_closes_shrunk_schedule = !SimStorm::default().run(&report.schedule).failed();
    assert!(
        fence_closes_shrunk_schedule,
        "the real fence must pass the shrunk schedule"
    );

    // The wall-clock baseline: the same storm on OS threads with the
    // panic/stall fault mix `shard_chaos.rs` arms — real watchdogs,
    // real threads, same invariants, same reintroduced bug.
    let baseline = SimStorm {
        reintroduce_fence_bug: true,
        slow_jobs: false,
        ..SimStorm::default()
    };
    let mut baseline_violations = 0u64;
    for i in 0..BASELINE_RUNS {
        if baseline
            .run_threaded(&Schedule::seeded(origin.wrapping_add(i), 0))
            .is_some()
        {
            baseline_violations += 1;
        }
    }
    let threaded_chaos_missed_bug = baseline_violations == 0;

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e21_sim\",\n",
            "  \"seed\": {seed},\n",
            "  \"schedules\": {schedules},\n",
            "  \"schedules_per_sec\": {sps:.1},\n",
            "  \"scheduler_decisions_per_schedule\": {dps},\n",
            "  \"seeds_to_bug\": {seeds_to_bug},\n",
            "  \"bug_hunt_secs\": {hunt:.3},\n",
            "  \"shrink_iterations\": {iters},\n",
            "  \"shrunk_steps\": {steps},\n",
            "  \"shrunk_preemptions\": {preempts},\n",
            "  \"shrunk_fault_rounds_disabled\": {rounds_off},\n",
            "  \"fence_closes_shrunk_schedule\": {fence_ok},\n",
            "  \"threaded_baseline_runs\": {base_runs},\n",
            "  \"threaded_baseline_violations\": {base_viol},\n",
            "  \"threaded_chaos_missed_bug\": {missed}\n",
            "}}\n",
        ),
        seed = seed,
        schedules = THROUGHPUT_SCHEDULES,
        sps = schedules_per_sec,
        dps = decisions_per_schedule,
        seeds_to_bug = seeds_to_bug,
        hunt = hunt_secs,
        iters = report.iterations,
        steps = report.final_steps,
        preempts = report.final_preemptions,
        rounds_off = report.fault_rounds_disabled,
        fence_ok = fence_closes_shrunk_schedule,
        base_runs = BASELINE_RUNS,
        base_viol = baseline_violations,
        missed = threaded_chaos_missed_bug,
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!(
        "wrote {OUTPUT}: {schedules_per_sec:.1} schedules/s, \
         bug found in {seeds_to_bug} seed(s) ({hunt_secs:.3}s), \
         shrunk to {} pinned steps / {} preemptions in {} candidates, \
         threaded baseline missed it across {BASELINE_RUNS} runs: {threaded_chaos_missed_bug}",
        report.final_steps, report.final_preemptions, report.iterations
    );
}

criterion_group!(benches, bench_sim_schedule, emit_sim_metrics);
criterion_main!(benches);
