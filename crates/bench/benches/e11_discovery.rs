//! Experiment E11 — IRR discovery (Figure 1 step 5): the cost of a user's
//! IoTA discovering registries and fetching nearby policies as they walk
//! the building, across network loss rates and advertisement counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tippers_iota::{Iota, SensitivityProfile};
use tippers_irr::{DiscoveryBus, NetworkConfig};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, PolicyCodec, PolicyId, Timestamp, UserGroup, UserId};
use tippers_spatial::fixtures::dbh;

fn build_bus(ads_per_floor: usize, loss: f64) -> (DiscoveryBus, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = dbh();
    let codec = PolicyCodec::new(&ontology, &building.model);
    let mut bus = DiscoveryBus::new(NetworkConfig {
        loss_probability: loss,
        seed: 3,
        ..NetworkConfig::default()
    });
    let irr = bus.add_registry("DBH IRR", building.building);
    let now = Timestamp::at(0, 7, 0);
    for (i, &floor) in building.floors.iter().enumerate() {
        for j in 0..ads_per_floor {
            let mut policy = catalog::policy2_emergency_location(
                PolicyId((i * ads_per_floor + j) as u64),
                building.building,
                &ontology,
            );
            policy.space = floor;
            policy.name = format!("floor-{i}-practice-{j}");
            let doc = codec.to_document(&policy);
            bus.registry_mut(irr)
                .unwrap()
                .publish(doc, floor, now, 86_400)
                .unwrap();
        }
    }
    (bus, building)
}

fn bench_walk(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let mut group = criterion.benchmark_group("e11_discovery");
    group.sample_size(10);
    for &(ads, loss) in &[(5usize, 0.0f64), (5, 0.3), (20, 0.0), (20, 0.3)] {
        let (bus, building) = build_bus(ads, loss);
        let label = format!("ads{}_loss{}", ads * 6, (loss * 100.0) as u32);
        group.bench_with_input(BenchmarkId::from_parameter(&label), &bus, |b, bus| {
            let mut iota = Iota::new(
                UserId(1),
                UserGroup::GradStudent,
                SensitivityProfile::fundamentalist(&ontology),
            );
            // A walk visiting one office per floor.
            let stops: Vec<_> = building
                .floors
                .iter()
                .map(|&f| {
                    building
                        .offices
                        .iter()
                        .copied()
                        .find(|&o| building.model.floor_of(o) == Some(f))
                        .expect("every floor has offices")
                })
                .collect();
            b.iter(|| {
                let mut total = 0usize;
                for &stop in &stops {
                    total += iota
                        .poll(bus, &building.model, stop, Timestamp::at(0, 9, 0))
                        .len();
                }
                std::hint::black_box(total)
            });
        });
    }
    group.finish();
}

/// Review pipeline throughput: relevance-scoring a batch of fetched
/// advertisements (the phone-side cost per discovery round).
fn bench_review(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let (bus, building) = build_bus(20, 0.0);
    let mut iota_probe = Iota::new(
        UserId(1),
        UserGroup::GradStudent,
        SensitivityProfile::fundamentalist(&ontology),
    );
    let ads = iota_probe.poll(
        &bus,
        &building.model,
        building.offices[0],
        Timestamp::at(0, 9, 0),
    );
    let mut group = criterion.benchmark_group("e11_review");
    group.bench_function(format!("review_{}_ads", ads.len()), |b| {
        b.iter(|| {
            let mut iota = Iota::new(
                UserId(1),
                UserGroup::GradStudent,
                SensitivityProfile::fundamentalist(&ontology),
            );
            std::hint::black_box(iota.review(&ads, &ontology, Timestamp::at(0, 9, 0)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_walk, bench_review);
criterion_main!(benches);
