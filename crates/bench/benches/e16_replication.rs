//! Experiment E16 — replication lag and failover recovery.
//!
//! Drives the shared crash-recovery mutation workload through a
//! three-node replication cluster and measures two things:
//!
//! * criterion timing of one quorum-committed write (append + frame
//!   shipping + replica apply + ack collection), and
//! * a full-workload replay producing `BENCH_e16_replication.json` —
//!   steady-state commit latency p50/p99, peak replica frame lag, and the
//!   wall-clock cost of a failover from primary crash to the first permit
//!   served by the promoted replica — so the perf trajectory has
//!   machine-readable data points.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (defaults to 7, the first CI seed).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tippers::replication::{Cluster, ReplicationConfig, WriteOutcome};
use tippers::{FaultPlan, TippersConfig, VirtualClock, MILLIS_PER_SEC};
use tippers_bench::{apply_mutation, gen_mutations, Mutation};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, Timestamp};
use tippers_sensors::Occupant;

const WORKLOAD: usize = 160;
/// Written to the workspace root so CI can pick it up regardless of the
/// bench process's working directory.
const OUTPUT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_e16_replication.json"
);

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// The shared mutation workload, minus checkpoints: replicas replay every
/// record from genesis (replication never compacts), so the replicated
/// write stream is the uncompacted one.
fn workload(seed: u64) -> (Vec<Occupant>, Vec<Mutation>, Ontology) {
    let ontology = Ontology::standard();
    let (_, occupants, mutations) = gen_mutations(WORKLOAD, &ontology, seed);
    let mutations = mutations
        .into_iter()
        .filter(|m| !matches!(m, Mutation::Checkpoint))
        .collect();
    (occupants, mutations, ontology)
}

fn cluster(ontology: &Ontology, occupants: &[Occupant], clock: &VirtualClock) -> Cluster {
    let building = tippers_spatial::fixtures::dbh();
    Cluster::new(
        ReplicationConfig::default(),
        FaultPlan::disarmed(),
        clock.clone(),
        ontology.clone(),
        building.model,
        TippersConfig::default(),
        occupants.to_vec(),
    )
    .expect("cluster boot")
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Criterion leg: one quorum-committed write on a warm cluster (the
/// steady-state hot path: local durable append, ship to both replicas,
/// replica apply, ack collection, commit check).
fn bench_quorum_commit(criterion: &mut Criterion) {
    let seed = fault_seed();
    let (occupants, mutations, ontology) = workload(seed);
    let clock = VirtualClock::at_ms(Timestamp::at(0, 8, 0).0 * MILLIS_PER_SEC);
    let mut cluster = cluster(&ontology, &occupants, &clock);
    let mut group = criterion.benchmark_group("e16_replication");
    group.sample_size(10);
    group.bench_function("write_quorum_commit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let mutation = mutations[i % mutations.len()].clone();
            i += 1;
            let primary = cluster.primary();
            std::hint::black_box(
                cluster
                    .write_to(primary, move |bms| apply_mutation(bms, &mutation))
                    .expect("replicated write"),
            )
        });
    });
    group.finish();
}

/// Metrics leg: one full deterministic replay of the workload plus a
/// crash-driven failover, written to `BENCH_e16_replication.json`.
fn emit_replication_metrics(_criterion: &mut Criterion) {
    let seed = fault_seed();
    let (occupants, mutations, ontology) = workload(seed);
    let clock = VirtualClock::at_ms(Timestamp::at(0, 8, 0).0 * MILLIS_PER_SEC);
    let mut cluster = cluster(&ontology, &occupants, &clock);
    let replicas = ReplicationConfig::default().replicas;

    // Steady state: every workload mutation as a replicated write,
    // timing submission-to-quorum-ack and sampling replica frame lag.
    let mut commit_us: Vec<f64> = Vec::with_capacity(mutations.len());
    let mut lag_frames: Vec<f64> = Vec::with_capacity(mutations.len());
    let mut committed = 0u64;
    for mutation in &mutations {
        let primary = cluster.primary();
        let m = mutation.clone();
        let started = Instant::now();
        let outcome = cluster
            .write_to(primary, move |bms| apply_mutation(bms, &m))
            .expect("replicated write");
        let elapsed = started.elapsed().as_secs_f64() * 1e6;
        clock.advance_ms(200);
        cluster.tick().expect("replication tick");
        if matches!(outcome, WriteOutcome::Committed { .. }) {
            committed += 1;
            commit_us.push(elapsed);
        }
        let head = cluster.durable_index(primary);
        let worst = (0..replicas)
            .filter(|&n| n != primary)
            .map(|n| head.saturating_sub(cluster.durable_index(n)))
            .max()
            .unwrap_or(0);
        lag_frames.push(worst as f64);
    }
    commit_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    lag_frames.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // Failover: crash the primary mid-service and measure wall-clock from
    // crash to the first permit served by the promoted replica.
    let c = ontology.concepts().clone();
    let now = Timestamp(clock.now_ms() / MILLIS_PER_SEC);
    let request = tippers::DataRequest {
        service: catalog::services::emergency(),
        purpose: c.emergency_response,
        data: c.wifi_association,
        subjects: tippers::SubjectSelector::One(occupants[0].user),
        from: Timestamp::at(0, 8, 0),
        to: now,
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let old_primary = cluster.primary();
    let pre = cluster
        .read_from(old_primary, &request, now)
        .expect("primary serves");
    assert!(
        pre.results.iter().any(|r| r.decision.permits()),
        "the emergency request must be permitted before the crash"
    );
    let started = Instant::now();
    cluster.crash(old_primary);
    let candidate = cluster.best_candidate().expect("quorum alive");
    cluster.promote(candidate).expect("failover");
    let post = cluster
        .read_from(candidate, &request, now)
        .expect("new primary serves");
    let failover_us = started.elapsed().as_secs_f64() * 1e6;
    assert!(
        post.results.iter().any(|r| r.decision.permits()),
        "the promoted replica must serve the same permit"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e16_replication\",\n",
            "  \"seed\": {seed},\n",
            "  \"replicas\": {replicas},\n",
            "  \"quorum\": {quorum},\n",
            "  \"writes\": {writes},\n",
            "  \"committed\": {committed},\n",
            "  \"p50_commit_us\": {p50:.1},\n",
            "  \"p99_commit_us\": {p99:.1},\n",
            "  \"p50_lag_frames\": {lag50:.1},\n",
            "  \"p99_lag_frames\": {lag99:.1},\n",
            "  \"failover_to_first_permit_us\": {failover:.1}\n",
            "}}\n",
        ),
        seed = seed,
        replicas = replicas,
        quorum = ReplicationConfig::default().quorum,
        writes = mutations.len(),
        committed = committed,
        p50 = percentile_us(&commit_us, 0.50),
        p99 = percentile_us(&commit_us, 0.99),
        lag50 = percentile_us(&lag_frames, 0.50),
        lag99 = percentile_us(&lag_frames, 0.99),
        failover = failover_us,
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!(
        "wrote {OUTPUT}: {committed}/{} committed, failover {failover_us:.0}us",
        mutations.len()
    );
}

criterion_group!(benches, bench_quorum_commit, emit_replication_metrics);
criterion_main!(benches);
