//! Experiment E19 — incremental and parallel policy analysis.
//!
//! Builds a 5k-policy / 1k-preference deployment on the figures corpus,
//! then measures:
//!
//! * a full analysis (fact-graph lowering + fixpoint + all passes), and
//!   the closure facts/sec it sustains;
//! * an incremental re-lint after a single-policy edit fed through
//!   `Analyzer::update` — the headline claim is a ≥10× speedup over the
//!   full run, asserted here so CI fails if incrementality regresses;
//! * thread scaling of the full run at 1/2/4/8 workers, with the
//!   reports checked byte-identical at every width.
//!
//! Emits `BENCH_e19_analyzer.json` at the workspace root.

use std::time::Instant;

use tippers_analyzer::{analyze_parallel, Analyzer, DeploymentCorpus, UnitId};
use tippers_bench::{gen_policies, gen_preferences, service_pool};

const POLICIES: usize = 5_000;
const PREF_USERS: usize = 500;
const PREFS_PER_USER: usize = 2;
/// Generated ids start here so they never collide with the figures corpus.
const ID_OFFSET: u64 = 1_000;
const OUTPUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e19_analyzer.json");

fn corpus() -> DeploymentCorpus {
    let mut corpus = DeploymentCorpus::figures();
    let dbh = tippers_spatial::fixtures::dbh();
    let services = service_pool(4);
    let ontology = corpus.ontology.clone();
    for mut p in gen_policies(POLICIES, &ontology, &dbh, &services, 19) {
        p.id.0 += ID_OFFSET;
        corpus.policies.push(p);
    }
    for mut a in gen_preferences(PREF_USERS, PREFS_PER_USER, &ontology, &dbh, &services, 19) {
        a.id.0 += ID_OFFSET;
        corpus.preferences.push(a);
    }
    corpus
}

fn main() {
    let base = corpus();

    // Full analysis (also warms the page cache and code paths).
    let started = Instant::now();
    let mut analyzer = Analyzer::new(base.clone());
    let full_warm_s = started.elapsed().as_secs_f64();
    let facts = analyzer.fact_count();

    // The single-policy edit a WAL tail would report: one rename.
    let mut edited = base.clone();
    let idx = edited
        .policies
        .iter()
        .position(|p| p.id.0 == ID_OFFSET)
        .expect("generated policy present");
    edited.policies[idx].name.push_str(" (renamed)");
    let changed = [UnitId::Policy(ID_OFFSET)];

    // Timed comparator: a from-scratch analysis of the edited corpus.
    let started = Instant::now();
    let full = Analyzer::new(edited.clone());
    let full_s = started.elapsed().as_secs_f64();

    // Timed subject: splice only the dirty region. The corpus clone is
    // hoisted out of the measurement — it is bench bookkeeping (keeping
    // `edited` alive for the comparison below), not analysis work.
    let handoff = edited.clone();
    let started = Instant::now();
    analyzer.update(handoff, &changed);
    let incr_s = started.elapsed().as_secs_f64();

    assert_eq!(
        analyzer.report(),
        full.report(),
        "incremental report drifted from full re-analysis"
    );
    let speedup = full_s / incr_s.max(1e-9);
    assert!(
        speedup >= 10.0,
        "incremental relint must be >=10x faster than full (got {speedup:.1}x: \
         full {full_s:.3}s, incremental {incr_s:.3}s)"
    );

    // Thread scaling of the full run; reports must be width-invariant.
    let sequential = analyze_parallel(&base, 1);
    let mut thread_ms = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let report = analyze_parallel(&base, threads);
        thread_ms.push((threads, started.elapsed().as_secs_f64() * 1e3));
        assert_eq!(report, sequential, "report drifted at {threads} threads");
    }

    let threads_json = thread_ms
        .iter()
        .map(|(t, ms)| format!("{{\"threads\": {t}, \"full_ms\": {ms:.1}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e19_analyzer_incr\",\n",
            "  \"policies\": {policies},\n",
            "  \"preferences\": {prefs},\n",
            "  \"closure_facts\": {facts},\n",
            "  \"facts_per_sec\": {fps:.0},\n",
            "  \"full_ms\": {full_ms:.1},\n",
            "  \"incremental_ms\": {incr_ms:.3},\n",
            "  \"speedup\": {speedup:.1},\n",
            "  \"parallel_identical\": true,\n",
            "  \"thread_scaling\": [{threads_json}]\n",
            "}}\n",
        ),
        policies = base.policies.len(),
        prefs = base.preferences.len(),
        facts = facts,
        fps = facts as f64 / full_warm_s.max(1e-9),
        full_ms = full_s * 1e3,
        incr_ms = incr_s * 1e3,
        speedup = speedup,
        threads_json = threads_json,
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!(
        "wrote {OUTPUT}: full {:.1}ms, incremental {:.3}ms ({speedup:.1}x), \
         {facts} closure facts",
        full_s * 1e3,
        incr_s * 1e3,
    );
}
