//! Experiment E18 — capture-time enforcement under firehose load.
//!
//! Two legs:
//!
//! * criterion timing of the batched-ingest hot path (admission → capture
//!   filter → storage grant → group commit), and
//! * a metrics leg producing `BENCH_e18_ingest.json` — sustained events/sec
//!   on a DBH-×100 campus model, the group-commit amortization factor
//!   (WAL records per fsync), p50/p99 capture-decision latency, and the
//!   degradation-ladder occupancy under a 4× overload storm — so "degrades
//!   gracefully" is a number, not a feeling.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (defaults to 7, the first CI seed).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tippers::wal::MemLog;
use tippers::{IngestConfig, Tippers, TippersConfig};
use tippers_bench::Lcg;
use tippers_ontology::Ontology;
use tippers_policy::{
    catalog, ActionSet, BuildingPolicy, DataAction, Modality, PolicyId, Timestamp, UserGroup,
    UserId,
};
use tippers_sensors::{DeviceId, Observation, ObservationPayload, Occupant};
use tippers_spatial::fixtures::{dbh_with, Dbh, DbhConfig};
use tippers_spatial::SpaceId;

/// Steady-state leg: total synthetic observations pushed through the
/// pipeline on the campus model.
const EVENTS: usize = 200_000;
/// Observations per `ingest_batched` call in the steady-state leg.
const CHUNK: usize = 2_048;
/// Overload leg: rounds of 4×-capacity bursts per zone.
const STORM_ROUNDS: usize = 25;
const STORM_MAILBOX: usize = 32;
const OCCUPANTS: usize = 64;
/// Written to the workspace root so CI can pick it up regardless of the
/// bench process's working directory.
const OUTPUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e18_ingest.json");

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// A DBH-×100 campus: 600 floors of the paper's per-floor room mix, ~100×
/// the single building's space count, under one spatial root.
fn campus() -> Dbh {
    dbh_with(&DbhConfig {
        floors: 600,
        ..DbhConfig::default()
    })
}

/// A durable capture-enforcing BMS over the given building: a campus-wide
/// telemetry baseline (everything storable — the pipeline, not
/// authorization, is under measurement) plus the Required emergency policy
/// pinning floor 0 to full fidelity.
fn capture_bms(building: &Dbh, ingest: IngestConfig) -> (Tippers, Vec<Occupant>) {
    let ontology = Ontology::standard();
    let (mut bms, _) = Tippers::open_with(
        Box::new(MemLog::new()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            ingest: Some(ingest),
            ..TippersConfig::default()
        },
    )
    .expect("open");
    let c = ontology.concepts().clone();
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Campus telemetry baseline",
            building.building,
            c.data,
            c.logging,
        )
        .with_actions(ActionSet::of(&[DataAction::Collect, DataAction::Store]))
        .with_retention("PT4H".parse().expect("valid duration"))
        .with_modality(Modality::OptOut),
    );
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.floors[0],
        &ontology,
    ));
    let occupants: Vec<Occupant> = (0..OCCUPANTS as u64)
        .map(|u| Occupant::new(UserId(u), format!("user-{u}"), UserGroup::GradStudent))
        .collect();
    bms.register_occupants(&occupants);
    (bms, occupants)
}

/// One synthetic observation: mostly essential telemetry (motion,
/// temperature), ~10% identity-bearing WiFi sightings.
fn observation(zone: SpaceId, t: Timestamp, lcg: &mut Lcg, occupants: &[Occupant]) -> Observation {
    let payload = match lcg.below(10) {
        0 => ObservationPayload::WifiAssociation {
            mac: occupants[lcg.below(occupants.len())].mac,
            ap: DeviceId(1),
        },
        1..=4 => ObservationPayload::Temperature {
            celsius: 20.0 + lcg.unit(),
        },
        _ => ObservationPayload::Motion {
            detected: lcg.below(2) == 0,
        },
    };
    Observation {
        device: DeviceId(2),
        timestamp: t,
        space: zone,
        payload,
        subject: None,
    }
}

/// Criterion leg: one group-committed batch through the full capture path
/// on the standard DBH building.
fn bench_ingest_batch(criterion: &mut Criterion) {
    let seed = fault_seed();
    let building = tippers_spatial::fixtures::dbh();
    let (mut bms, occupants) = capture_bms(
        &building,
        IngestConfig {
            mailbox_capacity: 4_096,
            batch_max: 64,
            ..IngestConfig::default()
        },
    );
    let mut lcg = Lcg(seed ^ 0xE18);
    let zones = &building.offices;
    let mut group = criterion.benchmark_group("e18_ingest");
    group.sample_size(20);
    group.bench_function("ingest_batch_256", |b| {
        let mut tick = 0i64;
        b.iter(|| {
            let batch: Vec<Observation> = (0..256)
                .map(|_| {
                    observation(
                        zones[lcg.below(zones.len())],
                        Timestamp::at(0, 9, 0) + tick,
                        &mut lcg,
                        &occupants,
                    )
                })
                .collect();
            tick += 1;
            std::hint::black_box(bms.ingest_batched(&batch, tick));
        });
    });
    group.finish();
}

/// Metrics leg: campus-scale throughput, amortization, latency, ladder.
fn emit_ingest_metrics(_criterion: &mut Criterion) {
    let seed = fault_seed();
    let campus = campus();

    // Sustained throughput on the ×100 campus: synthetic firehose over 512
    // offices striding the whole campus, group-committed in CHUNK batches.
    let (mut bms, occupants) = capture_bms(
        &campus,
        IngestConfig {
            mailbox_capacity: 4_096,
            batch_max: 64,
            ..IngestConfig::default()
        },
    );
    let stride = (campus.offices.len() / 512).max(1);
    let zones: Vec<SpaceId> = campus.offices.iter().copied().step_by(stride).collect();
    let mut lcg = Lcg(seed ^ 0xE18);
    let mut decision_us: Vec<f64> = Vec::with_capacity(EVENTS / CHUNK + 1);
    let started = Instant::now();
    let mut tick = 0i64;
    let mut sent = 0usize;
    while sent < EVENTS {
        let n = CHUNK.min(EVENTS - sent);
        let batch: Vec<Observation> = (0..n)
            .map(|_| {
                observation(
                    zones[lcg.below(zones.len())],
                    Timestamp::at(0, 9, 0) + tick,
                    &mut lcg,
                    &occupants,
                )
            })
            .collect();
        let call = Instant::now();
        let report = bms.ingest_batched(&batch, tick);
        decision_us.push(call.elapsed().as_secs_f64() * 1e6 / n as f64);
        assert!(report.synced && report.rejected.is_empty());
        sent += n;
        tick += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let events_per_sec = EVENTS as f64 / elapsed;
    let stats = bms.ingest_stats().expect("pipeline configured");
    assert_eq!(stats.admitted, EVENTS as u64);
    let amortization = bms.wal_appended_records() as f64 / bms.wal_sync_count().max(1) as f64;
    decision_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // Ladder occupancy under a sustained 4× overload: small mailboxes,
    // bursts of 4× capacity per zone per round, floor 0 essential.
    let (mut storm_bms, storm_occupants) = capture_bms(
        &campus,
        IngestConfig {
            mailbox_capacity: STORM_MAILBOX,
            batch_max: 16,
            ..IngestConfig::default()
        },
    );
    let storm_zones = [
        campus.offices[0],
        campus.offices[40],
        campus.offices[80],
        campus.offices[120],
    ];
    for round in 0..STORM_ROUNDS {
        let mut burst = Vec::new();
        for &zone in &storm_zones {
            for _ in 0..STORM_MAILBOX * 4 {
                burst.push(observation(
                    zone,
                    Timestamp::at(0, 9, 0) + round as i64,
                    &mut lcg,
                    &storm_occupants,
                ));
            }
        }
        storm_bms.ingest_batched(&burst, round as i64);
    }
    let storm = storm_bms.ingest_stats().expect("pipeline configured");
    let rung_total: u64 = storm.rung_observations.iter().sum();
    let occupancy: Vec<f64> = storm
        .rung_observations
        .iter()
        .map(|&n| n as f64 / rung_total.max(1) as f64)
        .collect();
    assert!(
        occupancy[2] + occupancy[3] > 0.0,
        "a 4x storm must engage the ladder"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e18_ingest\",\n",
            "  \"seed\": {seed},\n",
            "  \"campus_spaces\": {spaces},\n",
            "  \"events\": {events},\n",
            "  \"events_per_sec\": {eps:.0},\n",
            "  \"group_commit_amortization\": {amort:.1},\n",
            "  \"p50_capture_decision_us\": {p50:.2},\n",
            "  \"p99_capture_decision_us\": {p99:.2},\n",
            "  \"storm_admitted\": {admitted},\n",
            "  \"storm_rejected\": {rejected},\n",
            "  \"ladder_occupancy\": [{full:.3}, {coarsen:.3}, {suppress:.3}, {reject:.3}]\n",
            "}}\n",
        ),
        seed = seed,
        spaces = campus.model.len(),
        events = EVENTS,
        eps = events_per_sec,
        amort = amortization,
        p50 = percentile_us(&decision_us, 0.50),
        p99 = percentile_us(&decision_us, 0.99),
        admitted = storm.admitted,
        rejected = storm.rejected,
        full = occupancy[0],
        coarsen = occupancy[1],
        suppress = occupancy[2],
        reject = occupancy[3],
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!(
        "wrote {OUTPUT}: {events_per_sec:.0} events/s over {} spaces, \
         {amortization:.1} records/fsync, p99 decision {:.2}us, \
         suppress-rung occupancy {:.1}%",
        campus.model.len(),
        percentile_us(&decision_us, 0.99),
        occupancy[2] * 100.0
    );
}

criterion_group!(benches, bench_ingest_batch, emit_ingest_metrics);
criterion_main!(benches);
