//! Experiment E15 — enforcement goodput and latency under a storm.
//!
//! Replays the seeded overload storm (the same trace
//! `tests/overload_storm.rs` asserts invariants over) against the
//! admission-controlled enforcement point and measures two things:
//!
//! * criterion timing of the per-request hot path while the limiter is
//!   actively shedding, and
//! * a full-trace replay producing `BENCH_e15_overload.json` — offered
//!   load, admitted goodput, shed counts per class, and the p50/p99
//!   wall-clock cost of `handle_request` under storm — so the perf
//!   trajectory has machine-readable data points.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (defaults to 7, the first CI seed).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tippers::{
    AdmissionConfig, AimdConfig, DecisionBasis, Priority, Tippers, TippersConfig, TokenBucketConfig,
};
use tippers_bench::{gen_policies, gen_storm, service_pool, StormArrival, StormConfig};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, PolicyId, Timestamp, UserGroup, UserId};
use tippers_sensors::Occupant;
use tippers_spatial::fixtures::dbh;

const USERS: usize = 10;
/// Written to the workspace root so CI can pick it up regardless of the
/// bench process's working directory.
const OUTPUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e15_overload.json");

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// The storm harness's admission sizing: a 5/s refill against a storm
/// offering roughly four times that.
fn admission() -> AdmissionConfig {
    AdmissionConfig {
        bucket: TokenBucketConfig {
            capacity: 32.0,
            refill_per_sec: 5.0,
        },
        aimd: AimdConfig::default(),
        batch_reserve: 0.25,
        service_time_ms: 5.0,
    }
}

fn storm_bms() -> Tippers {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut bms = Tippers::new(
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            admission: Some(admission()),
            ..TippersConfig::default()
        },
    );
    let occupants: Vec<Occupant> = (0..USERS as u64)
        .map(|u| Occupant::new(UserId(u), format!("user-{u}"), UserGroup::GradStudent))
        .collect();
    bms.register_occupants(&occupants);
    bms.add_policy(catalog::policy2_emergency_location(
        PolicyId(0),
        building.building,
        bms.ontology(),
    ));
    for p in gen_policies(12, &ontology, &building, &service_pool(3), 11) {
        bms.add_policy(p);
    }
    bms
}

fn storm_trace(seed: u64) -> Vec<StormArrival> {
    gen_storm(
        StormConfig {
            seed,
            ..StormConfig::default()
        },
        &Ontology::standard(),
        USERS,
        Timestamp::at(0, 9, 0),
    )
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Criterion leg: the hot path while the limiter is mid-storm (a mix of
/// admitted work and cheap sheds, exactly what an overloaded BMS sees).
fn bench_storm_path(criterion: &mut Criterion) {
    let trace = storm_trace(fault_seed());
    let mut group = criterion.benchmark_group("e15_overload");
    group.sample_size(10);
    let mut bms = storm_bms();
    group.bench_function("handle_request_under_storm", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let arrival = &trace[i % trace.len()];
            i += 1;
            std::hint::black_box(bms.handle_request(&arrival.request, arrival.at))
        });
    });
    group.finish();
}

/// Metrics leg: one full deterministic replay of the storm, written to
/// `BENCH_e15_overload.json` in the invocation directory.
fn emit_storm_metrics(_criterion: &mut Criterion) {
    let seed = fault_seed();
    let config = StormConfig {
        seed,
        ..StormConfig::default()
    };
    let trace = storm_trace(seed);
    let mut bms = storm_bms();

    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut latencies_us: Vec<f64> = Vec::with_capacity(trace.len());
    for arrival in &trace {
        let started = Instant::now();
        let response = bms.handle_request(&arrival.request, arrival.at);
        latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
        if response
            .results
            .iter()
            .any(|r| r.decision.basis == DecisionBasis::Overload)
        {
            shed += 1;
        } else {
            admitted += 1;
        }
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let stats = bms.admission_stats().expect("admission configured");
    let offered = trace.len() as u64;
    let capacity = admission().bucket.capacity
        + admission().bucket.refill_per_sec * config.duration_secs as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e15_overload\",\n",
            "  \"seed\": {seed},\n",
            "  \"duration_secs\": {duration},\n",
            "  \"offered\": {offered},\n",
            "  \"admitted\": {admitted},\n",
            "  \"shed\": {shed},\n",
            "  \"goodput_ratio\": {goodput:.4},\n",
            "  \"overload_factor\": {overload:.2},\n",
            "  \"emergency_shed\": {emergency_shed},\n",
            "  \"interactive_shed\": {interactive_shed},\n",
            "  \"batch_shed\": {batch_shed},\n",
            "  \"brownout_level\": \"{brownout:?}\",\n",
            "  \"p50_handle_us\": {p50:.1},\n",
            "  \"p99_handle_us\": {p99:.1}\n",
            "}}\n",
        ),
        seed = seed,
        duration = config.duration_secs,
        offered = offered,
        admitted = admitted,
        shed = shed,
        goodput = admitted as f64 / offered as f64,
        overload = offered as f64 / capacity,
        emergency_shed = stats.shed_for(Priority::Emergency),
        interactive_shed = stats.shed_for(Priority::Interactive),
        batch_shed = stats.shed_for(Priority::Batch),
        brownout = bms.brownout_level(),
        p50 = percentile_us(&latencies_us, 0.50),
        p99 = percentile_us(&latencies_us, 0.99),
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!("wrote {OUTPUT}: {admitted}/{offered} admitted, {shed} shed");
}

criterion_group!(benches, bench_storm_path, emit_storm_metrics);
criterion_main!(benches);
