//! Experiment E8 — §V.C's scalability claim: "With large number of users,
//! services, policies, and preferences the cost of enforcement can be
//! large enough to be prohibitive … we are working on techniques for
//! optimizing enforcement".
//!
//! Sweeps (users × policies × preferences-per-user) and measures
//! per-request decision latency for the naive (linear-scan) and indexed
//! enforcers. The expected shape: naive grows linearly with the corpus;
//! indexed stays near-flat — the crossover justifying the paper's
//! optimization work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tippers::{Enforcer, IndexedEnforcer, NaiveEnforcer};
use tippers_bench::{gen_flow, gen_policies, gen_preferences, service_pool, Lcg};
use tippers_ontology::Ontology;
use tippers_policy::ResolutionStrategy;
use tippers_spatial::fixtures::dbh;

fn bench_enforcement(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let building = dbh();
    let mut group = criterion.benchmark_group("e8_enforcement");
    group.sample_size(10);

    // (users, services, policies, prefs-per-user)
    let scales = [
        (10usize, 2usize, 20usize, 2usize),
        (100, 5, 100, 5),
        (1000, 10, 500, 5),
        (5000, 20, 2000, 10),
    ];
    for &(users, n_services, n_policies, per_user) in &scales {
        let services = service_pool(n_services);
        let policies = gen_policies(n_policies, &ontology, &building, &services, 1);
        let prefs = gen_preferences(users, per_user, &ontology, &building, &services, 1);
        let label = format!("u{users}_s{n_services}_p{n_policies}_pp{per_user}");

        // Pre-generate a pool of flows so the RNG is out of the hot path.
        let mut lcg = Lcg(0xF10);
        let flows: Vec<tippers::RequestFlow> = (0..256)
            .map(|_| gen_flow(&ontology, &building, &services, users, &mut lcg))
            .collect();

        let naive = NaiveEnforcer::new(
            policies.clone(),
            prefs.clone(),
            ResolutionStrategy::PolicyPrevails,
        );
        group.bench_with_input(BenchmarkId::new("naive", &label), &flows, |b, flows| {
            let mut i = 0usize;
            b.iter(|| {
                let flow = &flows[i % flows.len()];
                i += 1;
                std::hint::black_box(naive.decide(flow, &ontology, &building.model))
            });
        });

        let indexed = IndexedEnforcer::new(
            policies.clone(),
            prefs.clone(),
            ResolutionStrategy::PolicyPrevails,
            &ontology,
        );
        group.bench_with_input(BenchmarkId::new("indexed", &label), &flows, |b, flows| {
            let mut i = 0usize;
            b.iter(|| {
                let flow = &flows[i % flows.len()];
                i += 1;
                std::hint::black_box(indexed.decide(flow, &ontology, &building.model))
            });
        });
    }
    group.finish();
}

/// Index build cost: what the optimization pays up front.
fn bench_index_build(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let building = dbh();
    let services = service_pool(10);
    let mut group = criterion.benchmark_group("e8_index_build");
    group.sample_size(10);
    for &n in &[100usize, 1000, 5000] {
        let policies = gen_policies(n, &ontology, &building, &services, 2);
        let prefs = gen_preferences(n, 2, &ontology, &building, &services, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(policies, prefs),
            |b, (policies, prefs)| {
                b.iter(|| {
                    std::hint::black_box(IndexedEnforcer::new(
                        policies.clone(),
                        prefs.clone(),
                        ResolutionStrategy::PolicyPrevails,
                        &ontology,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enforcement, bench_index_build);
criterion_main!(benches);
