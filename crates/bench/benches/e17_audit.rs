//! Experiment E17 — accountability overhead: audit chain, retention
//! sweeps, disclosure quotas.
//!
//! Two legs:
//!
//! * criterion timing of the chain hot path (HMAC append + periodic
//!   seal), and
//! * a metrics leg producing `BENCH_e17_audit.json` — chain append and
//!   verify throughput, provable-sweep latency p50/p99 over a durable
//!   store, and the per-request overhead of disclosure-quota checks on
//!   the release path — so the accountability tax is a number, not a
//!   feeling.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (defaults to 7, the first CI seed).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tippers::wal::MemLog;
use tippers::{
    AuditChain, DataRequest, QuotaConfig, SubjectSelector, Tippers, TippersConfig, SEGMENT_RECORDS,
};
use tippers_ontology::Ontology;
use tippers_policy::{ActionSet, BuildingPolicy, PolicyId, ServiceId, Timestamp, UserId};
use tippers_sensors::{DeviceId, Observation, ObservationPayload};

const CHAIN_RECORDS: usize = 16_384;
const SWEEP_ROUNDS: usize = 48;
const SWEEP_BATCH: u32 = 64;
const QUOTA_REQUESTS: usize = 400;
/// Written to the workspace root so CI can pick it up regardless of the
/// bench process's working directory.
const OUTPUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e17_audit.json");

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn payload(i: usize) -> String {
    format!(
        "{{\"event\":\"decision\",\"seq\":{i},\"subject\":{},\"effect\":\"allow\"}}",
        i % 97
    )
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// A durable BMS holding a short-retention metering policy, for sweep
/// latency and quota overhead measurement.
fn metering_bms(quota: Option<QuotaConfig>) -> (Tippers, Ontology, tippers_spatial::fixtures::Dbh) {
    let ontology = Ontology::standard();
    let building = tippers_spatial::fixtures::dbh();
    let (mut bms, _) = Tippers::open_with(
        Box::new(MemLog::new()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig {
            quota,
            ..TippersConfig::default()
        },
    )
    .expect("open");
    let c = ontology.concepts().clone();
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Metering",
            building.building,
            c.power_consumption,
            c.energy_management,
        )
        .with_actions(ActionSet::ALL)
        .with_retention("PT1H".parse().expect("valid duration")),
    );
    (bms, ontology, building)
}

fn observations(
    building: &tippers_spatial::fixtures::Dbh,
    at: Timestamp,
    n: u32,
) -> Vec<Observation> {
    (0..n)
        .map(|i| Observation {
            device: DeviceId(i),
            timestamp: at,
            space: building.offices[0],
            payload: ObservationPayload::PowerReading { watts: 100.0 },
            subject: Some(UserId(u64::from(i % 8))),
        })
        .collect()
}

/// Criterion leg: the chain hot path — one HMAC-linked append, with the
/// periodic seal amortized in (every [`SEGMENT_RECORDS`] appends).
fn bench_chain_append(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("e17_audit");
    group.sample_size(20);
    group.bench_function("chain_append_seal", |b| {
        let mut chain = AuditChain::new();
        let mut i = 0usize;
        b.iter(|| {
            chain.append(payload(i));
            i += 1;
            if i.is_multiple_of(SEGMENT_RECORDS) {
                std::hint::black_box(chain.seal(SEGMENT_RECORDS));
            }
        });
    });
    group.finish();
}

/// Metrics leg: append/verify throughput, sweep latency, quota overhead.
fn emit_audit_metrics(_criterion: &mut Criterion) {
    let seed = fault_seed();

    // Chain append throughput (seal amortized in, as in production).
    let mut chain = AuditChain::new();
    let mut segments = Vec::new();
    let started = Instant::now();
    for i in 0..CHAIN_RECORDS {
        chain.append(payload(i));
        if (i + 1).is_multiple_of(SEGMENT_RECORDS) {
            segments.extend(chain.seal(SEGMENT_RECORDS));
        }
    }
    let append_secs = started.elapsed().as_secs_f64();
    let append_per_sec = CHAIN_RECORDS as f64 / append_secs;

    // Full-lineage verification throughput: every archived segment, its
    // root lineage, and continuity with the live chain.
    let started = Instant::now();
    let verified = chain
        .verify_archive(&segments)
        .expect("untampered archive verifies");
    let verify_secs = started.elapsed().as_secs_f64();
    assert_eq!(verified, CHAIN_RECORDS as u64);
    let verify_per_sec = verified as f64 / verify_secs;

    // Provable-sweep latency over a durable store: each round ingests a
    // batch of already-expired rows and times the bracketed sweep
    // (collect + WAL bracket + certificate + chain journal).
    let (mut bms, _ontology, building) = metering_bms(None);
    let mut sweep_us: Vec<f64> = Vec::with_capacity(SWEEP_ROUNDS);
    let mut swept_rows = 0u64;
    for round in 0..SWEEP_ROUNDS {
        let now = Timestamp((round as i64 + 1) * 7_200);
        let batch = observations(&building, Timestamp(now.0 - 7_200), SWEEP_BATCH);
        bms.ingest(&batch);
        let started = Instant::now();
        let removed = bms.sweep(now);
        sweep_us.push(started.elapsed().as_secs_f64() * 1e6);
        swept_rows += removed as u64;
    }
    assert_eq!(swept_rows, SWEEP_ROUNDS as u64 * u64::from(SWEEP_BATCH));
    assert_eq!(bms.deletion_certificates().len(), SWEEP_ROUNDS);
    bms.verify_audit_archive().expect("swept chain verifies");
    sweep_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // Quota-check overhead: the same release-path request storm with and
    // without a (never-exhausting) budget — the delta is the per-request
    // cost of the exhaustion check, the charge, and its durable record.
    let request = |ontology: &Ontology| DataRequest {
        service: ServiceId::new("analytics"),
        purpose: ontology.concepts().energy_management,
        data: ontology.concepts().power_consumption,
        subjects: SubjectSelector::One(UserId(1)),
        from: Timestamp(0),
        to: Timestamp::at(1, 0, 0),
        requester_space: None,
        priority: Default::default(),
        deadline: None,
    };
    let run = |quota: Option<QuotaConfig>| -> f64 {
        let (mut bms, ontology, building) = metering_bms(quota);
        bms.ingest(&observations(&building, Timestamp::at(0, 10, 0), 8));
        let req = request(&ontology);
        let now = Timestamp::at(0, 12, 0);
        let started = Instant::now();
        for _ in 0..QUOTA_REQUESTS {
            std::hint::black_box(bms.handle_request(&req, now));
        }
        started.elapsed().as_secs_f64() * 1e6 / QUOTA_REQUESTS as f64
    };
    let base_request_us = run(None);
    let quota_request_us = run(Some(QuotaConfig {
        budget: u32::MAX,
        window_secs: Some(3_600),
    }));
    let quota_overhead_us = quota_request_us - base_request_us;

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e17_audit\",\n",
            "  \"seed\": {seed},\n",
            "  \"chain_records\": {records},\n",
            "  \"append_per_sec\": {append:.0},\n",
            "  \"verify_per_sec\": {verify:.0},\n",
            "  \"sweeps\": {sweeps},\n",
            "  \"swept_rows\": {swept},\n",
            "  \"p50_sweep_us\": {sweep50:.1},\n",
            "  \"p99_sweep_us\": {sweep99:.1},\n",
            "  \"base_request_us\": {base:.2},\n",
            "  \"quota_request_us\": {quota:.2},\n",
            "  \"quota_check_overhead_us\": {overhead:.2}\n",
            "}}\n",
        ),
        seed = seed,
        records = CHAIN_RECORDS,
        append = append_per_sec,
        verify = verify_per_sec,
        sweeps = SWEEP_ROUNDS,
        swept = swept_rows,
        sweep50 = percentile_us(&sweep_us, 0.50),
        sweep99 = percentile_us(&sweep_us, 0.99),
        base = base_request_us,
        quota = quota_request_us,
        overhead = quota_overhead_us,
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!(
        "wrote {OUTPUT}: {append_per_sec:.0} appends/s, {verify_per_sec:.0} verifies/s, \
         p99 sweep {:.0}us, quota overhead {quota_overhead_us:.2}us",
        percentile_us(&sweep_us, 0.99)
    );
}

criterion_group!(benches, bench_chain_append, emit_audit_metrics);
criterion_main!(benches);
