//! Experiment E1 — Figure 1's ten-step interaction, timed end to end:
//! policy definition → capture/storage → publication → discovery →
//! notification → configuration → enforced request.

use criterion::{criterion_group, criterion_main, Criterion};
use tippers::{Tippers, TippersConfig};
use tippers_iota::{Iota, SensitivityProfile};
use tippers_irr::{DiscoveryBus, NetworkConfig};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, BuildingPolicy, PolicyId, Timestamp, UserGroup};
use tippers_sensors::{BuildingSimulator, DeploymentConfig, Population, SimulatorConfig};
use tippers_services::{register_service, Concierge};

fn small_sim(ontology: &Ontology) -> BuildingSimulator {
    BuildingSimulator::new(
        SimulatorConfig {
            seed: 1,
            population: Population::small(),
            tick_secs: 900,
            deployment: DeploymentConfig {
                cameras: 4,
                wifi_aps: 12,
                beacons: 12,
                power_meters: 8,
                motion_everywhere: false,
                hvac_per_floor: true,
                badge_readers: false,
            },
            identify_probability: 0.2,
        },
        ontology,
    )
}

fn bench_walkthrough(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let mut group = criterion.benchmark_group("e1_end_to_end");
    group.sample_size(10);

    group.bench_function("figure1_walkthrough", |b| {
        b.iter(|| {
            let mut sim = small_sim(&ontology);
            let building = sim.dbh().clone();
            let mut bms = Tippers::new(
                ontology.clone(),
                building.model.clone(),
                TippersConfig::default(),
            );
            bms.register_occupants(sim.occupants());
            bms.add_policy(
                catalog::policy2_emergency_location(PolicyId(0), building.building, &ontology)
                    .with_setting(BuildingPolicy::location_setting()),
            );
            register_service(&mut bms, &Concierge::new());
            sim.set_clock(Timestamp::at(0, 9, 0));
            let trace = sim.run_until(Timestamp::at(0, 10, 0));
            bms.ingest(&trace.observations);
            let mut bus = DiscoveryBus::new(NetworkConfig::default());
            let irr = bus.add_registry("IRR", building.building);
            bms.publish_policies(&mut bus, irr, Timestamp::at(0, 9, 0))
                .unwrap();
            let mary = sim.occupants()[0].user;
            let mut iota = Iota::new(
                mary,
                UserGroup::Staff,
                SensitivityProfile::fundamentalist(&ontology),
            );
            let now = Timestamp::at(0, 10, 0);
            let ads = iota.poll(&bus, &building.model, building.offices[0], now);
            iota.review(&ads, &ontology, now);
            iota.configure(&mut bms).unwrap();
            let c = ontology.concepts();
            std::hint::black_box(bms.locate(
                catalog::services::concierge(),
                c.navigation,
                mary,
                now,
            ))
        });
    });

    // Steady-state ingest throughput (steps 2-3 alone).
    group.bench_function("ingest_one_hour", |b| {
        let mut sim = small_sim(&ontology);
        sim.set_clock(Timestamp::at(0, 9, 0));
        let trace = sim.run_until(Timestamp::at(0, 10, 0));
        let building = sim.dbh().clone();
        b.iter(|| {
            let mut bms = Tippers::new(
                ontology.clone(),
                building.model.clone(),
                TippersConfig::default(),
            );
            bms.register_occupants(sim.occupants());
            bms.add_policy(catalog::policy2_emergency_location(
                PolicyId(0),
                building.building,
                &ontology,
            ));
            std::hint::black_box(bms.ingest(&trace.observations))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_walkthrough);
criterion_main!(benches);
