//! Experiment E12 — the resilience subsystem's hot-path overhead.
//!
//! The fail-closed enforcement path, the health monitor, and the fault
//! plane all sit on the per-request hot path. This bench quantifies their
//! cost: `decide_baseline` replays E8's indexed-enforcer loop (the
//! reference number), and the `handle_request_*` series runs the same
//! decisions through the full BMS with a disarmed plan, and with a plan
//! armed at an off-path point. The disarmed full-path number must track
//! the pre-resilience baseline within noise (<5% on the decision loop);
//! arming points that never fire on the request path must not change it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tippers::{DataRequest, Enforcer, FaultPlan, FaultPoint, IndexedEnforcer, SubjectSelector};
use tippers_bench::{build_bms, gen_flow, gen_policies, gen_preferences, service_pool, Lcg};
use tippers_ontology::Ontology;
use tippers_policy::{ResolutionStrategy, Timestamp};
use tippers_spatial::fixtures::dbh;

const USERS: usize = 1000;
const SERVICES: usize = 10;
const POLICIES: usize = 500;
const PREFS_PER_USER: usize = 5;

fn bench_request_path(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let building = dbh();
    let services = service_pool(SERVICES);
    let policies = gen_policies(POLICIES, &ontology, &building, &services, 1);
    let prefs = gen_preferences(USERS, PREFS_PER_USER, &ontology, &building, &services, 1);
    let mut lcg = Lcg(0xF12);
    let flows: Vec<tippers::RequestFlow> = (0..256)
        .map(|_| gen_flow(&ontology, &building, &services, USERS, &mut lcg))
        .collect();

    let mut group = criterion.benchmark_group("e12_resilience");
    group.sample_size(10);

    // Reference: E8's indexed decision loop, no BMS around it.
    let indexed = IndexedEnforcer::new(
        policies.clone(),
        prefs.clone(),
        ResolutionStrategy::PolicyPrevails,
        &ontology,
    );
    group.bench_with_input(
        BenchmarkId::new("decide_baseline", "u1000_p500"),
        &flows,
        |b, flows| {
            let mut i = 0usize;
            b.iter(|| {
                let flow = &flows[i % flows.len()];
                i += 1;
                std::hint::black_box(indexed.decide(flow, &ontology, &building.model))
            });
        },
    );

    // The same decisions through the full fail-closed request path, over
    // the workload fixture shared with E13.
    let requests: Vec<DataRequest> = flows
        .iter()
        .map(|f| DataRequest {
            service: f.service.clone().unwrap_or_else(|| services[0].clone()),
            purpose: f.purpose,
            data: f.data,
            subjects: SubjectSelector::One(f.subject),
            from: Timestamp::at(0, 8, 0),
            to: Timestamp::at(0, 12, 0),
            requester_space: f.requester_space,
            priority: Default::default(),
            deadline: None,
        })
        .collect();

    for (label, plan) in [
        ("handle_request_disarmed", FaultPlan::disarmed()),
        (
            // Armed at a point the request path never consults: the plan is
            // non-empty, but the hot path must not slow down.
            "handle_request_armed_offpath",
            FaultPlan::seeded(42).with_fault(FaultPoint::PolicyPublish, 1.0),
        ),
    ] {
        let mut bms = build_bms(&ontology, &building, &policies, &prefs, USERS, plan);
        let now = Timestamp::at(0, 12, 0);
        group.bench_with_input(
            BenchmarkId::new(label, "u1000_p500"),
            &requests,
            |b, reqs| {
                let mut i = 0usize;
                b.iter(|| {
                    let req = &reqs[i % reqs.len()];
                    i += 1;
                    std::hint::black_box(bms.handle_request(req, now))
                });
            },
        );
    }
    group.finish();
}

/// The resilience primitives themselves (per-call costs, all virtual).
fn bench_primitives(criterion: &mut Criterion) {
    use tippers_resilience::{BackoffSchedule, BreakerConfig, CircuitBreaker};
    let mut group = criterion.benchmark_group("e12_primitives");
    group.sample_size(10);

    let schedule = BackoffSchedule::default();
    group.bench_function("backoff_delay", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % 16;
            std::hint::black_box(schedule.delay_ms(k))
        });
    });

    group.bench_function("breaker_admit_closed", |b| {
        let mut breaker = CircuitBreaker::new(BreakerConfig::default());
        let mut now = 0i64;
        b.iter(|| {
            now += 1;
            let ok = breaker.admit(now);
            breaker.record_success();
            std::hint::black_box(ok)
        });
    });

    let disarmed = FaultPlan::disarmed();
    group.bench_function("fault_plan_disarmed_consult", |b| {
        b.iter(|| std::hint::black_box(disarmed.should_fail(FaultPoint::StoreWrite)));
    });
    group.finish();
}

criterion_group!(benches, bench_request_path, bench_primitives);
criterion_main!(benches);
