//! Experiment E7 — conflict detection at scale (§III.B's "detected …
//! with the help of a policy reasoner", design decision D2).
//!
//! Sweeps n policies × m preferences and compares the pairwise reasoner
//! against the category-indexed one. Expected shape: naive is Θ(n·m);
//! indexed touches only preferences' candidate sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tippers_bench::{gen_policies, gen_preferences, service_pool};
use tippers_ontology::Ontology;
use tippers_policy::conflict::{detect_conflicts_naive, ConflictIndex};
use tippers_policy::ResolutionStrategy;
use tippers_spatial::fixtures::dbh;

fn bench_conflicts(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let building = dbh();
    let services = service_pool(5);
    let mut group = criterion.benchmark_group("e7_conflicts");
    group.sample_size(10);

    for &n in &[30usize, 100, 300, 1000] {
        let policies = gen_policies(n, &ontology, &building, &services, 3);
        let prefs = gen_preferences(n, 1, &ontology, &building, &services, 3);

        // Naive is quadratic; skip the largest size to keep runs bounded.
        if n <= 300 {
            group.bench_with_input(
                BenchmarkId::new("naive", n),
                &(policies.clone(), prefs.clone()),
                |b, (policies, prefs)| {
                    b.iter(|| {
                        std::hint::black_box(detect_conflicts_naive(
                            policies,
                            prefs,
                            &ontology,
                            &building.model,
                            ResolutionStrategy::PolicyPrevails,
                        ))
                    });
                },
            );
        }

        // Indexed: one-off build amortized over many preference changes;
        // measure detection with a prebuilt index.
        let index = ConflictIndex::build(&policies, &ontology);
        group.bench_with_input(
            BenchmarkId::new("indexed", n),
            &(policies, prefs),
            |b, (policies, prefs)| {
                b.iter(|| {
                    std::hint::black_box(index.detect(
                        policies,
                        prefs,
                        &ontology,
                        &building.model,
                        ResolutionStrategy::PolicyPrevails,
                    ))
                });
            },
        );
    }
    group.finish();
}

/// Incremental check: the cost of validating ONE newly submitted
/// preference against the whole policy corpus — the interactive path
/// (step 8 of Figure 1).
fn bench_single_submission(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let building = dbh();
    let services = service_pool(5);
    let mut group = criterion.benchmark_group("e7_single_submission");
    for &n in &[100usize, 1000, 5000] {
        let policies = gen_policies(n, &ontology, &building, &services, 5);
        // Worst-case single submission: an unconditional location deny,
        // which reaches every WiFi/beacon/camera/location policy.
        let one_pref = vec![tippers_policy::catalog::preference2_no_location(
            tippers_policy::PreferenceId(0),
            tippers_policy::UserId(0),
            &ontology,
        )];
        let index = ConflictIndex::build(&policies, &ontology);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(policies, one_pref),
            |b, (policies, one_pref)| {
                b.iter(|| {
                    std::hint::black_box(index.detect(
                        policies,
                        one_pref,
                        &ontology,
                        &building.model,
                        ResolutionStrategy::PolicyPrevails,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conflicts, bench_single_submission);
criterion_main!(benches);
