//! Experiment E2 — the policy language itself (Figures 2–4): parse,
//! serialize, validate, and codec round-trip throughput.
//!
//! The IoTA parses policy documents on a phone while walking through a
//! building, so parse latency bounds how fresh its picture can be.

use criterion::{criterion_group, criterion_main, Criterion};
use tippers_ontology::Ontology;
use tippers_policy::{
    catalog, figures, validate_document, PolicyCodec, PolicyDocument, PolicyId,
    ServicePolicyDocument, SettingsDocument,
};
use tippers_spatial::fixtures::dbh;

fn bench_figures(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("e2_figures");
    group.bench_function("parse_fig2", |b| {
        b.iter(|| {
            std::hint::black_box(
                serde_json::from_str::<PolicyDocument>(figures::FIG2_JSON).unwrap(),
            )
        });
    });
    group.bench_function("parse_fig3", |b| {
        b.iter(|| {
            std::hint::black_box(
                serde_json::from_str::<ServicePolicyDocument>(figures::FIG3_JSON).unwrap(),
            )
        });
    });
    group.bench_function("parse_fig4", |b| {
        b.iter(|| {
            std::hint::black_box(
                serde_json::from_str::<SettingsDocument>(figures::FIG4_JSON).unwrap(),
            )
        });
    });
    let doc = figures::fig2_document();
    group.bench_function("serialize_fig2", |b| {
        b.iter(|| std::hint::black_box(serde_json::to_string(&doc).unwrap()));
    });
    group.bench_function("validate_fig2", |b| {
        b.iter(|| std::hint::black_box(validate_document(&doc)));
    });
    group.finish();
}

fn bench_codec(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let building = dbh();
    let codec = PolicyCodec::new(&ontology, &building.model);
    let policy = catalog::policy2_emergency_location(PolicyId(2), building.building, &ontology);
    let doc = codec.to_document(&policy);
    let mut group = criterion.benchmark_group("e2_codec");
    group.bench_function("export_policy2", |b| {
        b.iter(|| std::hint::black_box(codec.to_document(&policy)));
    });
    group.bench_function("import_policy2", |b| {
        b.iter(|| std::hint::black_box(codec.from_document(&doc, 1).unwrap()));
    });
    group.bench_function("import_paper_fig2", |b| {
        let fig2 = figures::fig2_document();
        b.iter(|| std::hint::black_box(codec.from_document(&fig2, 1).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_codec);
criterion_main!(benches);
