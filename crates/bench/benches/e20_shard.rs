//! Experiment E20 — sharded enforcement scale and crash recovery.
//!
//! Two legs:
//!
//! * criterion timing of the router's batched decision path on an
//!   8-shard runtime (partition → concurrent dispatch → reassembly), and
//! * a metrics leg producing `BENCH_e20_shard.json` — aggregate
//!   decisions/sec (and per shard) at 1/2/4/8 shards over a 100k-user
//!   directory, the 1→8 scaling efficiency, throughput with the
//!   directory grown to 1M users, and recovery p50/p99 across repeated
//!   kill→rebuild cycles (injected `shard-panic`, WAL-partition replay).
//!
//! The ≥4× aggregate-speedup check only runs when the host actually has
//! ≥8 cores — on a single-core runner, 8 workers time-slice one CPU and
//! the sharded runtime can only demonstrate isolation, not speedup.
//!
//! Seeded via `TIPPERS_FAULT_SEED` (defaults to 7, the first CI seed).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tippers::{
    DataRequest, DecisionBasis, FaultPoint, Priority, ShardSpec, ShardedTippers, SubjectSelector,
    TippersConfig,
};
use tippers_ontology::Ontology;
use tippers_policy::{
    ActionSet, BuildingPolicy, Effect, PolicyId, PreferenceId, PreferenceScope, ServiceId,
    Timestamp, UserGroup, UserId, UserPreference,
};
use tippers_sensors::Occupant;
use tippers_spatial::fixtures::dbh;

/// Directory size for the shard-count sweep.
const USERS: u64 = 100_000;
/// Directory size for the large-population leg.
const USERS_LARGE: u64 = 1_000_000;
/// Distinct subjects the request pool cycles over (spans every shard).
const REQUEST_COHORT: u64 = 4_096;
/// Decisions timed per shard-count configuration.
const DECISIONS: usize = 8_192;
/// Requests per `handle_batch` call.
const BATCH: usize = 512;
/// Kill→rebuild cycles for the recovery-latency distribution.
const KILLS: usize = 24;
/// Written to the workspace root so CI can pick it up regardless of the
/// bench process's working directory.
const OUTPUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e20_shard.json");

fn fault_seed() -> u64 {
    std::env::var("TIPPERS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// A sharded runtime over the DBH building: `users` registered
/// occupants, a building-wide WiFi-logging policy, and a deny
/// preference for every 16th user in the request cohort so the decision
/// path exercises preference resolution, not just the policy index.
fn shard_bms(users: u64, shards: usize) -> ShardedTippers {
    let ontology = Ontology::standard();
    let building = dbh();
    let c = ontology.concepts().clone();
    let mut bms = ShardedTippers::new(
        ontology,
        building.model.clone(),
        TippersConfig::default(),
        ShardSpec {
            shards,
            ..ShardSpec::default()
        },
    );
    let occupants: Vec<Occupant> = (0..users)
        .map(|u| Occupant::new(UserId(u), format!("user-{u}"), UserGroup::GradStudent))
        .collect();
    bms.register_occupants(&occupants);
    bms.add_policy(
        BuildingPolicy::new(
            PolicyId(0),
            "Network logging",
            building.building,
            c.wifi_association,
            c.logging,
        )
        .with_actions(ActionSet::ALL),
    );
    let now = Timestamp::at(0, 8, 0);
    for u in (0..REQUEST_COHORT.min(users)).step_by(16) {
        bms.submit_preference(
            UserPreference::new(
                PreferenceId(0),
                UserId(u),
                PreferenceScope {
                    data: Some(c.wifi_association),
                    ..Default::default()
                },
                Effect::Deny,
            ),
            now,
        );
    }
    bms
}

fn request_for(user: u64, now: Timestamp) -> DataRequest {
    let c = Ontology::standard().concepts().clone();
    DataRequest {
        service: ServiceId::new("Concierge"),
        purpose: c.logging,
        data: c.wifi_association,
        subjects: SubjectSelector::One(UserId(user)),
        from: Timestamp::at(0, 0, 0),
        to: now,
        requester_space: None,
        priority: Priority::Interactive,
        deadline: None,
    }
}

/// Aggregate decisions/sec through `handle_batch` on an already-built
/// runtime: `DECISIONS` single-subject requests cycling the cohort.
fn measure_decisions_per_sec(bms: &mut ShardedTippers, users: u64) -> f64 {
    let now = Timestamp::at(0, 9, 0);
    let cohort = REQUEST_COHORT.min(users);
    let pool: Vec<DataRequest> = (0..cohort).map(|u| request_for(u, now)).collect();
    // Warm every shard's request path before timing.
    let warm: Vec<DataRequest> = pool.iter().take(BATCH).cloned().collect();
    assert_eq!(bms.handle_batch(&warm, now).len(), warm.len());

    let mut answered = 0usize;
    let started = Instant::now();
    let mut cursor = 0usize;
    while answered < DECISIONS {
        let batch: Vec<DataRequest> = (0..BATCH)
            .map(|i| pool[(cursor + i) % pool.len()].clone())
            .collect();
        cursor = (cursor + BATCH) % pool.len();
        let responses = bms.handle_batch(&batch, now);
        assert_eq!(responses.len(), batch.len());
        answered += responses.len();
    }
    let stats = bms.stats();
    assert_eq!(stats.down, 0, "no shard may fall over in the clean sweep");
    assert_eq!(stats.unavailable_denials, 0);
    answered as f64 / started.elapsed().as_secs_f64()
}

/// Criterion leg: one 512-request batch through the 8-shard router.
fn bench_shard_batch(criterion: &mut Criterion) {
    let mut bms = shard_bms(10_000, 8);
    let now = Timestamp::at(0, 9, 0);
    let batch: Vec<DataRequest> = (0..BATCH as u64).map(|u| request_for(u, now)).collect();
    let mut group = criterion.benchmark_group("e20_shard");
    group.sample_size(10);
    group.bench_function("handle_batch_512_8shards", |b| {
        b.iter(|| std::hint::black_box(bms.handle_batch(&batch, now).len()));
    });
    group.finish();
}

/// Metrics leg: shard sweep, population scale, recovery distribution.
fn emit_shard_metrics(_criterion: &mut Criterion) {
    let seed = fault_seed();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Shard-count sweep at 100k users.
    let sweep: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&shards| {
            let mut bms = shard_bms(USERS, shards);
            let dps = measure_decisions_per_sec(&mut bms, USERS);
            println!("e20: {shards} shard(s): {dps:.0} decisions/s aggregate");
            (shards, dps)
        })
        .collect();
    let dps_1 = sweep[0].1;
    let dps_8 = sweep[3].1;
    let efficiency_8x = dps_8 / (8.0 * dps_1);
    if cores >= 8 {
        assert!(
            dps_8 >= 4.0 * dps_1,
            "8 shards must deliver >=4x aggregate decisions/sec over 1 \
             shard on a >=8-core host (got {dps_8:.0} vs {dps_1:.0})"
        );
    } else {
        println!("e20: {cores} core(s) — skipping the >=4x scaling assertion");
    }

    // Large-population leg: the same request mix with the directory
    // grown to 1M users across 8 shards.
    let mut large = shard_bms(USERS_LARGE, 8);
    let dps_large = measure_decisions_per_sec(&mut large, USERS_LARGE);
    drop(large);

    // Recovery distribution: repeatedly panic one shard via an injected
    // fault on its next request, then drive virtual time forward one
    // second so the supervisor restarts it (WAL-partition replay +
    // directory re-registration), recording each rebuild's wall time.
    let mut bms = shard_bms(USERS, 8);
    for cycle in 0..KILLS {
        let kill_at = Timestamp::at(1, 10, 0) + (cycle as i64) * 2;
        let victim = (cycle as u64) % REQUEST_COHORT;
        bms.config_fault_plan()
            .arm_limited(FaultPoint::ShardPanic, 1.0, 1);
        let denied = bms.handle_request(&request_for(victim, kill_at), kill_at);
        assert!(
            denied
                .results
                .iter()
                .all(|r| r.decision.basis == DecisionBasis::ShardUnavailable),
            "a killed shard must fail closed under ShardUnavailable"
        );
        let recovered = bms.handle_request(&request_for(victim, kill_at + 1), kill_at + 1);
        assert_eq!(recovered.results.len(), 1, "owner shard must be back");
    }
    let stats = bms.stats();
    assert_eq!(stats.panics, KILLS as u64);
    assert_eq!(stats.restarts, KILLS as u64);
    let mut recovery: Vec<u64> = bms.recovery_times_us().to_vec();
    assert_eq!(recovery.len(), KILLS);
    recovery.sort_unstable();
    let recovery_p50_us = percentile_us(&recovery, 0.50);
    let recovery_p99_us = percentile_us(&recovery, 0.99);
    assert!(recovery_p99_us > 0, "rebuild cannot be free");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e20_shard\",\n",
            "  \"seed\": {seed},\n",
            "  \"cores\": {cores},\n",
            "  \"users\": {users},\n",
            "  \"decisions\": {decisions},\n",
            "  \"decisions_per_sec\": {dps8:.0},\n",
            "  \"decisions_per_sec_per_shard\": {per_shard:.0},\n",
            "  \"sweep_shards\": [1, 2, 4, 8],\n",
            "  \"sweep_decisions_per_sec\": [{s1:.0}, {s2:.0}, {s4:.0}, {s8:.0}],\n",
            "  \"scaling_efficiency_1_to_8\": {eff:.3},\n",
            "  \"large_population_users\": {users_large},\n",
            "  \"large_population_decisions_per_sec\": {dps_large:.0},\n",
            "  \"kills\": {kills},\n",
            "  \"recovery_p50_us\": {p50},\n",
            "  \"recovery_p99_us\": {p99}\n",
            "}}\n",
        ),
        seed = seed,
        cores = cores,
        users = USERS,
        decisions = DECISIONS,
        dps8 = dps_8,
        per_shard = dps_8 / 8.0,
        s1 = sweep[0].1,
        s2 = sweep[1].1,
        s4 = sweep[2].1,
        s8 = sweep[3].1,
        eff = efficiency_8x,
        users_large = USERS_LARGE,
        dps_large = dps_large,
        kills = KILLS,
        p50 = recovery_p50_us,
        p99 = recovery_p99_us,
    );
    std::fs::write(OUTPUT, &json).expect("write metrics");
    println!(
        "wrote {OUTPUT}: {dps_8:.0} decisions/s at 8 shards \
         (eff {efficiency_8x:.2} vs 1 shard on {cores} core(s)), \
         {dps_large:.0} decisions/s at 1M users, \
         recovery p50 {recovery_p50_us}us p99 {recovery_p99_us}us over {KILLS} kills"
    );
}

criterion_group!(benches, bench_shard_batch, emit_shard_metrics);
criterion_main!(benches);
