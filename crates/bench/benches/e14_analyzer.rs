//! Experiment E14 — static analysis throughput.
//!
//! Measures the full multi-pass lint run (`tippers_analyzer::analyze`) over
//! deployments of growing size: the paper's figures corpus plus n generated
//! policies and preferences. The quadratic passes (retention contradictions,
//! shadowed preferences) dominate at scale; the inference-leak fixpoint is
//! per-document and stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tippers_analyzer::{analyze, DeploymentCorpus};
use tippers_bench::{gen_policies, gen_preferences, service_pool};

fn corpus_of_size(n: usize) -> DeploymentCorpus {
    let mut corpus = DeploymentCorpus::figures();
    let dbh = tippers_spatial::fixtures::dbh();
    let services = service_pool(4);
    corpus.policies.extend(gen_policies(
        n,
        &corpus.ontology.clone(),
        &dbh,
        &services,
        14,
    ));
    corpus.preferences.extend(gen_preferences(
        n / 2,
        2,
        &corpus.ontology.clone(),
        &dbh,
        &services,
        14,
    ));
    corpus
}

fn bench_analyzer(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("e14_analyzer");
    group.sample_size(10);

    // The CI gate's exact workload: the paper's own corpus.
    let figures = DeploymentCorpus::figures();
    group.bench_function("figures", |b| {
        b.iter(|| std::hint::black_box(analyze(&figures)));
    });

    for &n in &[30usize, 100, 300] {
        let corpus = corpus_of_size(n);
        group.bench_with_input(BenchmarkId::new("analyze", n), &corpus, |b, corpus| {
            b.iter(|| std::hint::black_box(analyze(corpus)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
