//! Experiment E13 — write-ahead-log overhead and recovery cost.
//!
//! Durability is only worth shipping if its hot-path tax is small and its
//! recovery is fast. This bench measures both over the same generated
//! mutation workload the recovery fuzz harness replays:
//!
//! * `mutate_ephemeral` — the workload against a plain in-memory BMS
//!   (the pre-durability baseline);
//! * `mutate_durable` — the same workload with every mutation framed,
//!   checksummed, appended and synced to an in-memory log;
//! * `recover_replay` — `Tippers::open_with` over the finished log:
//!   segment scan, checksum verification, and record replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tippers::wal::MemLog;
use tippers::{Tippers, TippersConfig};
use tippers_bench::{apply_mutation, gen_mutations, Mutation};
use tippers_ontology::Ontology;

const MUTATIONS: usize = 200;
const SEED: u64 = 42;

fn bench_wal(criterion: &mut Criterion) {
    let ontology = Ontology::standard();
    let (building, occupants, mutations) = gen_mutations(MUTATIONS, &ontology, SEED);
    // The durable-path numbers should not be dominated by checkpoint
    // compaction; strip checkpoints so both series run identical work.
    let steps: Vec<Mutation> = mutations
        .iter()
        .filter(|m| !matches!(m, Mutation::Checkpoint))
        .cloned()
        .collect();

    let mut group = criterion.benchmark_group("e13_wal");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("mutate_ephemeral", format!("n{}", steps.len())),
        &steps,
        |b, steps| {
            b.iter(|| {
                let mut bms = Tippers::new(
                    ontology.clone(),
                    building.model.clone(),
                    TippersConfig::default(),
                );
                bms.register_occupants(&occupants);
                for m in steps {
                    apply_mutation(&mut bms, m);
                }
                std::hint::black_box(bms.store().len())
            });
        },
    );

    group.bench_with_input(
        BenchmarkId::new("mutate_durable", format!("n{}", steps.len())),
        &steps,
        |b, steps| {
            b.iter(|| {
                let (mut bms, _) = Tippers::open_with(
                    Box::new(MemLog::new()),
                    ontology.clone(),
                    building.model.clone(),
                    TippersConfig::default(),
                )
                .expect("open");
                bms.register_occupants(&occupants);
                for m in steps {
                    apply_mutation(&mut bms, m);
                }
                std::hint::black_box(bms.store().len())
            });
        },
    );

    // Recovery: replay a finished log (including its checkpoints).
    let log = MemLog::new();
    let (mut bms, _) = Tippers::open_with(
        Box::new(log.clone()),
        ontology.clone(),
        building.model.clone(),
        TippersConfig::default(),
    )
    .expect("open");
    bms.register_occupants(&occupants);
    for m in &mutations {
        apply_mutation(&mut bms, m);
    }
    group.bench_with_input(
        BenchmarkId::new("recover_replay", format!("n{MUTATIONS}")),
        &log,
        |b, log| {
            b.iter(|| {
                let (recovered, report) = Tippers::open_with(
                    Box::new(log.deep_copy()),
                    ontology.clone(),
                    building.model.clone(),
                    TippersConfig::default(),
                )
                .expect("recover");
                assert_eq!(report.truncated_tails, 0);
                std::hint::black_box(recovered.store().len())
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
