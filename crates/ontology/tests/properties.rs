//! Property-based tests for taxonomies and the inference engine.

use proptest::prelude::*;
use tippers_ontology::{ConceptId, InferenceEngine, InferenceRule, Ontology, Taxonomy};

/// Builds a random multi-parent DAG: each concept picks 1–2 parents among
/// the already-added concepts.
fn arb_taxonomy(max: usize) -> impl Strategy<Value = Taxonomy> {
    (2usize..=max).prop_flat_map(|n| {
        proptest::collection::vec((any::<u64>(), any::<bool>()), n - 1).prop_map(move |choices| {
            let mut t = Taxonomy::new();
            let mut ids = vec![t.add_root("c0", "C0")];
            for (i, (seed, two_parents)) in choices.iter().enumerate() {
                let p1 = ids[(*seed as usize) % ids.len()];
                let mut parents = vec![p1];
                if *two_parents && ids.len() > 1 {
                    let p2 = ids[((*seed >> 17) as usize) % ids.len()];
                    if p2 != p1 {
                        parents.push(p2);
                    }
                }
                let key = format!("c{}", i + 1);
                ids.push(t.try_add(&key, &key, &parents).expect("valid parents"));
            }
            t
        })
    })
}

fn all_ids(t: &Taxonomy) -> Vec<ConceptId> {
    t.iter().map(tippers_ontology::Concept::id).collect()
}

proptest! {
    /// Subsumption is a partial order and agrees with ancestors().
    #[test]
    fn is_a_partial_order(t in arb_taxonomy(20), seed in any::<u64>()) {
        let ids = all_ids(&t);
        let pick = |s: u64| ids[(s as usize) % ids.len()];
        let (a, b, c) = (pick(seed), pick(seed >> 8), pick(seed >> 16));
        prop_assert!(t.is_a(a, a));
        if t.is_a(a, b) && t.is_a(b, a) {
            prop_assert_eq!(a, b);
        }
        if t.is_a(a, b) && t.is_a(b, c) {
            prop_assert!(t.is_a(a, c));
        }
        // ancestors() is exactly the strict is_a set.
        for anc in t.ancestors(a) {
            prop_assert!(t.is_a(a, anc));
        }
        prop_assert_eq!(
            t.ancestors(a).contains(&b),
            a != b && t.is_a(a, b)
        );
    }

    /// descendants() is the inverse relation of ancestors().
    #[test]
    fn descendants_inverse_of_ancestors(t in arb_taxonomy(20)) {
        for c in all_ids(&t) {
            for d in t.descendants(c) {
                prop_assert!(t.ancestors(d).contains(&c));
            }
        }
    }

    /// `compatible` is symmetric and implied by comparability.
    #[test]
    fn compatible_symmetric(t in arb_taxonomy(16), seed in any::<u64>()) {
        let ids = all_ids(&t);
        let a = ids[(seed as usize) % ids.len()];
        let b = ids[((seed >> 13) as usize) % ids.len()];
        prop_assert_eq!(t.compatible(a, b), t.compatible(b, a));
        if t.is_a(a, b) || t.is_a(b, a) {
            prop_assert!(t.compatible(a, b));
        }
    }

    /// Distance is a metric-ish: zero iff equal, symmetric.
    #[test]
    fn distance_symmetric(t in arb_taxonomy(16), seed in any::<u64>()) {
        let ids = all_ids(&t);
        let a = ids[(seed as usize) % ids.len()];
        let b = ids[((seed >> 11) as usize) % ids.len()];
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, a), Some(0));
        if a != b {
            prop_assert_ne!(t.distance(a, b), Some(0));
        }
    }

    /// Inference closure is monotone: more collected data never shrinks
    /// the inferable set, and confidences never exceed 1.
    #[test]
    fn closure_monotone(seed in any::<u64>()) {
        let ont = Ontology::standard();
        let ids: Vec<ConceptId> = ont.data.iter().map(tippers_ontology::Concept::id).collect();
        let a = ids[(seed as usize) % ids.len()];
        let b = ids[((seed >> 9) as usize) % ids.len()];
        let engine = ont.inference();
        let small = engine.closure(&[a]);
        let big = engine.closure(&[a, b]);
        for inf in &small {
            prop_assert!(inf.confidence > 0.0 && inf.confidence <= 1.0);
            let grown = big
                .iter()
                .find(|i| i.concept == inf.concept)
                .map_or(if b == inf.concept { 1.0 } else { 0.0 }, |i| i.confidence);
            prop_assert!(
                grown + 1e-9 >= inf.confidence,
                "confidence of {:?} dropped from {} to {}",
                inf.concept, inf.confidence, grown
            );
        }
    }

    /// The memoized single-source closure agrees with the engine.
    #[test]
    fn cached_closure_matches_engine(seed in any::<u64>()) {
        let ont = Ontology::standard();
        let ids: Vec<ConceptId> = ont.data.iter().map(tippers_ontology::Concept::id).collect();
        let src = ids[(seed as usize) % ids.len()];
        let fresh = ont.inference().closure(&[src]);
        let cached = ont.inferable_from(src);
        prop_assert_eq!(&fresh, &cached.to_vec());
        for &target in &ids {
            prop_assert_eq!(
                ont.can_infer_from(src, target),
                ont.inference().can_infer(&[src], target)
            );
        }
    }
}

#[test]
fn rule_chaining_is_order_independent() {
    // Shuffling the rule list never changes the closure fixpoint.
    let mut t = Taxonomy::new();
    let root = t.add_root("d", "D");
    let a = t.add("a", "A", root);
    let b = t.add("b", "B", root);
    let c = t.add("c", "C", root);
    let d = t.add("dd", "DD", root);
    let rules = vec![
        InferenceRule::new("a->b", vec![a], b, 0.9),
        InferenceRule::new("b->c", vec![b], c, 0.8),
        InferenceRule::new("c->d", vec![c], d, 0.7),
    ];
    let forward = InferenceEngine::new(&t, &rules).closure(&[a]);
    let reversed: Vec<InferenceRule> = rules.iter().rev().cloned().collect();
    let mut backward = InferenceEngine::new(&t, &reversed).closure(&[a]);
    backward.sort_by_key(|i| i.concept);
    let mut forward = forward;
    forward.sort_by_key(|i| i.concept);
    assert_eq!(forward.len(), backward.len());
    for (f, bk) in forward.iter().zip(&backward) {
        assert_eq!(f.concept, bk.concept);
        assert!((f.confidence - bk.confidence).abs() < 1e-9);
    }
}
