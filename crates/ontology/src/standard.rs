use serde::{Deserialize, Serialize};

use crate::inference::{InferenceEngine, InferenceRule};
use crate::taxonomy::{ConceptId, Taxonomy};

/// Frequently used concept ids of the [`Ontology::standard`] vocabulary,
/// resolved once so call sites don't repeat string lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct StandardConcepts {
    // --- sensor classes ---
    /// Root of the sensor taxonomy.
    pub sensor: ConceptId,
    /// WiFi access point.
    pub wifi_ap: ConceptId,
    /// Bluetooth Low Energy beacon.
    pub ble_beacon: ConceptId,
    /// Surveillance camera.
    pub camera: ConceptId,
    /// Power outlet meter.
    pub power_meter: ConceptId,
    /// Temperature sensor.
    pub temperature_sensor: ConceptId,
    /// Motion / presence sensor.
    pub motion_sensor: ConceptId,
    /// Badge (ID card) reader.
    pub badge_reader: ConceptId,
    /// Fingerprint reader.
    pub fingerprint_reader: ConceptId,
    /// HVAC actuator (thermostat/fan).
    pub hvac: ConceptId,

    // --- data categories ---
    /// Root of the data taxonomy.
    pub data: ConceptId,
    /// WiFi association events (MAC, AP, timestamp) — Figure 2's observation.
    pub wifi_association: ConceptId,
    /// BLE beacon sightings.
    pub bluetooth_sighting: ConceptId,
    /// Any location data.
    pub location: ConceptId,
    /// Fine-grained (in-room point) location.
    pub location_fine: ConceptId,
    /// Room-level location.
    pub location_room: ConceptId,
    /// Coarse (floor/building) location.
    pub location_coarse: ConceptId,
    /// Room-occupancy status (Preference 1 suppresses this after-hours).
    pub occupancy: ConceptId,
    /// Camera imagery.
    pub image: ConceptId,
    /// Power consumption readings.
    pub power_consumption: ConceptId,
    /// Ambient temperature readings.
    pub ambient_temperature: ConceptId,
    /// Device MAC addresses.
    pub device_mac: ConceptId,
    /// Personal identity.
    pub person_identity: ConceptId,
    /// Daily working pattern.
    pub working_pattern: ConceptId,
    /// Occupant role (staff / grad / undergrad).
    pub occupant_role: ConceptId,
    /// Social ties (with whom time is spent).
    pub social_ties: ConceptId,
    /// Health status.
    pub health: ConceptId,
    /// Public schedules (background knowledge in the §II.A attack).
    pub public_schedule: ConceptId,
    /// Event details (Policy 4 gates these by proximity).
    pub event_details: ConceptId,
    /// Meeting details and participants (Preference 4).
    pub meeting_details: ConceptId,

    // --- purposes ---
    /// Root of the purpose taxonomy.
    pub purpose: ConceptId,
    /// Emergency response (Policy 2's purpose).
    pub emergency_response: ConceptId,
    /// Security surveillance.
    pub surveillance: ConceptId,
    /// Access control (Policy 3).
    pub access_control: ConceptId,
    /// Sharing with law enforcement (§IV.B.3).
    pub law_enforcement: ConceptId,
    /// HVAC / comfort automation (Policy 1).
    pub comfort: ConceptId,
    /// Energy management.
    pub energy_management: ConceptId,
    /// Connectivity logging (the WiFi log's "straightforward" purpose).
    pub logging: ConceptId,
    /// Providing a building service (Figure 3's `providing_service`).
    pub providing_service: ConceptId,
    /// Indoor navigation / directions (Concierge).
    pub navigation: ConceptId,
    /// Meeting scheduling (Smart Meeting).
    pub scheduling: ConceptId,
    /// Third-party delivery.
    pub delivery: ConceptId,
    /// Event coordination (Policy 4).
    pub event_coordination: ConceptId,
    /// Space-utilization analytics.
    pub analytics: ConceptId,
    /// Marketing / third-party monetization.
    pub marketing: ConceptId,
}

/// The standard vocabulary: sensor, data, and purpose taxonomies plus the
/// inference rule base that encodes the paper's §II.A threat chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    /// Sensor classes (SSN/Haystack-flavoured).
    pub sensors: Taxonomy,
    /// Data categories (collected and inferable).
    pub data: Taxonomy,
    /// Purpose taxonomy (§IV.B.3).
    pub purposes: Taxonomy,
    rules: Vec<InferenceRule>,
    concepts: StandardConcepts,
    /// Memoized single-source inference closures (hot path of policy
    /// matching); rebuilt lazily after deserialization or rule changes.
    #[serde(skip)]
    closure_cache: std::sync::OnceLock<Vec<Vec<crate::inference::Inference>>>,
}

impl Ontology {
    /// Builds the standard vocabulary.
    pub fn standard() -> Self {
        let mut sensors = Taxonomy::new();
        let sensor = sensors.add_root("sensor", "Sensor");
        let net = sensors.add("sensor/network", "Network equipment", sensor);
        let wifi_ap = sensors.add("sensor/network/wifi-ap", "WiFi access point", net);
        let ble_beacon = sensors.add("sensor/network/ble-beacon", "Bluetooth beacon", net);
        let av = sensors.add("sensor/av", "Audio/visual", sensor);
        let camera = sensors.add("sensor/av/camera", "Surveillance camera", av);
        let energy = sensors.add("sensor/energy", "Energy", sensor);
        let power_meter = sensors.add("sensor/energy/power-meter", "Power outlet meter", energy);
        let env = sensors.add("sensor/environment", "Environmental", sensor);
        let temperature_sensor =
            sensors.add("sensor/environment/temperature", "Temperature sensor", env);
        let presence = sensors.add("sensor/presence", "Presence", sensor);
        let motion_sensor = sensors.add("sensor/presence/motion", "Motion sensor", presence);
        let badge_reader = sensors.add("sensor/presence/badge-reader", "Badge reader", presence);
        let fingerprint_reader = sensors.add(
            "sensor/presence/fingerprint-reader",
            "Fingerprint reader",
            presence,
        );
        let actuator = sensors.add("sensor/actuator", "Actuator", sensor);
        let hvac = sensors.add("sensor/actuator/hvac", "HVAC unit", actuator);

        let mut data = Taxonomy::new();
        let d = data.add_root("data", "Data");
        let network = data.add("data/network", "Network metadata", d);
        let wifi_association = data.add(
            "data/network/wifi-association",
            "WiFi association events",
            network,
        );
        let bluetooth_sighting = data.add(
            "data/network/bluetooth-sighting",
            "Bluetooth sightings",
            network,
        );
        let location = data.add("data/location", "Location", d);
        let location_fine = data.add("data/location/fine", "Fine-grained location", location);
        let location_room = data.add("data/location/room-level", "Room-level location", location);
        let location_coarse = data.add("data/location/coarse", "Coarse location", location);
        let presence_d = data.add("data/presence", "Presence", d);
        let occupancy = data.add("data/presence/occupancy", "Room occupancy", presence_d);
        let media = data.add("data/media", "Media", d);
        let image = data.add("data/media/image", "Camera imagery", media);
        let energy_d = data.add("data/energy", "Energy", d);
        let power_consumption = data.add(
            "data/energy/power-consumption",
            "Power consumption",
            energy_d,
        );
        let env_d = data.add("data/environment", "Environment", d);
        let ambient_temperature =
            data.add("data/environment/temperature", "Ambient temperature", env_d);
        let identity = data.add("data/identity", "Identity", d);
        let device_mac = data.add("data/identity/device-mac", "Device MAC address", identity);
        let person_identity = data.add("data/identity/person", "Personal identity", identity);
        let behavior = data.add("data/behavior", "Behaviour", d);
        let working_pattern =
            data.add("data/behavior/working-pattern", "Working pattern", behavior);
        let occupant_role = data.add("data/behavior/role", "Occupant role", behavior);
        let social_ties = data.add("data/behavior/social", "Social ties", behavior);
        let health = data.add("data/health", "Health status", d);
        let public_schedule = data.add("data/schedule", "Public schedule", d);
        let event_details = data.add("data/event", "Event details", d);
        let meeting_details = data.add("data/meeting", "Meeting details", d);

        let mut purposes = Taxonomy::new();
        let purpose = purposes.add_root("purpose", "Purpose");
        let safety = purposes.add("purpose/safety", "Safety", purpose);
        let emergency_response = purposes.add(
            "purpose/safety/emergency-response",
            "Emergency response",
            safety,
        );
        let security = purposes.add("purpose/security", "Security", purpose);
        let surveillance = purposes.add("purpose/security/surveillance", "Surveillance", security);
        let access_control = purposes.add(
            "purpose/security/access-control",
            "Access control",
            security,
        );
        let law_enforcement = purposes.add(
            "purpose/security/law-enforcement",
            "Law-enforcement sharing",
            security,
        );
        let operations = purposes.add("purpose/operations", "Building operations", purpose);
        let comfort = purposes.add("purpose/operations/comfort", "Comfort / HVAC", operations);
        let energy_management =
            purposes.add("purpose/operations/energy", "Energy management", operations);
        let logging = purposes.add(
            "purpose/operations/logging",
            "Connectivity logging",
            operations,
        );
        let services = purposes.add("purpose/services", "Building services", purpose);
        let providing_service = purposes.add(
            "purpose/services/providing-service",
            "Providing a service",
            services,
        );
        let navigation = purposes.add(
            "purpose/services/navigation",
            "Navigation / directions",
            providing_service,
        );
        let scheduling = purposes.add(
            "purpose/services/scheduling",
            "Meeting scheduling",
            providing_service,
        );
        let delivery = purposes.add("purpose/services/delivery", "Delivery", providing_service);
        let event_coordination = purposes.add(
            "purpose/services/events",
            "Event coordination",
            providing_service,
        );
        let analytics = purposes.add("purpose/analytics", "Analytics", purpose);
        let marketing = purposes.add("purpose/marketing", "Marketing", purpose);

        let rules = vec![
            // §II.A: "Using background knowledge (e.g., the location of the
            // AP) it is possible to infer the real-time location of a user."
            InferenceRule::new("ap-location", vec![wifi_association], location_room, 0.90),
            InferenceRule::new(
                "beacon-location",
                vec![bluetooth_sighting],
                location_room,
                0.95,
            ),
            InferenceRule::new("mac-from-wifi", vec![wifi_association], device_mac, 1.0),
            InferenceRule::new("camera-occupancy", vec![image], occupancy, 0.95),
            InferenceRule::new("camera-identity", vec![image], person_identity, 0.70),
            InferenceRule::new("location-occupancy", vec![location], occupancy, 0.90),
            // §III.B: occupancy over time reveals "the occupant's working pattern".
            InferenceRule::new("occupancy-pattern", vec![occupancy], working_pattern, 0.80),
            // §II.A: "simple heuristics (non-faculty staff arrive at 7am…)"
            InferenceRule::new("pattern-role", vec![working_pattern], occupant_role, 0.70),
            // §II.A: "integrating this with publicly available information…
            // it would be possible to identify individuals."
            InferenceRule::new(
                "role+schedule-identity",
                vec![occupant_role, public_schedule],
                person_identity,
                0.85,
            ),
            // Refs [1], [2]: electrical events reveal presence and activities.
            InferenceRule::new("power-occupancy", vec![power_consumption], occupancy, 0.75),
            InferenceRule::new(
                "colocation-social",
                vec![location, person_identity],
                social_ties,
                0.65,
            ),
        ];

        let concepts = StandardConcepts {
            sensor,
            wifi_ap,
            ble_beacon,
            camera,
            power_meter,
            temperature_sensor,
            motion_sensor,
            badge_reader,
            fingerprint_reader,
            hvac,
            data: d,
            wifi_association,
            bluetooth_sighting,
            location,
            location_fine,
            location_room,
            location_coarse,
            occupancy,
            image,
            power_consumption,
            ambient_temperature,
            device_mac,
            person_identity,
            working_pattern,
            occupant_role,
            social_ties,
            health,
            public_schedule,
            event_details,
            meeting_details,
            purpose,
            emergency_response,
            surveillance,
            access_control,
            law_enforcement,
            comfort,
            energy_management,
            logging,
            providing_service,
            navigation,
            scheduling,
            delivery,
            event_coordination,
            analytics,
            marketing,
        };

        Ontology {
            sensors,
            data,
            purposes,
            rules,
            concepts,
            closure_cache: std::sync::OnceLock::new(),
        }
    }

    /// Resolved ids of the standard concepts.
    pub fn concepts(&self) -> &StandardConcepts {
        &self.concepts
    }

    /// The inference rule base.
    pub fn rules(&self) -> &[InferenceRule] {
        &self.rules
    }

    /// Adds a custom inference rule (building-specific background knowledge).
    pub fn add_rule(&mut self, rule: InferenceRule) {
        self.rules.push(rule);
        self.closure_cache = std::sync::OnceLock::new();
    }

    /// An inference engine over the data taxonomy and rule base.
    pub fn inference(&self) -> InferenceEngine<'_> {
        InferenceEngine::new(&self.data, &self.rules)
    }

    fn closures(&self) -> &Vec<Vec<crate::inference::Inference>> {
        self.closure_cache.get_or_init(|| {
            let engine = self.inference();
            (0..self.data.len())
                .map(|i| engine.closure(&[crate::ConceptId(i as u32)]))
                .collect()
        })
    }

    /// Everything inferable from a single collected category (memoized).
    pub fn inferable_from(&self, source: crate::ConceptId) -> &[crate::inference::Inference] {
        &self.closures()[source.index()]
    }

    /// True if `target` (or a sub-concept) is inferable from `source`
    /// alone — the memoized fast path of policy/preference matching.
    pub fn can_infer_from(&self, source: crate::ConceptId, target: crate::ConceptId) -> bool {
        self.inferable_from(source)
            .iter()
            .any(|i| self.data.is_a(i.concept, target))
    }
}

impl Default for Ontology {
    fn default() -> Self {
        Ontology::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vocabulary_is_consistent() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        assert!(ont.data.is_a(c.wifi_association, c.data));
        assert!(ont.data.is_a(c.location_fine, c.location));
        assert!(ont.purposes.is_a(c.emergency_response, c.purpose));
        assert!(ont.sensors.is_a(c.camera, c.sensor));
        // navigation is a kind of providing a service.
        assert!(ont.purposes.is_a(c.navigation, c.providing_service));
    }

    #[test]
    fn wifi_logs_leak_identity_with_schedules() {
        // The full §II.A chain: wifi → location → occupancy → pattern →
        // role, + public schedule → identity.
        let ont = Ontology::standard();
        let c = ont.concepts();
        let eng = ont.inference();
        assert!(eng.can_infer(&[c.wifi_association, c.public_schedule], c.person_identity));
        // Without schedules, identity is not inferable from wifi alone.
        assert!(!eng.can_infer(&[c.wifi_association], c.person_identity));
    }

    #[test]
    fn power_metering_reveals_occupancy() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        assert!(ont
            .inference()
            .can_infer(&[c.power_consumption], c.occupancy));
    }

    #[test]
    fn camera_reveals_identity_directly() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        assert!(ont.inference().can_infer(&[c.image], c.person_identity));
    }

    #[test]
    fn temperature_reveals_nothing_personal() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let eng = ont.inference();
        assert!(!eng.can_infer(&[c.ambient_temperature], c.occupancy));
        assert!(!eng.can_infer(&[c.ambient_temperature], c.person_identity));
    }

    #[test]
    fn confidence_decays_along_chain() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let out = ont.inference().closure(&[c.wifi_association]);
        let conf = |id| {
            out.iter()
                .find(|i| i.concept == id)
                .map_or(0.0, |i| i.confidence)
        };
        assert!(conf(c.location_room) > conf(c.occupancy));
        assert!(conf(c.occupancy) > conf(c.working_pattern));
        assert!(conf(c.working_pattern) > conf(c.occupant_role));
    }

    #[test]
    fn custom_rules_extend_the_base() {
        let mut ont = Ontology::standard();
        let c = ont.concepts().clone();
        ont.add_rule(InferenceRule::new(
            "occupancy-health",
            vec![c.occupancy],
            c.health,
            0.3,
        ));
        assert!(ont.inference().can_infer(&[c.wifi_association], c.health));
    }

    #[test]
    fn serde_round_trip() {
        let ont = Ontology::standard();
        let json = serde_json::to_string(&ont.data).unwrap();
        let back: Taxonomy = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), ont.data.len());
    }
}
