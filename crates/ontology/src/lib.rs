//! Lightweight concept taxonomies and inference reasoning.
//!
//! The paper types sensors and subsystems "using the haystack ontology and
//! Semantic Sensor Network ontology" (§IV.A.3), is "working on a taxonomy to
//! model purpose" (§IV.B.3), and wants policies to state not just the data
//! *collected* but the data that can be *inferred* from it (§IV.B.2).
//!
//! Rather than a full OWL stack, this crate provides what those uses
//! actually require:
//!
//! * [`Taxonomy`] — a multi-parent concept DAG with subsumption
//!   ([`Taxonomy::is_a`]), ancestor/descendant queries, and stable string
//!   keys for serialization.
//! * [`Ontology`] — the three standard taxonomies used throughout the
//!   framework (sensor classes, data categories, purposes) plus a rule base.
//! * [`InferenceEngine`] — forward-chaining closure over
//!   [`InferenceRule`]s: given the data categories a building collects,
//!   which higher-level facts become inferable, and with what confidence
//!   (the paper's WiFi-log → occupancy → working-pattern example).
//!
//! # Examples
//!
//! ```
//! use tippers_ontology::Ontology;
//!
//! let ont = Ontology::standard();
//! let wifi = ont.data.id("data/network/wifi-association").unwrap();
//! let loc = ont.data.id("data/location").unwrap();
//! // WiFi association events are a kind of network metadata, not location...
//! assert!(!ont.data.is_a(wifi, loc));
//! // ...but location is inferable from them.
//! let inferred = ont.inference().closure(&[wifi]);
//! assert!(inferred.iter().any(|i| ont.data.is_a(i.concept, loc)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inference;
mod standard;
mod taxonomy;

pub use inference::{Inference, InferenceEngine, InferenceRule};
pub use standard::{Ontology, StandardConcepts};
pub use taxonomy::{Concept, ConceptId, Taxonomy, TaxonomyError};
