use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a [`Concept`] within one [`Taxonomy`].
///
/// Ids are dense indices, stable for the taxonomy's lifetime, and
/// meaningless across taxonomies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub(crate) u32);

impl ConceptId {
    /// Index of this concept in the owning taxonomy.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "concept#{}", self.0)
    }
}

/// A node in a [`Taxonomy`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Concept {
    id: ConceptId,
    key: String,
    label: String,
    parents: Vec<ConceptId>,
    children: Vec<ConceptId>,
}

impl Concept {
    /// The concept's id.
    pub fn id(&self) -> ConceptId {
        self.id
    }

    /// Stable, slash-separated key used in serialized policies,
    /// e.g. `"purpose/safety/emergency-response"`.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Direct super-concepts.
    pub fn parents(&self) -> &[ConceptId] {
        &self.parents
    }

    /// Direct sub-concepts.
    pub fn children(&self) -> &[ConceptId] {
        &self.children
    }
}

/// Errors produced by taxonomy construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaxonomyError {
    /// A concept key was registered twice.
    DuplicateKey(String),
    /// A referenced parent id does not exist.
    UnknownParent(ConceptId),
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::DuplicateKey(k) => write!(f, "duplicate concept key `{k}`"),
            TaxonomyError::UnknownParent(id) => write!(f, "unknown parent concept {id}"),
        }
    }
}

impl std::error::Error for TaxonomyError {}

/// A multi-parent concept DAG with subsumption queries.
///
/// Concepts are added parents-first, which makes cycles unrepresentable:
/// a concept can only name already-existing concepts as parents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Taxonomy {
    concepts: Vec<Concept>,
    by_key: HashMap<String, ConceptId>,
}

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new() -> Self {
        Taxonomy::default()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True if the taxonomy has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Adds a root concept (no parents).
    ///
    /// # Panics
    ///
    /// Panics on duplicate key; use [`try_add`](Self::try_add) to handle it.
    pub fn add_root(&mut self, key: &str, label: &str) -> ConceptId {
        self.try_add(key, label, &[]).expect("duplicate key")
    }

    /// Adds a concept under one parent.
    ///
    /// # Panics
    ///
    /// Panics on duplicate key or unknown parent.
    pub fn add(&mut self, key: &str, label: &str, parent: ConceptId) -> ConceptId {
        self.try_add(key, label, &[parent])
            .expect("duplicate key or unknown parent")
    }

    /// Adds a concept with any number of parents.
    ///
    /// # Errors
    ///
    /// Returns [`TaxonomyError::DuplicateKey`] or
    /// [`TaxonomyError::UnknownParent`].
    pub fn try_add(
        &mut self,
        key: &str,
        label: &str,
        parents: &[ConceptId],
    ) -> Result<ConceptId, TaxonomyError> {
        if self.by_key.contains_key(key) {
            return Err(TaxonomyError::DuplicateKey(key.to_owned()));
        }
        for &p in parents {
            if p.index() >= self.concepts.len() {
                return Err(TaxonomyError::UnknownParent(p));
            }
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(Concept {
            id,
            key: key.to_owned(),
            label: label.to_owned(),
            parents: parents.to_vec(),
            children: Vec::new(),
        });
        for &p in parents {
            self.concepts[p.index()].children.push(id);
        }
        self.by_key.insert(key.to_owned(), id);
        Ok(id)
    }

    /// Looks a concept up by its stable key.
    pub fn id(&self, key: &str) -> Option<ConceptId> {
        self.by_key.get(key).copied()
    }

    /// Returns the concept for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this taxonomy.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Returns the concept for an id, if valid.
    pub fn get(&self, id: ConceptId) -> Option<&Concept> {
        self.concepts.get(id.index())
    }

    /// The key for an id — convenience for serialization.
    pub fn key_of(&self, id: ConceptId) -> &str {
        self.concept(id).key()
    }

    /// Iterates over all concepts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Concept> {
        self.concepts.iter()
    }

    /// Subsumption: true if `sub` is `sup` or a (transitive) descendant.
    ///
    /// This is the reasoning primitive behind policy matching: a policy over
    /// `data/location` applies to a request for `data/location/room-level`.
    pub fn is_a(&self, sub: ConceptId, sup: ConceptId) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen = vec![false; self.concepts.len()];
        while let Some(c) = stack.pop() {
            for &p in &self.concepts[c.index()].parents {
                if p == sup {
                    return true;
                }
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// All (transitive) ancestors of `id`, excluding `id` itself.
    pub fn ancestors(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.concepts.len()];
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            for &p in &self.concepts[c.index()].parents {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        out
    }

    /// All (transitive) descendants of `id`, excluding `id` itself.
    pub fn descendants(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.concepts.len()];
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            for &ch in &self.concepts[c.index()].children {
                if !seen[ch.index()] {
                    seen[ch.index()] = true;
                    out.push(ch);
                    stack.push(ch);
                }
            }
        }
        out
    }

    /// True if the two concepts share any descendant-or-self, i.e. a request
    /// could satisfy both.
    pub fn compatible(&self, a: ConceptId, b: ConceptId) -> bool {
        if self.is_a(a, b) || self.is_a(b, a) {
            return true;
        }
        let mut under_a = vec![false; self.concepts.len()];
        under_a[a.index()] = true;
        for d in self.descendants(a) {
            under_a[d.index()] = true;
        }
        self.descendants(b).into_iter().any(|d| under_a[d.index()])
    }

    /// Semantic distance: number of edges on the shortest undirected path
    /// through the DAG, or `None` if disconnected.
    ///
    /// The IoTA uses this to score how close an advertised practice is to a
    /// practice the user has expressed sensitivity about.
    pub fn distance(&self, a: ConceptId, b: ConceptId) -> Option<u32> {
        use std::collections::VecDeque;
        if a == b {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.concepts.len()];
        dist[a.index()] = 0;
        let mut q = VecDeque::from([a]);
        while let Some(c) = q.pop_front() {
            let d = dist[c.index()];
            let node = &self.concepts[c.index()];
            for &n in node.parents.iter().chain(node.children.iter()) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    if n == b {
                        return Some(d + 1);
                    }
                    q.push_back(n);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Taxonomy, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut t = Taxonomy::new();
        let top = t.add_root("top", "Top");
        let l = t.add("left", "Left", top);
        let r = t.add("right", "Right", top);
        let bottom = t.try_add("bottom", "Bottom", &[l, r]).unwrap();
        (t, top, l, r, bottom)
    }

    #[test]
    fn is_a_is_reflexive_and_transitive() {
        let (t, top, l, _r, bottom) = diamond();
        assert!(t.is_a(bottom, bottom));
        assert!(t.is_a(bottom, l));
        assert!(t.is_a(bottom, top));
        assert!(!t.is_a(top, bottom));
    }

    #[test]
    fn multi_parent_subsumption() {
        let (t, _, l, r, bottom) = diamond();
        assert!(t.is_a(bottom, l));
        assert!(t.is_a(bottom, r));
        assert!(!t.is_a(l, r));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (t, top, l, r, bottom) = diamond();
        let mut anc = t.ancestors(bottom);
        anc.sort();
        assert_eq!(anc, {
            let mut v = vec![top, l, r];
            v.sort();
            v
        });
        let mut desc = t.descendants(top);
        desc.sort();
        assert_eq!(desc, {
            let mut v = vec![l, r, bottom];
            v.sort();
            v
        });
    }

    #[test]
    fn compatible_via_shared_descendant() {
        let (t, _, l, r, _) = diamond();
        // l and r are incomparable but share descendant `bottom`.
        assert!(t.compatible(l, r));
        let mut t2 = Taxonomy::new();
        let a = t2.add_root("a", "A");
        let b = t2.add_root("b", "B");
        assert!(!t2.compatible(a, b));
    }

    #[test]
    fn distance_counts_edges() {
        let (t, top, l, r, bottom) = diamond();
        assert_eq!(t.distance(l, l), Some(0));
        assert_eq!(t.distance(l, top), Some(1));
        assert_eq!(t.distance(l, r), Some(2));
        assert_eq!(t.distance(top, bottom), Some(2));
    }

    #[test]
    fn distance_disconnected_is_none() {
        let mut t = Taxonomy::new();
        let a = t.add_root("a", "A");
        let b = t.add_root("b", "B");
        assert_eq!(t.distance(a, b), None);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut t = Taxonomy::new();
        t.add_root("x", "X");
        assert_eq!(
            t.try_add("x", "X2", &[]),
            Err(TaxonomyError::DuplicateKey("x".into()))
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut t = Taxonomy::new();
        assert_eq!(
            t.try_add("x", "X", &[ConceptId(7)]),
            Err(TaxonomyError::UnknownParent(ConceptId(7)))
        );
    }

    #[test]
    fn key_lookup_round_trips() {
        let (t, top, _, _, _) = diamond();
        assert_eq!(t.id("top"), Some(top));
        assert_eq!(t.key_of(top), "top");
        assert_eq!(t.id("nope"), None);
    }
}
