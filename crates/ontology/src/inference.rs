use serde::{Deserialize, Serialize};

use crate::taxonomy::{ConceptId, Taxonomy};

/// A forward-chaining rule: if all `premises` (data categories) are
/// available, then `conclusion` becomes inferable with `confidence`.
///
/// Rules encode the paper's §II.A threat chain, e.g. *WiFi association logs*
/// ⇒ *real-time location*; *real-time location over time* ⇒ *working
/// pattern* ⇒ *occupant role* ⇒ (with public schedules) *identity*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRule {
    /// Human-readable rule name.
    pub name: String,
    /// Data categories that must all be available.
    pub premises: Vec<ConceptId>,
    /// The category that becomes inferable.
    pub conclusion: ConceptId,
    /// Confidence multiplier in `(0, 1]`.
    pub confidence: f64,
}

impl InferenceRule {
    /// Creates a rule.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1]` or `premises` is empty.
    pub fn new(
        name: impl Into<String>,
        premises: Vec<ConceptId>,
        conclusion: ConceptId,
        confidence: f64,
    ) -> Self {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "confidence must be in (0, 1]"
        );
        assert!(!premises.is_empty(), "rules need at least one premise");
        InferenceRule {
            name: name.into(),
            premises,
            conclusion,
            confidence,
        }
    }
}

/// A derived fact: `concept` is inferable with `confidence` through `via`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inference {
    /// The inferable data category.
    pub concept: ConceptId,
    /// Best confidence over all derivations (product along a chain).
    pub confidence: f64,
    /// Names of rules on the best derivation chain, in firing order.
    pub via: Vec<String>,
}

/// Forward-chaining engine over a data-category taxonomy.
///
/// A premise is satisfied by any available concept that `is_a` the premise
/// (subsumption-aware matching), so a rule over `data/location` fires when
/// `data/location/room-level` is available.
#[derive(Debug, Clone)]
pub struct InferenceEngine<'a> {
    taxonomy: &'a Taxonomy,
    rules: &'a [InferenceRule],
}

impl<'a> InferenceEngine<'a> {
    /// Creates an engine over a taxonomy and rule base.
    pub fn new(taxonomy: &'a Taxonomy, rules: &'a [InferenceRule]) -> Self {
        InferenceEngine { taxonomy, rules }
    }

    /// The rules this engine chains over.
    pub fn rules(&self) -> &[InferenceRule] {
        self.rules
    }

    /// Computes everything inferable from the given collected categories.
    ///
    /// Returns only *derived* facts (not the inputs), each with the highest
    /// confidence over all derivation chains. Runs to fixpoint, so chained
    /// rules (location ⇒ pattern ⇒ role) all fire.
    pub fn closure(&self, collected: &[ConceptId]) -> Vec<Inference> {
        // confidence per concept: inputs start at 1.0.
        let mut conf: Vec<f64> = vec![0.0; self.taxonomy.len()];
        let mut via: Vec<Vec<String>> = vec![Vec::new(); self.taxonomy.len()];
        for &c in collected {
            conf[c.index()] = 1.0;
        }
        loop {
            let mut changed = false;
            for rule in self.rules {
                // A premise is satisfied by any held concept subsumed by it.
                let mut rule_conf = rule.confidence;
                let mut chain: Vec<String> = Vec::new();
                let mut ok = true;
                for &prem in &rule.premises {
                    let best = (0..self.taxonomy.len())
                        .filter(|&i| conf[i] > 0.0)
                        .filter(|&i| self.taxonomy.is_a(ConceptId(i as u32), prem))
                        .map(|i| (conf[i], i))
                        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
                    match best {
                        Some((c, i)) => {
                            rule_conf *= c;
                            for v in &via[i] {
                                if !chain.contains(v) {
                                    chain.push(v.clone());
                                }
                            }
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let idx = rule.conclusion.index();
                if rule_conf > conf[idx] + 1e-12 {
                    conf[idx] = rule_conf;
                    chain.push(rule.name.clone());
                    via[idx] = chain;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let inputs: Vec<usize> = collected.iter().map(|c| c.index()).collect();
        (0..self.taxonomy.len())
            .filter(|i| conf[*i] > 0.0 && !inputs.contains(i))
            .map(|i| Inference {
                concept: ConceptId(i as u32),
                confidence: conf[i],
                via: via[i].clone(),
            })
            .collect()
    }

    /// True if `target` (or any sub-concept of it) is inferable from
    /// `collected`.
    pub fn can_infer(&self, collected: &[ConceptId], target: ConceptId) -> bool {
        self.closure(collected)
            .iter()
            .any(|i| self.taxonomy.is_a(i.concept, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (
        Taxonomy,
        Vec<InferenceRule>,
        ConceptId,
        ConceptId,
        ConceptId,
        ConceptId,
    ) {
        let mut t = Taxonomy::new();
        let data = t.add_root("data", "Data");
        let wifi = t.add("wifi", "WiFi logs", data);
        let loc = t.add("loc", "Location", data);
        let fine = t.add("loc/fine", "Fine location", loc);
        let role = t.add("role", "Role", data);
        let rules = vec![
            InferenceRule::new("wifi->fine-loc", vec![wifi], fine, 0.9),
            InferenceRule::new("loc->role", vec![loc], role, 0.8),
        ];
        (t, rules, wifi, loc, fine, role)
    }

    #[test]
    fn closure_chains_rules() {
        let (t, rules, wifi, _loc, fine, role) = setup();
        let eng = InferenceEngine::new(&t, &rules);
        let out = eng.closure(&[wifi]);
        let get = |c: ConceptId| out.iter().find(|i| i.concept == c).cloned();
        let fine_inf = get(fine).expect("fine location inferable");
        assert!((fine_inf.confidence - 0.9).abs() < 1e-9);
        // role fires from fine (is_a loc) with 0.9 * 0.8.
        let role_inf = get(role).expect("role inferable");
        assert!((role_inf.confidence - 0.72).abs() < 1e-9);
        assert_eq!(role_inf.via, vec!["wifi->fine-loc", "loc->role"]);
    }

    #[test]
    fn subsumption_satisfies_premise() {
        let (t, rules, _wifi, _loc, fine, role) = setup();
        let eng = InferenceEngine::new(&t, &rules);
        // Holding fine location directly triggers the `loc` premise.
        let out = eng.closure(&[fine]);
        assert!(out.iter().any(|i| i.concept == role));
    }

    #[test]
    fn nothing_inferable_from_unrelated_data() {
        let (mut t, rules, _, _, _, _) = setup();
        let temp = t.add("temp", "Temperature", t.id("data").unwrap());
        let eng = InferenceEngine::new(&t, &rules);
        assert!(eng.closure(&[temp]).is_empty());
    }

    #[test]
    fn can_infer_respects_subsumption_of_target() {
        let (t, rules, wifi, loc, _, _) = setup();
        let eng = InferenceEngine::new(&t, &rules);
        // fine location is inferable, and fine is_a loc, so loc is inferable.
        assert!(eng.can_infer(&[wifi], loc));
    }

    #[test]
    fn multi_premise_rules_need_all() {
        let (mut t, _, wifi, _loc, _fine, role) = setup();
        let sched = t.add("sched", "Public schedule", t.id("data").unwrap());
        let ident = t.add("identity", "Identity", t.id("data").unwrap());
        let rules = vec![
            InferenceRule::new("wifi->role", vec![wifi], role, 0.8),
            InferenceRule::new("role+sched->identity", vec![role, sched], ident, 0.9),
        ];
        let eng = InferenceEngine::new(&t, &rules);
        assert!(!eng.can_infer(&[wifi], ident));
        assert!(eng.can_infer(&[wifi, sched], ident));
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn zero_confidence_rejected() {
        let mut t = Taxonomy::new();
        let a = t.add_root("a", "A");
        let _ = InferenceRule::new("bad", vec![a], a, 0.0);
    }
}
