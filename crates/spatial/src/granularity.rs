use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::{SpaceId, SpaceKind, SpatialModel};
use crate::point::Point;

/// Location granularity lattice used for privacy-preserving degradation.
///
/// Figure 4 of the paper offers users "fine grained location sensing",
/// "coarse grained location sensing", or "no location sensing"; the
/// enforcement discussion (§V.C) lists granularity reduction as one of the
/// *how*s of enforcement. This enum is a total order from most precise to
/// fully suppressed:
///
/// `Exact < Room < Floor < Building < Campus < Suppressed`
///
/// Degrading a location to a granularity keeps the coarsest identifier at or
/// above that level, so an attacker holding the degraded value learns no
/// more than the lattice level permits.
///
/// # Examples
///
/// ```
/// use tippers_spatial::Granularity;
/// // A floor-level cap satisfies a room-level requirement's complement:
/// assert!(Granularity::Floor.respects(Granularity::Room));
/// // The join of two users' caps is the coarser one.
/// assert_eq!(
///     Granularity::Room.coarsest(Granularity::Building),
///     Granularity::Building
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Granularity {
    /// Exact coordinates within a room ("fine grained").
    Exact,
    /// Room-level location.
    Room,
    /// Floor-level location ("coarse grained").
    Floor,
    /// Building-level location.
    Building,
    /// Campus-level location.
    Campus,
    /// No location at all ("no location sensing" / opt-out).
    Suppressed,
}

impl Granularity {
    /// All granularities, finest first.
    pub const ALL: [Granularity; 6] = [
        Granularity::Exact,
        Granularity::Room,
        Granularity::Floor,
        Granularity::Building,
        Granularity::Campus,
        Granularity::Suppressed,
    ];

    /// The coarser (more private) of two granularities — the lattice join.
    pub fn coarsest(self, other: Granularity) -> Granularity {
        self.max(other)
    }

    /// The finer (more permissive) of two granularities — the lattice meet.
    pub fn finest(self, other: Granularity) -> Granularity {
        self.min(other)
    }

    /// True if this granularity reveals no more than `bound` —
    /// i.e. it is at least as coarse.
    pub fn respects(self, bound: Granularity) -> bool {
        self >= bound
    }

    /// One step coarser, saturating at [`Granularity::Suppressed`].
    pub fn coarsen(self) -> Granularity {
        match self {
            Granularity::Exact => Granularity::Room,
            Granularity::Room => Granularity::Floor,
            Granularity::Floor => Granularity::Building,
            Granularity::Building => Granularity::Campus,
            Granularity::Campus | Granularity::Suppressed => Granularity::Suppressed,
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::Exact => "exact",
            Granularity::Room => "room",
            Granularity::Floor => "floor",
            Granularity::Building => "building",
            Granularity::Campus => "campus",
            Granularity::Suppressed => "suppressed",
        };
        f.write_str(s)
    }
}

/// A location that has been degraded to a specific granularity.
///
/// Produced by [`GranularLocation::degrade`]; the enforcement engine returns
/// these instead of raw sensor locations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularLocation {
    /// Granularity this value was degraded to.
    pub granularity: Granularity,
    /// The coarsest space consistent with the granularity, or `None` when
    /// suppressed.
    pub space: Option<SpaceId>,
    /// Exact coordinates; present only at [`Granularity::Exact`].
    pub point: Option<Point>,
}

impl GranularLocation {
    /// A fully suppressed location.
    pub fn suppressed() -> Self {
        GranularLocation {
            granularity: Granularity::Suppressed,
            space: None,
            point: None,
        }
    }

    /// Degrades a raw location (`space` + optional `point`) to `granularity`
    /// using the containment hierarchy in `model`.
    ///
    /// If the model has no ancestor at the requested level (e.g. asking for
    /// the floor of an outdoor space), the next coarser available level is
    /// used, so the result never reveals *more* than requested.
    pub fn degrade(
        model: &SpatialModel,
        space: SpaceId,
        point: Option<Point>,
        granularity: Granularity,
    ) -> GranularLocation {
        match granularity {
            Granularity::Exact => GranularLocation {
                granularity,
                space: Some(space),
                point,
            },
            Granularity::Room => GranularLocation {
                granularity,
                space: Some(space),
                point: None,
            },
            Granularity::Floor => match model.floor_of(space) {
                Some(f) => GranularLocation {
                    granularity,
                    space: Some(f),
                    point: None,
                },
                None => Self::degrade(model, space, point, Granularity::Building),
            },
            Granularity::Building => match model.building_of(space) {
                Some(b) => GranularLocation {
                    granularity,
                    space: Some(b),
                    point: None,
                },
                None => Self::degrade(model, space, point, Granularity::Campus),
            },
            Granularity::Campus => GranularLocation {
                granularity,
                space: model
                    .ancestor_of_kind(space, SpaceKind::Campus)
                    .or(Some(model.root())),
                point: None,
            },
            Granularity::Suppressed => Self::suppressed(),
        }
    }

    /// True if this location reveals nothing.
    pub fn is_suppressed(&self) -> bool {
        self.granularity == Granularity::Suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RoomUse;

    fn model() -> (SpatialModel, SpaceId, SpaceId, SpaceId) {
        let mut m = SpatialModel::new("campus");
        let b = m.add_space("B", SpaceKind::Building, m.root());
        let f = m.add_space("B-2", SpaceKind::Floor, b);
        let r = m.add_space("B-201", SpaceKind::room(RoomUse::Office), f);
        (m, b, f, r)
    }

    #[test]
    fn order_is_fine_to_coarse() {
        assert!(Granularity::Exact < Granularity::Room);
        assert!(Granularity::Room < Granularity::Floor);
        assert!(Granularity::Campus < Granularity::Suppressed);
    }

    #[test]
    fn join_and_meet() {
        assert_eq!(
            Granularity::Room.coarsest(Granularity::Building),
            Granularity::Building
        );
        assert_eq!(
            Granularity::Room.finest(Granularity::Building),
            Granularity::Room
        );
    }

    #[test]
    fn respects_is_at_least_as_coarse() {
        assert!(Granularity::Floor.respects(Granularity::Room));
        assert!(Granularity::Floor.respects(Granularity::Floor));
        assert!(!Granularity::Room.respects(Granularity::Floor));
    }

    #[test]
    fn coarsen_saturates() {
        let mut g = Granularity::Exact;
        for _ in 0..10 {
            g = g.coarsen();
        }
        assert_eq!(g, Granularity::Suppressed);
    }

    #[test]
    fn degrade_walks_hierarchy() {
        let (m, b, f, r) = model();
        let p = Point::new(1.0, 2.0, 2);
        let exact = GranularLocation::degrade(&m, r, Some(p), Granularity::Exact);
        assert_eq!(exact.space, Some(r));
        assert_eq!(exact.point, Some(p));

        let room = GranularLocation::degrade(&m, r, Some(p), Granularity::Room);
        assert_eq!(room.space, Some(r));
        assert_eq!(room.point, None);

        let floor = GranularLocation::degrade(&m, r, Some(p), Granularity::Floor);
        assert_eq!(floor.space, Some(f));

        let building = GranularLocation::degrade(&m, r, Some(p), Granularity::Building);
        assert_eq!(building.space, Some(b));

        let supp = GranularLocation::degrade(&m, r, Some(p), Granularity::Suppressed);
        assert!(supp.is_suppressed());
    }

    #[test]
    fn degrade_missing_level_falls_coarser() {
        let mut m = SpatialModel::new("campus");
        // Outdoor space directly under campus: no floor, no building.
        let yard = m.add_space("yard", SpaceKind::Outdoor, m.root());
        let loc = GranularLocation::degrade(&m, yard, None, Granularity::Floor);
        // Falls through Building to Campus.
        assert_eq!(loc.space, Some(m.root()));
        assert_eq!(loc.granularity, Granularity::Campus);
    }
}
