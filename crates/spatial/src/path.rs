use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::SpatialError;
use crate::model::{SpaceId, SpatialModel};

/// One hop of a [`Path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathStep {
    /// Space entered at this step.
    pub space: SpaceId,
}

/// A walkable route between two spaces, produced by [`SpatialModel::path`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    steps: Vec<PathStep>,
}

impl Path {
    /// Spaces traversed, origin first, destination last.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Number of hops (edges) in the path.
    pub fn hops(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// The destination space.
    pub fn destination(&self) -> SpaceId {
        self.steps.last().expect("paths are non-empty").space
    }

    /// Renders the route as `A -> B -> C` using space names.
    pub fn describe(&self, model: &SpatialModel) -> String {
        self.steps
            .iter()
            .map(|s| model.space(s.space).name().to_owned())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl SpatialModel {
    /// Shortest path between two spaces over the adjacency graph (BFS; all
    /// edges cost 1).
    ///
    /// Used by the Smart Concierge service to give directions
    /// (Preference 3: "Allow Concierge access to my fine grained location
    /// for directions").
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::NoPath`] if the spaces are not connected, and
    /// [`SpatialError::UnknownSpace`] for invalid ids.
    pub fn path(&self, from: SpaceId, to: SpaceId) -> Result<Path, SpatialError> {
        if self.get(from).is_none() {
            return Err(SpatialError::UnknownSpace(from));
        }
        if self.get(to).is_none() {
            return Err(SpatialError::UnknownSpace(to));
        }
        if from == to {
            return Ok(Path {
                steps: vec![PathStep { space: from }],
            });
        }
        let mut prev: HashMap<SpaceId, SpaceId> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        prev.insert(from, from);
        while let Some(cur) = queue.pop_front() {
            for &next in self.neighbors(cur) {
                if prev.contains_key(&next) {
                    continue;
                }
                prev.insert(next, cur);
                if next == to {
                    let mut steps = vec![PathStep { space: to }];
                    let mut cursor = to;
                    while cursor != from {
                        cursor = prev[&cursor];
                        steps.push(PathStep { space: cursor });
                    }
                    steps.reverse();
                    return Ok(Path { steps });
                }
                queue.push_back(next);
            }
        }
        Err(SpatialError::NoPath { from, to })
    }

    /// The nearest space (by hop count) among `candidates`, starting from
    /// `from`. Returns the space and the path to it, or `None` if no
    /// candidate is reachable.
    pub fn nearest(&self, from: SpaceId, candidates: &[SpaceId]) -> Option<(SpaceId, Path)> {
        candidates
            .iter()
            .filter_map(|&c| self.path(from, c).ok().map(|p| (c, p)))
            .min_by_key(|(_, p)| p.hops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RoomUse, SpaceKind};

    fn corridor_model() -> (SpatialModel, Vec<SpaceId>, SpaceId) {
        let mut m = SpatialModel::new("c");
        let b = m.add_space("B", SpaceKind::Building, m.root());
        let f = m.add_space("B-1", SpaceKind::Floor, b);
        let hall = m.add_space("hall", SpaceKind::Corridor, f);
        let rooms: Vec<SpaceId> = (0..4)
            .map(|i| {
                let r = m.add_space(format!("B-10{i}"), SpaceKind::room(RoomUse::Office), f);
                m.add_adjacency(hall, r);
                r
            })
            .collect();
        (m, rooms, hall)
    }

    #[test]
    fn path_to_self_is_trivial() {
        let (m, rooms, _) = corridor_model();
        let p = m.path(rooms[0], rooms[0]).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.destination(), rooms[0]);
    }

    #[test]
    fn path_through_corridor() {
        let (m, rooms, hall) = corridor_model();
        let p = m.path(rooms[0], rooms[3]).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.steps()[1].space, hall);
    }

    #[test]
    fn unreachable_space_is_no_path() {
        let (mut m, rooms, _) = corridor_model();
        let island = m.add_space("island", SpaceKind::room(RoomUse::Lab), m.root());
        let err = m.path(rooms[0], island).unwrap_err();
        assert_eq!(
            err,
            SpatialError::NoPath {
                from: rooms[0],
                to: island
            }
        );
    }

    #[test]
    fn nearest_picks_min_hops() {
        let (mut m, rooms, hall) = corridor_model();
        // rooms[1] adjacent to rooms[0] directly: 1 hop vs 2 via hall.
        m.add_adjacency(rooms[0], rooms[1]);
        let (best, p) = m.nearest(rooms[0], &[rooms[1], rooms[3]]).unwrap();
        assert_eq!(best, rooms[1]);
        assert_eq!(p.hops(), 1);
        let _ = hall;
    }

    #[test]
    fn describe_uses_names() {
        let (m, rooms, _) = corridor_model();
        let p = m.path(rooms[0], rooms[1]).unwrap();
        assert_eq!(p.describe(&m), "B-100 -> hall -> B-101");
    }
}
