use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::SpaceId;

/// Identifier of a [`Zone`] inside one [`SpatialModel`](crate::SpatialModel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZoneId(pub(crate) u32);

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone#{}", self.0)
    }
}

/// An ad-hoc grouping of spaces that may cross the containment hierarchy.
///
/// Zones realize the paper's `overlap` operator for regions that are not
/// subtrees — e.g. "all spaces covered by WiFi AP 7" or "the event area for
/// Friday's reception" (Policy 4 discloses event details only to nearby
/// registered participants; *nearby* is a zone).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    id: ZoneId,
    name: String,
    members: Vec<SpaceId>,
}

impl Zone {
    pub(crate) fn new(id: ZoneId, name: String, members: Vec<SpaceId>) -> Self {
        Zone { id, name, members }
    }

    /// The zone's id.
    pub fn id(&self) -> ZoneId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Member spaces (each member's whole subtree belongs to the zone).
    pub fn members(&self) -> &[SpaceId] {
        &self.members
    }
}
