//! Ready-made spatial models, including a Donald Bren Hall-like building.
//!
//! The paper's testbed is Donald Bren Hall (DBH) at UC Irvine: a six-story
//! building with corridors, offices, classrooms, meeting rooms and labs.
//! [`dbh`] builds a deterministic, parameterizable model of that shape so
//! that tests, examples and benchmarks all speak about the same spaces.

use crate::model::{RoomUse, SpaceId, SpaceKind, SpatialModel};
use crate::point::Point;

/// Layout parameters for [`dbh_with`].
#[derive(Debug, Clone)]
pub struct DbhConfig {
    /// Number of floors (DBH has 6).
    pub floors: u32,
    /// Offices per floor.
    pub offices_per_floor: u32,
    /// Classrooms per floor (the paper puts undergrads in classrooms).
    pub classrooms_per_floor: u32,
    /// Meeting rooms per floor (Policy 3 gates access to these).
    pub meeting_rooms_per_floor: u32,
    /// Labs per floor.
    pub labs_per_floor: u32,
}

impl Default for DbhConfig {
    fn default() -> Self {
        DbhConfig {
            floors: 6,
            offices_per_floor: 20,
            classrooms_per_floor: 3,
            meeting_rooms_per_floor: 2,
            labs_per_floor: 3,
        }
    }
}

/// Handle to the spaces of a generated DBH model.
#[derive(Debug, Clone)]
pub struct Dbh {
    /// The model itself.
    pub model: SpatialModel,
    /// The building space.
    pub building: SpaceId,
    /// Floor spaces, ground floor first.
    pub floors: Vec<SpaceId>,
    /// Corridor of each floor.
    pub corridors: Vec<SpaceId>,
    /// All offices.
    pub offices: Vec<SpaceId>,
    /// All classrooms.
    pub classrooms: Vec<SpaceId>,
    /// All meeting rooms.
    pub meeting_rooms: Vec<SpaceId>,
    /// All labs.
    pub labs: Vec<SpaceId>,
    /// All kitchens (one per floor).
    pub kitchens: Vec<SpaceId>,
    /// The ground-floor lobby.
    pub lobby: SpaceId,
}

impl Dbh {
    /// Every room on a given floor (offices, classrooms, meeting rooms,
    /// labs, kitchen), excluding the corridor.
    pub fn rooms_on_floor(&self, floor: SpaceId) -> Vec<SpaceId> {
        self.model
            .descendants(floor)
            .into_iter()
            .filter(|&s| matches!(self.model.space(s).kind(), SpaceKind::Room(_)))
            .collect()
    }
}

/// Builds the default six-floor DBH-like model.
///
/// # Examples
///
/// ```
/// let dbh = tippers_spatial::fixtures::dbh();
/// assert_eq!(dbh.floors.len(), 6);
/// assert_eq!(dbh.offices.len(), 6 * 20);
/// ```
pub fn dbh() -> Dbh {
    dbh_with(&DbhConfig::default())
}

/// Builds a DBH-like model with custom dimensions.
///
/// Every floor gets a corridor connecting all of its rooms; floors are
/// connected through a stairwell chain; the ground floor additionally has a
/// lobby adjacent to its corridor.
pub fn dbh_with(config: &DbhConfig) -> Dbh {
    let mut model = SpatialModel::new("uci");
    let building = model.add_space("DBH", SpaceKind::Building, model.root());

    let mut floors = Vec::new();
    let mut corridors = Vec::new();
    let mut offices = Vec::new();
    let mut classrooms = Vec::new();
    let mut meeting_rooms = Vec::new();
    let mut labs = Vec::new();
    let mut kitchens = Vec::new();

    for fl in 0..config.floors {
        let floor = model.add_space(format!("DBH-{}", fl + 1), SpaceKind::Floor, building);
        let corridor = model.add_space(
            format!("DBH-{}-corridor", fl + 1),
            SpaceKind::Corridor,
            floor,
        );
        model.set_centroid(corridor, Point::new(0.0, 0.0, fl as i32));
        floors.push(floor);
        corridors.push(corridor);

        let mut room_counter = 0u32;
        let mut add_rooms =
            |model: &mut SpatialModel, count: u32, use_: RoomUse, out: &mut Vec<SpaceId>| {
                for _ in 0..count {
                    room_counter += 1;
                    let name = format!("DBH-{}{:03}", fl + 1, room_counter);
                    let room = model.add_space(name, SpaceKind::room(use_), floor);
                    model.set_centroid(room, Point::new(room_counter as f64 * 5.0, 4.0, fl as i32));
                    model.add_adjacency(corridor, room);
                    out.push(room);
                }
            };

        add_rooms(
            &mut model,
            config.offices_per_floor,
            RoomUse::Office,
            &mut offices,
        );
        add_rooms(
            &mut model,
            config.classrooms_per_floor,
            RoomUse::Classroom,
            &mut classrooms,
        );
        add_rooms(
            &mut model,
            config.meeting_rooms_per_floor,
            RoomUse::MeetingRoom,
            &mut meeting_rooms,
        );
        add_rooms(&mut model, config.labs_per_floor, RoomUse::Lab, &mut labs);
        add_rooms(&mut model, 1, RoomUse::Kitchen, &mut kitchens);
    }

    // Stairwell chain between consecutive floors (corridor to corridor).
    for w in corridors.windows(2) {
        model.add_adjacency(w[0], w[1]);
    }

    let lobby = model.add_space("DBH-lobby", SpaceKind::room(RoomUse::Lobby), floors[0]);
    model.set_centroid(lobby, Point::new(-10.0, 0.0, 0));
    model.add_adjacency(lobby, corridors[0]);

    Dbh {
        model,
        building,
        floors,
        corridors,
        offices,
        classrooms,
        meeting_rooms,
        labs,
        kitchens,
        lobby,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_dbh_matches_paper_shape() {
        let dbh = dbh();
        assert_eq!(dbh.floors.len(), 6);
        assert_eq!(dbh.offices.len(), 120);
        assert_eq!(dbh.meeting_rooms.len(), 12);
        assert_eq!(dbh.model.building_of(dbh.lobby), Some(dbh.building));
    }

    #[test]
    fn every_room_is_reachable_from_lobby() {
        let dbh = dbh();
        for &office in &dbh.offices {
            let path = dbh.model.path(dbh.lobby, office).expect("reachable");
            assert!(path.hops() >= 2);
        }
    }

    #[test]
    fn custom_config_scales() {
        let cfg = DbhConfig {
            floors: 2,
            offices_per_floor: 5,
            classrooms_per_floor: 1,
            meeting_rooms_per_floor: 1,
            labs_per_floor: 0,
        };
        let dbh = dbh_with(&cfg);
        assert_eq!(dbh.offices.len(), 10);
        assert_eq!(dbh.labs.len(), 0);
        assert_eq!(dbh.kitchens.len(), 2);
    }

    #[test]
    fn rooms_on_floor_excludes_corridor() {
        let dbh = dbh();
        let rooms = dbh.rooms_on_floor(dbh.floors[1]);
        assert!(rooms
            .iter()
            .all(|&r| matches!(dbh.model.space(r).kind(), SpaceKind::Room(_))));
        // 20 offices + 3 classrooms + 2 meeting + 3 labs + 1 kitchen
        assert_eq!(rooms.len(), 29);
    }

    #[test]
    fn cross_floor_paths_use_stairwell() {
        let dbh = dbh();
        let p = dbh
            .model
            .path(dbh.offices[0], *dbh.offices.last().unwrap())
            .unwrap();
        // office -> corridor(1) -> ... -> corridor(6) -> office
        assert_eq!(p.hops(), 7);
    }
}
