use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SpatialError;
use crate::point::Point;
use crate::zone::{Zone, ZoneId};

/// Identifier of a [`Space`] inside one [`SpatialModel`].
///
/// Ids are dense indices into the model's arena; they are stable for the
/// lifetime of the model (spaces are never removed) and are meaningless
/// across models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpaceId(pub(crate) u32);

impl SpaceId {
    /// Index of this space in the owning model's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space#{}", self.0)
    }
}

/// What a room is used for. Affects default privacy sensitivity and which
/// sensors the simulator deploys there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RoomUse {
    /// Single- or shared-occupancy office.
    Office,
    /// Lecture or seminar room.
    Classroom,
    /// Bookable meeting room (Policy 3 in the paper gates access to these).
    MeetingRoom,
    /// Research lab.
    Lab,
    /// Kitchen or break room.
    Kitchen,
    /// Building lobby / entrance hall.
    Lobby,
    /// Restroom — cameras are never deployed here.
    Restroom,
    /// Server or utility room.
    Utility,
}

/// The kind of a space in the containment hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SpaceKind {
    /// Root-level campus containing buildings.
    Campus,
    /// A building.
    Building,
    /// One storey of a building.
    Floor,
    /// A wing or section of a floor.
    Wing,
    /// A corridor connecting rooms.
    Corridor,
    /// A room with a specific use.
    Room(RoomUse),
    /// Outdoor area (courtyard, parking).
    Outdoor,
}

impl SpaceKind {
    /// Convenience constructor for [`SpaceKind::Room`].
    pub fn room(use_: RoomUse) -> Self {
        SpaceKind::Room(use_)
    }

    /// True for kinds that normally hold people doing private work.
    pub fn is_private(self) -> bool {
        matches!(
            self,
            SpaceKind::Room(RoomUse::Office) | SpaceKind::Room(RoomUse::Restroom)
        )
    }
}

impl fmt::Display for SpaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpaceKind::Campus => "campus",
            SpaceKind::Building => "building",
            SpaceKind::Floor => "floor",
            SpaceKind::Wing => "wing",
            SpaceKind::Corridor => "corridor",
            SpaceKind::Room(RoomUse::Office) => "office",
            SpaceKind::Room(RoomUse::Classroom) => "classroom",
            SpaceKind::Room(RoomUse::MeetingRoom) => "meeting room",
            SpaceKind::Room(RoomUse::Lab) => "lab",
            SpaceKind::Room(RoomUse::Kitchen) => "kitchen",
            SpaceKind::Room(RoomUse::Lobby) => "lobby",
            SpaceKind::Room(RoomUse::Restroom) => "restroom",
            SpaceKind::Room(RoomUse::Utility) => "utility room",
            SpaceKind::Outdoor => "outdoor area",
        };
        f.write_str(s)
    }
}

/// A node in the spatial hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Space {
    id: SpaceId,
    name: String,
    kind: SpaceKind,
    parent: Option<SpaceId>,
    children: Vec<SpaceId>,
    /// Centroid of the space, if known.
    centroid: Option<Point>,
    depth: u32,
}

impl Space {
    /// The space's id.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// Human-readable, model-unique name (e.g. `"DBH-2011"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The space's kind.
    pub fn kind(&self) -> SpaceKind {
        self.kind
    }

    /// Parent in the containment tree; `None` only for the root.
    pub fn parent(&self) -> Option<SpaceId> {
        self.parent
    }

    /// Direct children in the containment tree.
    pub fn children(&self) -> &[SpaceId] {
        &self.children
    }

    /// Centroid coordinates, if set via [`SpatialModel::set_centroid`].
    pub fn centroid(&self) -> Option<Point> {
        self.centroid
    }

    /// Depth in the tree (root is 0).
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

/// The spatial model: a containment tree of [`Space`]s plus an adjacency
/// graph and optional cross-cutting [`Zone`]s.
///
/// The model supports the three operators named in the paper:
/// [`contains`](Self::contains), [`neighboring`](Self::neighboring), and
/// [`overlap`](Self::overlap).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpatialModel {
    spaces: Vec<Space>,
    adjacency: Vec<Vec<SpaceId>>,
    by_name: HashMap<String, SpaceId>,
    zones: Vec<Zone>,
}

impl SpatialModel {
    /// Creates a model whose root is a campus with the given name.
    ///
    /// # Examples
    ///
    /// ```
    /// let model = tippers_spatial::SpatialModel::new("uci");
    /// assert_eq!(model.space(model.root()).name(), "uci");
    /// ```
    pub fn new(campus_name: impl Into<String>) -> Self {
        let name = campus_name.into();
        let root = Space {
            id: SpaceId(0),
            name: name.clone(),
            kind: SpaceKind::Campus,
            parent: None,
            children: Vec::new(),
            centroid: None,
            depth: 0,
        };
        let mut by_name = HashMap::new();
        by_name.insert(name, SpaceId(0));
        SpatialModel {
            spaces: vec![root],
            adjacency: vec![Vec::new()],
            by_name,
            zones: Vec::new(),
        }
    }

    /// The root (campus) space.
    pub fn root(&self) -> SpaceId {
        SpaceId(0)
    }

    /// Number of spaces in the model.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// True if the model has only the root space.
    pub fn is_empty(&self) -> bool {
        self.spaces.len() <= 1
    }

    /// Adds a space under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a valid id of this model or `name` is
    /// already used. Use [`try_add_space`](Self::try_add_space) for a
    /// fallible variant.
    pub fn add_space(
        &mut self,
        name: impl Into<String>,
        kind: SpaceKind,
        parent: SpaceId,
    ) -> SpaceId {
        self.try_add_space(name, kind, parent)
            .expect("invalid parent or duplicate name")
    }

    /// Adds a space under `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::UnknownSpace`] if `parent` is invalid and
    /// [`SpatialError::DuplicateName`] if `name` is already in use.
    pub fn try_add_space(
        &mut self,
        name: impl Into<String>,
        kind: SpaceKind,
        parent: SpaceId,
    ) -> Result<SpaceId, SpatialError> {
        let name = name.into();
        if parent.index() >= self.spaces.len() {
            return Err(SpatialError::UnknownSpace(parent));
        }
        if self.by_name.contains_key(&name) {
            return Err(SpatialError::DuplicateName(name));
        }
        let id = SpaceId(self.spaces.len() as u32);
        let depth = self.spaces[parent.index()].depth + 1;
        self.spaces.push(Space {
            id,
            name: name.clone(),
            kind,
            parent: Some(parent),
            children: Vec::new(),
            centroid: None,
            depth,
        });
        self.adjacency.push(Vec::new());
        self.spaces[parent.index()].children.push(id);
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Returns the space with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this model.
    pub fn space(&self, id: SpaceId) -> &Space {
        &self.spaces[id.index()]
    }

    /// Returns the space with the given id, if valid.
    pub fn get(&self, id: SpaceId) -> Option<&Space> {
        self.spaces.get(id.index())
    }

    /// Looks a space up by its unique name.
    pub fn by_name(&self, name: &str) -> Option<SpaceId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all spaces in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Space> {
        self.spaces.iter()
    }

    /// Sets the centroid coordinates of a space.
    pub fn set_centroid(&mut self, id: SpaceId, point: Point) {
        self.spaces[id.index()].centroid = Some(point);
    }

    /// Declares two spaces adjacent (connected by a door, portal, stairs…).
    ///
    /// Adjacency is symmetric and idempotent.
    ///
    /// # Panics
    ///
    /// Panics if either id is invalid.
    pub fn add_adjacency(&mut self, a: SpaceId, b: SpaceId) {
        assert!(a.index() < self.spaces.len(), "invalid space {a}");
        assert!(b.index() < self.spaces.len(), "invalid space {b}");
        if a == b {
            return;
        }
        if !self.adjacency[a.index()].contains(&b) {
            self.adjacency[a.index()].push(b);
        }
        if !self.adjacency[b.index()].contains(&a) {
            self.adjacency[b.index()].push(a);
        }
    }

    /// Spaces directly adjacent to `id`.
    pub fn neighbors(&self, id: SpaceId) -> &[SpaceId] {
        &self.adjacency[id.index()]
    }

    // ---- the paper's three operators -------------------------------------

    /// The `contained` operator: true if `outer` is `inner` or one of its
    /// ancestors in the containment tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use tippers_spatial::{SpatialModel, SpaceKind};
    /// let mut m = SpatialModel::new("campus");
    /// let b = m.add_space("B", SpaceKind::Building, m.root());
    /// let f = m.add_space("B-1", SpaceKind::Floor, b);
    /// assert!(m.contains(b, f));
    /// assert!(!m.contains(f, b));
    /// ```
    pub fn contains(&self, outer: SpaceId, inner: SpaceId) -> bool {
        let mut cursor = Some(inner);
        while let Some(id) = cursor {
            if id == outer {
                return true;
            }
            cursor = self.spaces[id.index()].parent;
        }
        false
    }

    /// The `neighboring` operator: true if the spaces share an adjacency
    /// edge (a door, portal, or stairway).
    pub fn neighboring(&self, a: SpaceId, b: SpaceId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// The `overlap` operator: true if the leaf descendants of the two
    /// spaces (or zones expanded to spaces) intersect.
    ///
    /// Containment implies overlap; disjoint subtrees overlap only through
    /// zones that span both.
    pub fn overlap(&self, a: SpaceId, b: SpaceId) -> bool {
        self.contains(a, b) || self.contains(b, a)
    }

    // ---- hierarchy helpers -------------------------------------------------

    /// Ancestors of `id` from its parent up to the root (inclusive).
    pub fn ancestors(&self, id: SpaceId) -> Vec<SpaceId> {
        let mut out = Vec::new();
        let mut cursor = self.spaces[id.index()].parent;
        while let Some(p) = cursor {
            out.push(p);
            cursor = self.spaces[p.index()].parent;
        }
        out
    }

    /// The nearest ancestor (or self) of the given kind.
    pub fn ancestor_of_kind(&self, id: SpaceId, kind: SpaceKind) -> Option<SpaceId> {
        let mut cursor = Some(id);
        while let Some(c) = cursor {
            if self.spaces[c.index()].kind == kind {
                return Some(c);
            }
            cursor = self.spaces[c.index()].parent;
        }
        None
    }

    /// The floor containing `id`, if any.
    pub fn floor_of(&self, id: SpaceId) -> Option<SpaceId> {
        self.ancestor_of_kind(id, SpaceKind::Floor)
    }

    /// The building containing `id`, if any.
    pub fn building_of(&self, id: SpaceId) -> Option<SpaceId> {
        self.ancestor_of_kind(id, SpaceKind::Building)
    }

    /// All descendants of `root` (excluding `root` itself), preorder.
    pub fn descendants(&self, root: SpaceId) -> Vec<SpaceId> {
        let mut out = Vec::new();
        let mut stack: Vec<SpaceId> = self.spaces[root.index()].children.clone();
        while let Some(id) = stack.pop() {
            out.push(id);
            stack.extend_from_slice(&self.spaces[id.index()].children);
        }
        out
    }

    /// All leaf spaces (no children) under `root`, including `root` if it is
    /// itself a leaf.
    pub fn leaves(&self, root: SpaceId) -> Vec<SpaceId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let children = &self.spaces[id.index()].children;
            if children.is_empty() {
                out.push(id);
            } else {
                stack.extend_from_slice(children);
            }
        }
        out
    }

    /// Lowest common ancestor of two spaces. Always exists because the tree
    /// is rooted.
    pub fn lowest_common_ancestor(&self, a: SpaceId, b: SpaceId) -> SpaceId {
        let (mut a, mut b) = (a, b);
        while self.spaces[a.index()].depth > self.spaces[b.index()].depth {
            a = self.spaces[a.index()].parent.expect("non-root has parent");
        }
        while self.spaces[b.index()].depth > self.spaces[a.index()].depth {
            b = self.spaces[b.index()].parent.expect("non-root has parent");
        }
        while a != b {
            a = self.spaces[a.index()].parent.expect("non-root has parent");
            b = self.spaces[b.index()].parent.expect("non-root has parent");
        }
        a
    }

    /// All spaces of a given kind.
    pub fn spaces_of_kind(&self, kind: SpaceKind) -> Vec<SpaceId> {
        self.spaces
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.id)
            .collect()
    }

    /// All rooms with the given use.
    pub fn rooms_with_use(&self, use_: RoomUse) -> Vec<SpaceId> {
        self.spaces_of_kind(SpaceKind::Room(use_))
    }

    // ---- zones -------------------------------------------------------------

    /// Defines a zone (ad-hoc grouping of spaces, possibly crossing the
    /// hierarchy) and returns its id.
    pub fn add_zone(&mut self, name: impl Into<String>, members: Vec<SpaceId>) -> ZoneId {
        let id = ZoneId(self.zones.len() as u32);
        self.zones.push(Zone::new(id, name.into(), members));
        id
    }

    /// Returns a zone by id.
    pub fn zone(&self, id: ZoneId) -> Option<&Zone> {
        self.zones.get(id.0 as usize)
    }

    /// All zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// True if the leaf sets of two zones intersect — the `overlap` operator
    /// applied to zones.
    pub fn zones_overlap(&self, a: ZoneId, b: ZoneId) -> bool {
        let (Some(za), Some(zb)) = (self.zone(a), self.zone(b)) else {
            return false;
        };
        let leaves_a: std::collections::HashSet<SpaceId> =
            za.members().iter().flat_map(|&m| self.leaves(m)).collect();
        zb.members()
            .iter()
            .flat_map(|&m| self.leaves(m))
            .any(|l| leaves_a.contains(&l))
    }

    /// True if `space` falls inside zone `z` (is contained in one of the
    /// zone's member subtrees).
    pub fn zone_covers(&self, z: ZoneId, space: SpaceId) -> bool {
        self.zone(z)
            .is_some_and(|z| z.members().iter().any(|&m| self.contains(m, space)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (SpatialModel, SpaceId, SpaceId, SpaceId, SpaceId) {
        let mut m = SpatialModel::new("campus");
        let b = m.add_space("B", SpaceKind::Building, m.root());
        let f1 = m.add_space("B-1", SpaceKind::Floor, b);
        let r1 = m.add_space("B-101", SpaceKind::room(RoomUse::Office), f1);
        let r2 = m.add_space("B-102", SpaceKind::room(RoomUse::MeetingRoom), f1);
        (m, b, f1, r1, r2)
    }

    #[test]
    fn containment_is_reflexive_and_transitive() {
        let (m, b, f1, r1, _) = small();
        assert!(m.contains(r1, r1));
        assert!(m.contains(f1, r1));
        assert!(m.contains(b, r1));
        assert!(m.contains(m.root(), r1));
        assert!(!m.contains(r1, b));
    }

    #[test]
    fn neighboring_is_symmetric() {
        let (mut m, _, _, r1, r2) = small();
        assert!(!m.neighboring(r1, r2));
        m.add_adjacency(r1, r2);
        assert!(m.neighboring(r1, r2));
        assert!(m.neighboring(r2, r1));
        // idempotent
        m.add_adjacency(r2, r1);
        assert_eq!(m.neighbors(r1).len(), 1);
    }

    #[test]
    fn self_adjacency_is_ignored() {
        let (mut m, _, _, r1, _) = small();
        m.add_adjacency(r1, r1);
        assert!(m.neighbors(r1).is_empty());
    }

    #[test]
    fn overlap_follows_containment() {
        let (m, b, f1, r1, r2) = small();
        assert!(m.overlap(b, r1));
        assert!(m.overlap(r1, b));
        assert!(m.overlap(f1, r2));
        assert!(!m.overlap(r1, r2));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let (mut m, b, _, _, _) = small();
        let err = m
            .try_add_space("B-101", SpaceKind::Corridor, b)
            .unwrap_err();
        assert_eq!(err, SpatialError::DuplicateName("B-101".into()));
    }

    #[test]
    fn unknown_parent_is_rejected() {
        let mut m = SpatialModel::new("c");
        let err = m
            .try_add_space("x", SpaceKind::Building, SpaceId(99))
            .unwrap_err();
        assert_eq!(err, SpatialError::UnknownSpace(SpaceId(99)));
    }

    #[test]
    fn ancestors_and_kind_lookup() {
        let (m, b, f1, r1, _) = small();
        assert_eq!(m.ancestors(r1), vec![f1, b, m.root()]);
        assert_eq!(m.floor_of(r1), Some(f1));
        assert_eq!(m.building_of(r1), Some(b));
        assert_eq!(m.building_of(m.root()), None);
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let (m, b, f1, r1, r2) = small();
        assert_eq!(m.lowest_common_ancestor(r1, r2), f1);
        assert_eq!(m.lowest_common_ancestor(r1, b), b);
        assert_eq!(m.lowest_common_ancestor(r1, r1), r1);
    }

    #[test]
    fn descendants_and_leaves() {
        let (m, b, _, r1, r2) = small();
        let desc = m.descendants(b);
        assert_eq!(desc.len(), 3); // floor + 2 rooms
        let mut leaves = m.leaves(b);
        leaves.sort();
        assert_eq!(leaves, vec![r1, r2]);
    }

    #[test]
    fn zones_cover_and_overlap() {
        let (mut m, _, f1, r1, r2) = small();
        let za = m.add_zone("odd-rooms", vec![r1]);
        let zb = m.add_zone("floor1", vec![f1]);
        let zc = m.add_zone("even-rooms", vec![r2]);
        assert!(m.zone_covers(zb, r1));
        assert!(m.zone_covers(za, r1));
        assert!(!m.zone_covers(za, r2));
        assert!(m.zones_overlap(za, zb));
        assert!(!m.zones_overlap(za, zc));
    }

    #[test]
    fn name_lookup_round_trips() {
        let (m, b, _, _, _) = small();
        assert_eq!(m.by_name("B"), Some(b));
        assert_eq!(m.by_name("nope"), None);
    }

    #[test]
    fn serde_round_trip() {
        let (m, _, _, r1, _) = small();
        let json = serde_json::to_string(&m).unwrap();
        let back: SpatialModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), m.len());
        assert_eq!(back.space(r1).name(), m.space(r1).name());
    }
}
