//! Hierarchical spatial model for smart buildings.
//!
//! The paper's policy language needs a *spatial model* that "includes
//! information about infrastructure, such as buildings, floors, rooms,
//! corridors, and is inherently hierarchical", and that "supports operators
//! such as contained, neighboring, and overlap" (§IV.A.1).
//!
//! This crate provides:
//!
//! * [`SpatialModel`] — an arena of named [`Space`]s forming a containment
//!   tree with an adjacency (door/portal) graph on top.
//! * The three operators from the paper: [`SpatialModel::contains`],
//!   [`SpatialModel::neighboring`], and [`SpatialModel::overlap`] (the latter
//!   via [`Zone`]s, ad-hoc groupings of spaces that may cross the hierarchy).
//! * [`Granularity`] — the location-granularity lattice
//!   (`Point < Room < Floor < Building < Campus < Suppressed`) used by the
//!   enforcement engine to degrade location answers instead of denying them.
//! * Shortest-path queries over the adjacency graph ([`SpatialModel::path`]),
//!   which the Smart Concierge service uses for directions.
//!
//! # Examples
//!
//! ```
//! use tippers_spatial::{SpatialModel, SpaceKind, RoomUse};
//!
//! let mut model = SpatialModel::new("uci");
//! let dbh = model.add_space("DBH", SpaceKind::Building, model.root());
//! let f1 = model.add_space("DBH-1", SpaceKind::Floor, dbh);
//! let r1100 = model.add_space("DBH-1100", SpaceKind::room(RoomUse::Office), f1);
//! assert!(model.contains(dbh, r1100));
//! assert_eq!(model.floor_of(r1100), Some(f1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod granularity;
mod model;
mod path;
mod point;
mod zone;

pub mod fixtures;

pub use error::SpatialError;
pub use granularity::{GranularLocation, Granularity};
pub use model::{RoomUse, Space, SpaceId, SpaceKind, SpatialModel};
pub use path::{Path, PathStep};
pub use point::Point;
pub use zone::{Zone, ZoneId};
