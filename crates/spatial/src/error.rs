use std::fmt;

use crate::model::SpaceId;
use crate::zone::ZoneId;

/// Errors produced by spatial-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpatialError {
    /// A referenced space does not exist in the model.
    UnknownSpace(SpaceId),
    /// A referenced zone does not exist in the model.
    UnknownZone(ZoneId),
    /// An operation would create a containment cycle.
    ContainmentCycle {
        /// The space that would become its own ancestor.
        space: SpaceId,
    },
    /// No path exists between two spaces in the adjacency graph.
    NoPath {
        /// Path origin.
        from: SpaceId,
        /// Path destination.
        to: SpaceId,
    },
    /// A space name is duplicated within the model.
    DuplicateName(String),
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::UnknownSpace(id) => write!(f, "unknown space {id}"),
            SpatialError::UnknownZone(id) => write!(f, "unknown zone {id}"),
            SpatialError::ContainmentCycle { space } => {
                write!(f, "containment cycle involving space {space}")
            }
            SpatialError::NoPath { from, to } => {
                write!(f, "no path from space {from} to space {to}")
            }
            SpatialError::DuplicateName(name) => {
                write!(f, "duplicate space name `{name}`")
            }
        }
    }
}

impl std::error::Error for SpatialError {}
