use serde::{Deserialize, Serialize};

/// A point in building-local coordinates, in metres.
///
/// `z` is a floor index rather than a physical height; two points on the same
/// floor share a `z`. Points are only meaningful relative to the
/// [`SpatialModel`](crate::SpatialModel) they were produced for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// East-west offset, metres.
    pub x: f64,
    /// North-south offset, metres.
    pub y: f64,
    /// Floor index (0 = ground floor).
    pub z: i32,
}

impl Point {
    /// Creates a point at `(x, y)` on floor `z`.
    pub fn new(x: f64, y: f64, z: i32) -> Self {
        Point { x, y, z }
    }

    /// Euclidean distance in the floor plane, ignoring floor index.
    ///
    /// Cross-floor distance is dominated by stairs/elevators, which are
    /// modelled as adjacency edges, so planar distance is the useful metric.
    pub fn planar_distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// True if both points lie on the same floor.
    pub fn same_floor(&self, other: &Point) -> bool {
        self.z == other.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0, 1);
        let b = Point::new(3.0, 4.0, 2);
        assert!((a.planar_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn same_floor_compares_z() {
        assert!(Point::new(0.0, 0.0, 2).same_floor(&Point::new(9.0, 9.0, 2)));
        assert!(!Point::new(0.0, 0.0, 2).same_floor(&Point::new(0.0, 0.0, 3)));
    }
}
