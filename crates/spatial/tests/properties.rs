//! Property-based tests for the spatial model's algebraic laws.

use proptest::prelude::*;
use tippers_spatial::{GranularLocation, Granularity, RoomUse, SpaceId, SpaceKind, SpatialModel};

/// Builds a random tree of `n` spaces by attaching each new space to a
/// uniformly chosen existing one, then adds `edges` random adjacencies.
fn arb_model(max_spaces: usize) -> impl Strategy<Value = SpatialModel> {
    (2usize..=max_spaces).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n - 1),
            proptest::collection::vec((0usize..n, 0usize..n), 0..n),
        )
            .prop_map(move |(parents, edges)| {
                let mut m = SpatialModel::new("campus");
                let mut ids = vec![m.root()];
                for (i, &p) in parents.iter().enumerate() {
                    let parent = ids[p % ids.len()];
                    let kind = match i % 4 {
                        0 => SpaceKind::Building,
                        1 => SpaceKind::Floor,
                        2 => SpaceKind::Corridor,
                        _ => SpaceKind::room(RoomUse::Office),
                    };
                    ids.push(m.add_space(format!("s{i}"), kind, parent));
                }
                for (a, b) in edges {
                    let a = ids[a % ids.len()];
                    let b = ids[b % ids.len()];
                    m.add_adjacency(a, b);
                }
                m
            })
    })
}

fn all_ids(m: &SpatialModel) -> Vec<SpaceId> {
    m.iter().map(tippers_spatial::Space::id).collect()
}

proptest! {
    /// Containment is a partial order: reflexive, antisymmetric, transitive.
    #[test]
    fn containment_partial_order(m in arb_model(24), seed in any::<u64>()) {
        let ids = all_ids(&m);
        let pick = |s: u64| ids[(s as usize) % ids.len()];
        let (a, b, c) = (pick(seed), pick(seed >> 8), pick(seed >> 16));
        prop_assert!(m.contains(a, a));
        if m.contains(a, b) && m.contains(b, a) {
            prop_assert_eq!(a, b);
        }
        if m.contains(a, b) && m.contains(b, c) {
            prop_assert!(m.contains(a, c));
        }
    }

    /// The LCA contains both arguments, and no deeper space does on the path.
    #[test]
    fn lca_contains_both(m in arb_model(24), seed in any::<u64>()) {
        let ids = all_ids(&m);
        let a = ids[(seed as usize) % ids.len()];
        let b = ids[((seed >> 13) as usize) % ids.len()];
        let l = m.lowest_common_ancestor(a, b);
        prop_assert!(m.contains(l, a));
        prop_assert!(m.contains(l, b));
        // Any strict descendant of l on a's ancestor chain must not contain b.
        for anc in m.ancestors(a) {
            if m.contains(l, anc) && anc != l {
                prop_assert!(!m.contains(anc, b));
            }
        }
    }

    /// Neighboring is symmetric and irreflexive.
    #[test]
    fn neighboring_symmetric(m in arb_model(24)) {
        for s in all_ids(&m) {
            prop_assert!(!m.neighboring(s, s));
            for &n in m.neighbors(s) {
                prop_assert!(m.neighboring(n, s));
            }
        }
    }

    /// Overlap is symmetric and implied by containment.
    #[test]
    fn overlap_symmetric(m in arb_model(24), seed in any::<u64>()) {
        let ids = all_ids(&m);
        let a = ids[(seed as usize) % ids.len()];
        let b = ids[((seed >> 17) as usize) % ids.len()];
        prop_assert_eq!(m.overlap(a, b), m.overlap(b, a));
        if m.contains(a, b) {
            prop_assert!(m.overlap(a, b));
        }
    }

    /// BFS paths are minimal: every returned path's hop count is <= any
    /// simple path found by a random walk, and consecutive steps are
    /// adjacent.
    #[test]
    fn paths_are_walkable(m in arb_model(24), seed in any::<u64>()) {
        let ids = all_ids(&m);
        let a = ids[(seed as usize) % ids.len()];
        let b = ids[((seed >> 23) as usize) % ids.len()];
        if let Ok(p) = m.path(a, b) {
            let steps = p.steps();
            prop_assert_eq!(steps.first().unwrap().space, a);
            prop_assert_eq!(steps.last().unwrap().space, b);
            for w in steps.windows(2) {
                prop_assert!(m.neighboring(w[0].space, w[1].space));
            }
        }
    }

    /// Granularity degradation never reveals a finer space than requested:
    /// the reported space always contains the true space.
    #[test]
    fn degradation_is_sound(m in arb_model(24), seed in any::<u64>(), g in 0usize..6) {
        let ids = all_ids(&m);
        let s = ids[(seed as usize) % ids.len()];
        let gran = Granularity::ALL[g];
        let loc = GranularLocation::degrade(&m, s, None, gran);
        match loc.space {
            Some(reported) => prop_assert!(m.contains(reported, s)),
            None => prop_assert_eq!(loc.granularity, Granularity::Suppressed),
        }
        // Achieved granularity is never finer than requested.
        prop_assert!(loc.granularity >= gran || loc.space.is_none_or(|r| m.contains(r, s)));
    }

    /// Join/meet on the granularity lattice are commutative, associative,
    /// idempotent, and absorb.
    #[test]
    fn granularity_lattice_laws(a in 0usize..6, b in 0usize..6, c in 0usize..6) {
        let (a, b, c) = (Granularity::ALL[a], Granularity::ALL[b], Granularity::ALL[c]);
        prop_assert_eq!(a.coarsest(b), b.coarsest(a));
        prop_assert_eq!(a.finest(b), b.finest(a));
        prop_assert_eq!(a.coarsest(b).coarsest(c), a.coarsest(b.coarsest(c)));
        prop_assert_eq!(a.coarsest(a), a);
        prop_assert_eq!(a.coarsest(a.finest(b)), a);
        prop_assert_eq!(a.finest(a.coarsest(b)), a);
    }
}
