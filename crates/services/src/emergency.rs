//! The emergency-response service behind Policy 2: "The building
//! management system stores your location to locate you in case of
//! emergency situations."
//!
//! Its requests carry the `emergency-response` purpose, which Policy 2
//! declares as **required** — they succeed even for users who opted out of
//! location sharing (the Policy 2 vs Preference 2 conflict, resolved in
//! the building's favour and notified to the user).

use tippers::{DataRequest, Priority, ReleasedValue, SubjectSelector, Tippers};
use tippers_policy::{catalog, BuildingPolicy, ServiceId, Timestamp, UserId};
use tippers_spatial::{GranularLocation, SpaceId};

use crate::BuildingService;

/// One located occupant during an emergency.
#[derive(Debug, Clone, PartialEq)]
pub struct EmergencyRoster {
    /// Everyone the BMS could locate, with their last known location.
    pub located: Vec<(UserId, GranularLocation)>,
    /// Registered occupants with no recent location record.
    pub unaccounted: Vec<UserId>,
}

/// The emergency-response service.
#[derive(Debug, Default)]
pub struct EmergencyResponse;

impl EmergencyResponse {
    /// Creates the service.
    pub fn new() -> EmergencyResponse {
        EmergencyResponse
    }

    /// Musters everyone in (a subtree of) the building: who is where?
    ///
    /// Looks back one hour, which is what the stored WiFi log supports.
    pub fn muster(
        &self,
        bms: &mut Tippers,
        area: Option<SpaceId>,
        now: Timestamp,
    ) -> EmergencyRoster {
        let c = bms.ontology().concepts().clone();
        let request = DataRequest {
            service: self.id(),
            purpose: c.emergency_response,
            data: c.location_room,
            subjects: match area {
                Some(space) => SubjectSelector::InSpace(space),
                None => SubjectSelector::All,
            },
            from: Timestamp(now.seconds() - 3600),
            to: Timestamp(now.seconds() + 1),
            requester_space: None,
            // Life-safety traffic: never shed under overload.
            priority: Priority::Emergency,
            deadline: Some(Timestamp(now.seconds() + 60)),
        };
        let response = bms.handle_request(&request, now);
        let mut located = Vec::new();
        let mut unaccounted = Vec::new();
        for result in response.results {
            let last_location = result.records.iter().rev().find_map(|r| match &r.value {
                ReleasedValue::Location(l) if !l.is_suppressed() => Some(*l),
                _ => None,
            });
            match last_location {
                Some(l) => located.push((result.user, l)),
                None => unaccounted.push(result.user),
            }
        }
        EmergencyRoster {
            located,
            unaccounted,
        }
    }
}

impl BuildingService for EmergencyResponse {
    fn id(&self) -> ServiceId {
        catalog::services::emergency()
    }

    /// Policy 2 itself (Figure 2's machine-readable form).
    fn policies(&self, bms: &Tippers) -> Vec<BuildingPolicy> {
        let building = bms
            .model()
            .spaces_of_kind(tippers_spatial::SpaceKind::Building)
            .first()
            .copied()
            .unwrap_or_else(|| bms.model().root());
        vec![
            // The id is a placeholder; the BMS assigns real ids on add.
            catalog::policy2_emergency_location(
                tippers_policy::PolicyId(0),
                building,
                bms.ontology(),
            )
            .with_setting(BuildingPolicy::location_setting()),
        ]
    }
}
