//! Building services on top of TIPPERS (§III.B).
//!
//! "Smart buildings such as DBH also provide services, built on top of the
//! collected sensor data, to the inhabitants": the paper names the **Smart
//! Concierge** ("helps users locate rooms, inhabitants and events") and
//! **Smart Meeting** ("can help organize meetings more efficiently"), plus
//! a third-party **food delivery** company that locates subscribers at
//! lunch time. An **emergency response** service backs Policy 2.
//!
//! Every service consumes data exclusively through
//! [`tippers::Tippers::handle_request`] / [`tippers::Tippers::locate`],
//! so user preferences and
//! building policies bind it exactly as the paper prescribes (steps 9–10
//! of Figure 1). Each service also declares its own
//! [`BuildingPolicy`] so the BMS can
//! advertise its practices (Figure 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concierge;
mod delivery;
mod emergency;
mod meeting;

pub use concierge::{Concierge, ConciergeError, Directions};
pub use delivery::{DeliveryOutcome, FoodDelivery};
pub use emergency::{EmergencyResponse, EmergencyRoster};
pub use meeting::{MeetingProposal, SchedulingError, SmartMeeting};

use tippers::Tippers;
use tippers_policy::{BuildingPolicy, ServiceId};

/// Common surface of every building service.
pub trait BuildingService {
    /// The service's id (matched against policy `service_id`s).
    fn id(&self) -> ServiceId;

    /// The policies the service asks the building to adopt and advertise
    /// on its behalf (its Figure 3 disclosure, in normalized form).
    fn policies(&self, bms: &Tippers) -> Vec<BuildingPolicy>;
}

/// Registers a service's policies with the BMS.
pub fn register_service(bms: &mut Tippers, service: &dyn BuildingService) {
    for policy in service.policies(bms) {
        bms.add_policy(policy);
    }
}
