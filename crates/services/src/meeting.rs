//! The Smart Meeting service: "can help organize meetings more
//! efficiently" (§III.B); Preference 4 grants it "access to the details of
//! the meeting and its participants".

use std::fmt;

use tippers::{DataRequest, Priority, SubjectSelector, Tippers};
use tippers_policy::{catalog, BuildingPolicy, Modality, PolicyId, ServiceId, Timestamp, UserId};
use tippers_spatial::SpaceId;

use crate::BuildingService;

/// A proposed meeting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetingProposal {
    /// The chosen room.
    pub room: SpaceId,
    /// Proposed start time.
    pub start: Timestamp,
    /// Participants whose presence could be confirmed.
    pub confirmed: Vec<UserId>,
    /// Participants whose data was withheld — they must be invited
    /// manually (privacy cost, not failure).
    pub unconfirmed: Vec<UserId>,
}

/// Why scheduling failed outright.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulingError {
    /// No meeting room is known to the building.
    NoRooms,
    /// Every participant's data was withheld.
    NoParticipantsVisible,
}

impl fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingError::NoRooms => f.write_str("no meeting rooms available"),
            SchedulingError::NoParticipantsVisible => {
                f.write_str("no participant shared the data needed for scheduling")
            }
        }
    }
}

impl std::error::Error for SchedulingError {}

/// The Smart Meeting service.
#[derive(Debug, Default)]
pub struct SmartMeeting {
    /// Candidate meeting rooms (usually the building's meeting rooms).
    pub rooms: Vec<SpaceId>,
}

impl SmartMeeting {
    /// Creates the service over a set of candidate rooms.
    pub fn new(rooms: Vec<SpaceId>) -> SmartMeeting {
        SmartMeeting { rooms }
    }

    /// Proposes a room and start time: confirms which participants are in
    /// the building (through an enforced location request), then picks the
    /// meeting room with no recent occupancy signal.
    ///
    /// # Errors
    ///
    /// [`SchedulingError::NoRooms`] or, when every participant withheld
    /// their data, [`SchedulingError::NoParticipantsVisible`].
    pub fn schedule(
        &self,
        bms: &mut Tippers,
        participants: &[UserId],
        now: Timestamp,
    ) -> Result<MeetingProposal, SchedulingError> {
        if self.rooms.is_empty() {
            return Err(SchedulingError::NoRooms);
        }
        let c = bms.ontology().concepts().clone();
        let mut confirmed = Vec::new();
        let mut unconfirmed = Vec::new();
        for &user in participants {
            // Meeting details + participant presence flow under the
            // scheduling purpose; enforcement decides per participant.
            let request = DataRequest {
                service: self.id(),
                purpose: c.scheduling,
                data: c.meeting_details,
                subjects: SubjectSelector::One(user),
                from: Timestamp(now.seconds() - 3600),
                to: Timestamp(now.seconds() + 1),
                requester_space: None,
                priority: Priority::Interactive,
                deadline: None,
            };
            let response = bms.handle_request(&request, now);
            let permitted = response
                .results
                .first()
                .is_some_and(|r| r.decision.permits());
            if permitted {
                confirmed.push(user);
            } else {
                unconfirmed.push(user);
            }
        }
        if confirmed.is_empty() {
            return Err(SchedulingError::NoParticipantsVisible);
        }
        // Prefer a room with no live occupancy signal; fall back to the
        // first candidate.
        let room = self
            .rooms
            .iter()
            .copied()
            .find(|&room| bms.room_occupied(room, now) != Some(true))
            .unwrap_or(self.rooms[0]);
        Ok(MeetingProposal {
            room,
            start: Timestamp(now.seconds() + 1800),
            confirmed,
            unconfirmed,
        })
    }
}

impl BuildingService for SmartMeeting {
    fn id(&self) -> ServiceId {
        catalog::services::smart_meeting()
    }

    /// Smart Meeting's disclosure: meeting details and participants, for
    /// scheduling, **opt-in** (Preference 4 is the grant).
    fn policies(&self, bms: &Tippers) -> Vec<BuildingPolicy> {
        let c = bms.ontology().concepts();
        vec![BuildingPolicy::new(
            PolicyId(0),
            "Smart Meeting scheduling data",
            bms.model().root(),
            c.meeting_details,
            c.scheduling,
        )
        .with_description("Meeting details and participant presence are used to organize meetings")
        .with_actions(tippers_policy::ActionSet::ALL)
        .with_modality(Modality::OptIn)
        .with_service(self.id())]
    }
}
