//! The third-party food-delivery service: "a food delivery company can
//! automatically locate and deliver food to building inhabitants during
//! lunch time" (§III.B).
//!
//! Being third-party and commercial, its location use is **opt-in**: with
//! no explicit grant, the BMS denies every lookup.

use tippers::Tippers;
use tippers_policy::{catalog, BuildingPolicy, Modality, PolicyId, ServiceId, Timestamp, UserId};
use tippers_spatial::GranularLocation;

use crate::BuildingService;

/// The outcome of a delivery attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum DeliveryOutcome {
    /// Food is on its way to the located space.
    Dispatched {
        /// Where the courier is headed (as precise as enforcement allows).
        location: GranularLocation,
    },
    /// The subscriber's location was withheld; delivery falls back to the
    /// lobby pickup point.
    LobbyPickup,
    /// Outside the lunch window — the service does not even ask.
    NotLunchTime,
}

/// The delivery service.
#[derive(Debug, Default)]
pub struct FoodDelivery;

impl FoodDelivery {
    /// Creates the service.
    pub fn new() -> FoodDelivery {
        FoodDelivery
    }

    /// True during the lunch window (11:30–13:30).
    pub fn is_lunch_time(now: Timestamp) -> bool {
        let tod = now.time_of_day();
        let mins = tod.hour() * 60 + tod.minute();
        (11 * 60 + 30..=13 * 60 + 30).contains(&mins)
    }

    /// Attempts a lunch delivery to a subscriber.
    pub fn deliver_lunch(
        &self,
        bms: &mut Tippers,
        subscriber: UserId,
        now: Timestamp,
    ) -> DeliveryOutcome {
        if !Self::is_lunch_time(now) {
            return DeliveryOutcome::NotLunchTime;
        }
        let purpose = bms.ontology().concepts().delivery;
        match bms.locate(self.id(), purpose, subscriber, now) {
            Some(location) if !location.is_suppressed() => DeliveryOutcome::Dispatched { location },
            _ => DeliveryOutcome::LobbyPickup,
        }
    }
}

impl BuildingService for FoodDelivery {
    fn id(&self) -> ServiceId {
        catalog::services::food_delivery()
    }

    fn policies(&self, bms: &Tippers) -> Vec<BuildingPolicy> {
        let c = bms.ontology().concepts();
        vec![BuildingPolicy::new(
            PolicyId(0),
            "Food delivery location use",
            bms.model().root(),
            c.location_room,
            c.delivery,
        )
        .with_description("Subscribers are located during lunch time to deliver food")
        .with_actions(tippers_policy::ActionSet::ALL)
        .with_modality(Modality::OptIn)
        .with_service(self.id())]
    }
}
