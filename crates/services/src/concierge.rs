//! The Smart Concierge: "helps users locate rooms, inhabitants and events
//! in the building" and gives directions ("nearest coffee machine").

use std::fmt;

use tippers::Tippers;
use tippers_policy::{catalog, BuildingPolicy, PolicyId, ServiceId, Timestamp};
use tippers_spatial::{Granularity, Path, RoomUse, SpaceId};

use crate::BuildingService;

/// Directions returned to the user.
#[derive(Debug, Clone, PartialEq)]
pub struct Directions {
    /// Where the concierge believes the user started (possibly degraded).
    pub origin: SpaceId,
    /// The destination.
    pub destination: SpaceId,
    /// The route.
    pub path: Path,
    /// Granularity of the location the directions were computed from —
    /// coarser locations yield vaguer (longer) routes, the utility cost of
    /// privacy measured in E9.
    pub location_granularity: Granularity,
}

/// Why the concierge could not help.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConciergeError {
    /// The user's location is not available to this service (denied or
    /// suppressed).
    LocationUnavailable,
    /// No candidate destination exists.
    NoCandidate,
    /// No walkable route exists.
    NoRoute,
}

impl fmt::Display for ConciergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConciergeError::LocationUnavailable => {
                f.write_str("user location unavailable to the Concierge")
            }
            ConciergeError::NoCandidate => f.write_str("no candidate destination"),
            ConciergeError::NoRoute => f.write_str("no walkable route"),
        }
    }
}

impl std::error::Error for ConciergeError {}

/// The Smart Concierge service.
#[derive(Debug, Default)]
pub struct Concierge;

impl Concierge {
    /// Creates the service.
    pub fn new() -> Concierge {
        Concierge
    }

    /// Resolves the user's current space as permitted by enforcement —
    /// exact room when allowed, a floor/building representative when
    /// degraded, never anything when denied.
    fn permitted_origin(
        &self,
        bms: &mut Tippers,
        user: tippers_policy::UserId,
        now: Timestamp,
    ) -> Result<(SpaceId, Granularity), ConciergeError> {
        let purpose = bms.ontology().concepts().navigation;
        let location = bms
            .locate(self.id(), purpose, user, now)
            .ok_or(ConciergeError::LocationUnavailable)?;
        match location.space {
            Some(space) => Ok((space, location.granularity)),
            None => Err(ConciergeError::LocationUnavailable),
        }
    }

    /// Directions from the user's current (permitted) location to the
    /// nearest room of the given use — "nearest coffee machine" is
    /// `RoomUse::Kitchen`.
    pub fn nearest(
        &self,
        bms: &mut Tippers,
        user: tippers_policy::UserId,
        target: RoomUse,
        now: Timestamp,
    ) -> Result<Directions, ConciergeError> {
        let (origin_space, granularity) = self.permitted_origin(bms, user, now)?;
        // A degraded location names a floor or building; route from a
        // concrete representative inside it (its first corridor/leaf).
        let origin = representative(bms, origin_space);
        let candidates = bms.model().rooms_with_use(target);
        if candidates.is_empty() {
            return Err(ConciergeError::NoCandidate);
        }
        let (destination, path) = bms
            .model()
            .nearest(origin, &candidates)
            .ok_or(ConciergeError::NoRoute)?;
        Ok(Directions {
            origin,
            destination,
            path,
            location_granularity: granularity,
        })
    }

    /// Directions to a specific space.
    pub fn directions_to(
        &self,
        bms: &mut Tippers,
        user: tippers_policy::UserId,
        destination: SpaceId,
        now: Timestamp,
    ) -> Result<Directions, ConciergeError> {
        let (origin_space, granularity) = self.permitted_origin(bms, user, now)?;
        let origin = representative(bms, origin_space);
        let path = bms
            .model()
            .path(origin, destination)
            .map_err(|_| ConciergeError::NoRoute)?;
        Ok(Directions {
            origin,
            destination,
            path,
            location_granularity: granularity,
        })
    }
}

/// A walkable representative of a possibly non-leaf space: the space
/// itself if it has no children, else its first corridor, else its first
/// leaf.
fn representative(bms: &Tippers, space: SpaceId) -> SpaceId {
    let model = bms.model();
    if model.space(space).children().is_empty() {
        return space;
    }
    model
        .descendants(space)
        .into_iter()
        .find(|&s| matches!(model.space(s).kind(), tippers_spatial::SpaceKind::Corridor))
        .or_else(|| model.leaves(space).first().copied())
        .unwrap_or(space)
}

impl BuildingService for Concierge {
    fn id(&self) -> ServiceId {
        catalog::services::concierge()
    }

    /// The Concierge's Figure 3 disclosure: location data, used to give
    /// directions, opt-out with the Figure 4 fine/coarse/none setting.
    fn policies(&self, bms: &Tippers) -> Vec<BuildingPolicy> {
        let c = bms.ontology().concepts();
        let building = bms.model().root();
        vec![BuildingPolicy::new(
            PolicyId(0),
            "Concierge location use",
            building,
            c.location_room,
            c.navigation,
        )
        .with_description("Your location data is used to give you directions around the building")
        .with_actions(tippers_policy::ActionSet::ALL)
        .with_service(self.id())
        .with_setting(BuildingPolicy::location_setting())]
    }
}
