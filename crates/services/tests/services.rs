//! Service-level integration tests: each paper service running against a
//! populated BMS with real simulator data.

use tippers::{Tippers, TippersConfig};
use tippers_ontology::Ontology;
use tippers_policy::{catalog, Effect, PolicyId, PreferenceId, Timestamp, UserId};
use tippers_sensors::{BuildingSimulator, DeploymentConfig, Population, SimulatorConfig};
use tippers_services::{
    register_service, BuildingService, Concierge, ConciergeError, DeliveryOutcome,
    EmergencyResponse, FoodDelivery, SmartMeeting,
};
use tippers_spatial::{Granularity, RoomUse};

/// A BMS fed with a morning of simulated data, all services registered.
fn populated_bms() -> (Tippers, BuildingSimulator, Vec<UserId>) {
    let ontology = Ontology::standard();
    let config = SimulatorConfig {
        seed: 5,
        population: Population {
            staff: 6,
            faculty: 6,
            grads: 8,
            undergrads: 8,
            visitors: 2,
        },
        tick_secs: 600,
        deployment: DeploymentConfig {
            cameras: 6,
            wifi_aps: 240,
            beacons: 40,
            power_meters: 20,
            motion_everywhere: true,
            hvac_per_floor: true,
            badge_readers: true,
        },
        identify_probability: 0.3,
    };
    let mut sim = BuildingSimulator::new(config, &ontology);
    let mut bms = Tippers::new(
        ontology.clone(),
        sim.dbh().model.clone(),
        TippersConfig::default(),
    );
    bms.register_occupants(sim.occupants());

    // Building policies 1–4 plus every service's own policies.
    let dbh = sim.dbh().clone();
    bms.add_policy(catalog::policy1_thermostat(
        PolicyId(0),
        dbh.building,
        bms.ontology(),
    ));
    bms.add_policy(catalog::policy3_meeting_room_access(
        PolicyId(0),
        dbh.building,
        dbh.meeting_rooms.clone(),
        bms.ontology(),
    ));
    register_service(&mut bms, &EmergencyResponse::new()); // carries Policy 2
    register_service(&mut bms, &Concierge::new());
    register_service(&mut bms, &SmartMeeting::new(dbh.meeting_rooms.clone()));
    register_service(&mut bms, &FoodDelivery::new());

    sim.set_clock(Timestamp::at(0, 8, 0));
    let trace = sim.run_until(Timestamp::at(0, 12, 0));
    let (stored, _) = bms.ingest(&trace.observations);
    assert!(stored > 0, "the BMS should store authorized observations");
    let users = sim.occupants().iter().map(|o| o.user).collect();
    (bms, sim, users)
}

/// A user present at noon (staff are reliably in by then).
fn present_user(bms: &mut Tippers, sim: &mut BuildingSimulator, users: &[UserId]) -> UserId {
    let now = Timestamp::at(0, 11, 55);
    users
        .iter()
        .copied()
        .find(|&u| {
            sim.position_of(u, now).is_some() && {
                let c = bms.ontology().concepts().navigation;
                bms.locate(catalog::services::concierge(), c, u, now)
                    .is_some()
            }
        })
        .expect("someone is in the building at noon")
}

#[test]
fn concierge_gives_directions_to_nearest_kitchen() {
    let (mut bms, mut sim, users) = populated_bms();
    let user = present_user(&mut bms, &mut sim, &users);
    let concierge = Concierge::new();
    let directions = concierge
        .nearest(&mut bms, user, RoomUse::Kitchen, Timestamp::at(0, 11, 55))
        .expect("directions");
    assert!(matches!(
        bms.model().space(directions.destination).kind(),
        tippers_spatial::SpaceKind::Room(RoomUse::Kitchen)
    ));
    assert!(directions.path.hops() >= 1);
}

#[test]
fn concierge_respects_opt_out() {
    let (mut bms, _sim, users) = populated_bms();
    let user = users[0];
    let now = Timestamp::at(0, 11, 55);
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), user, &bms.ontology().clone()),
        now,
    );
    let concierge = Concierge::new();
    let err = concierge
        .nearest(&mut bms, user, RoomUse::Kitchen, now)
        .unwrap_err();
    assert_eq!(err, ConciergeError::LocationUnavailable);
}

#[test]
fn concierge_coarse_location_still_works() {
    let (mut bms, mut sim, users) = populated_bms();
    let user = present_user(&mut bms, &mut sim, &users);
    let now = Timestamp::at(0, 11, 55);
    bms.submit_preference(
        catalog::preference_coarse_location(
            PreferenceId(0),
            user,
            Granularity::Floor,
            &bms.ontology().clone(),
        ),
        now,
    );
    let concierge = Concierge::new();
    let directions = concierge
        .nearest(&mut bms, user, RoomUse::Kitchen, now)
        .expect("coarse directions still possible");
    assert_eq!(directions.location_granularity, Granularity::Floor);
}

#[test]
fn emergency_muster_overrides_opt_outs() {
    let (mut bms, mut sim, users) = populated_bms();
    let user = present_user(&mut bms, &mut sim, &users);
    let now = Timestamp::at(0, 11, 55);
    // Even a full location opt-out cannot hide from the emergency muster
    // (Policy 2 is mandatory) — and the user is notified of the override.
    bms.submit_preference(
        catalog::preference2_no_location(PreferenceId(0), user, &bms.ontology().clone()),
        now,
    );
    let emergency = EmergencyResponse::new();
    let roster = emergency.muster(&mut bms, None, now);
    assert!(
        roster.located.iter().any(|(u, _)| *u == user),
        "mandatory policy must locate the opted-out user"
    );
    let notes = bms.take_notifications(user);
    assert!(!notes.is_empty(), "user must be told about the override");
}

#[test]
fn food_delivery_requires_opt_in() {
    let (mut bms, mut sim, users) = populated_bms();
    let user = present_user(&mut bms, &mut sim, &users);
    let lunch = Timestamp::at(0, 12, 0);
    let delivery = FoodDelivery::new();
    // Without a grant: lobby pickup.
    assert_eq!(
        delivery.deliver_lunch(&mut bms, user, lunch),
        DeliveryOutcome::LobbyPickup
    );
    // Grant the third party access.
    let ont = bms.ontology().clone();
    let c = ont.concepts();
    let grant = tippers_policy::UserPreference::new(
        PreferenceId(0),
        user,
        tippers_policy::PreferenceScope {
            data: Some(c.location),
            service: Some(catalog::services::food_delivery()),
            ..Default::default()
        },
        Effect::Allow,
    )
    .with_priority(10);
    bms.submit_preference(grant, lunch);
    match delivery.deliver_lunch(&mut bms, user, lunch) {
        DeliveryOutcome::Dispatched { location } => {
            assert!(location.space.is_some());
        }
        other => panic!("expected dispatch after opt-in, got {other:?}"),
    }
    // Outside lunch hours the service does not ask at all.
    assert_eq!(
        delivery.deliver_lunch(&mut bms, user, Timestamp::at(0, 16, 0)),
        DeliveryOutcome::NotLunchTime
    );
}

#[test]
fn smart_meeting_needs_preference4() {
    let (mut bms, mut sim, users) = populated_bms();
    let a = present_user(&mut bms, &mut sim, &users);
    let b = users.iter().copied().find(|&u| u != a).unwrap();
    let now = Timestamp::at(0, 11, 0);
    let dbh = sim.dbh().clone();
    let meeting = SmartMeeting::new(dbh.meeting_rooms.clone());
    // Opt-in service with no grants: nobody is visible.
    let err = meeting.schedule(&mut bms, &[a, b], now).unwrap_err();
    assert_eq!(
        err,
        tippers_services::SchedulingError::NoParticipantsVisible
    );
    // Participant `a` grants Preference 4.
    let ont = bms.ontology().clone();
    bms.submit_preference(
        catalog::preference4_smart_meeting(PreferenceId(0), a, &ont),
        now,
    );
    let proposal = meeting.schedule(&mut bms, &[a, b], now).expect("scheduled");
    assert_eq!(proposal.confirmed, vec![a]);
    assert_eq!(proposal.unconfirmed, vec![b]);
    assert!(dbh.meeting_rooms.contains(&proposal.room));
}

#[test]
fn service_ids_match_catalog() {
    assert_eq!(Concierge::new().id(), catalog::services::concierge());
    assert_eq!(
        SmartMeeting::new(vec![]).id(),
        catalog::services::smart_meeting()
    );
    assert_eq!(FoodDelivery::new().id(), catalog::services::food_delivery());
    assert_eq!(
        EmergencyResponse::new().id(),
        catalog::services::emergency()
    );
}
