//! Property-based tests for the policy language.

use proptest::prelude::*;
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{
    conflict, BuildingPolicy, Condition, Effect, IsoDuration, Modality, PolicyId, PreferenceId,
    PreferenceScope, ResolutionStrategy, TimeOfDay, TimeWindow, Timestamp, UserId, UserPreference,
    WeekdaySet,
};
use tippers_spatial::{Granularity, SpaceKind, SpatialModel};

fn arb_duration() -> impl Strategy<Value = IsoDuration> {
    (0u32..5, 0u32..24, 0u32..60, 0u32..48, 0u32..120, 0u32..120).prop_map(
        |(y, m, d, h, min, s)| IsoDuration {
            years: y,
            months: m,
            days: d,
            hours: h,
            minutes: min,
            seconds: s,
        },
    )
}

fn arb_window() -> impl Strategy<Value = TimeWindow> {
    (0u32..24, 0u32..60, 0u32..24, 0u32..60, 1u8..128).prop_map(|(h1, m1, h2, m2, days)| {
        TimeWindow {
            start: TimeOfDay::new(h1, m1),
            end: TimeOfDay::new(h2, m2),
            days: WeekdaySet::of(
                &tippers_policy::Weekday::ALL
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| days & (1 << i) != 0)
                    .map(|(_, d)| *d)
                    .collect::<Vec<_>>(),
            ),
        }
    })
}

fn arb_effect() -> impl Strategy<Value = Effect> {
    prop_oneof![
        Just(Effect::Allow),
        Just(Effect::Deny),
        (0usize..6).prop_map(|g| Effect::Degrade(Granularity::ALL[g])),
        (0.1f64..10.0).prop_map(|sigma| Effect::Noise { sigma }),
    ]
}

/// Environment shared by the conflict-equivalence property.
fn env() -> (Ontology, SpatialModel, Vec<tippers_spatial::SpaceId>) {
    let ont = Ontology::standard();
    let mut m = SpatialModel::new("campus");
    let b = m.add_space("B", SpaceKind::Building, m.root());
    let mut spaces = vec![m.root(), b];
    for f in 0..3 {
        let floor = m.add_space(format!("B-{f}"), SpaceKind::Floor, b);
        spaces.push(floor);
        for r in 0..3 {
            spaces.push(m.add_space(
                format!("B-{f}{r:02}"),
                SpaceKind::room(tippers_spatial::RoomUse::Office),
                floor,
            ));
        }
    }
    (ont, m, spaces)
}

/// Data-taxonomy concepts used to generate random policies/preferences.
fn data_concepts(ont: &Ontology) -> Vec<ConceptId> {
    ont.data.iter().map(tippers_ontology::Concept::id).collect()
}

fn purpose_concepts(ont: &Ontology) -> Vec<ConceptId> {
    ont.purposes
        .iter()
        .map(tippers_ontology::Concept::id)
        .collect()
}

proptest! {
    /// ISO durations survive a display → parse round trip.
    #[test]
    fn duration_round_trip(d in arb_duration()) {
        let text = d.to_string();
        let back: IsoDuration = text.parse().unwrap();
        // Display normalizes zero components away but must preserve length.
        prop_assert_eq!(back.as_seconds(), d.as_seconds());
        // A second round trip is a fixpoint.
        prop_assert_eq!(back.to_string(), text);
    }

    /// `contains` is consistent with `overlaps`: if two windows both
    /// contain some instant, they must report overlap.
    #[test]
    fn window_contains_implies_overlap(a in arb_window(), b in arb_window(), day in 0i64..7, h in 0u32..24, m in 0u32..60) {
        let t = Timestamp::at(day, h, m);
        if a.contains(t) && b.contains(t) {
            prop_assert!(a.overlaps(&b), "windows {a:?} and {b:?} both contain {t} but report no overlap");
        }
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    /// Effect strictness is a total preorder compatible with `stricter`.
    #[test]
    fn effect_stricter_lattice(a in arb_effect(), b in arb_effect(), c in arb_effect()) {
        let ab = a.stricter(b);
        prop_assert!(ab.strictness() >= a.strictness());
        prop_assert!(ab.strictness() >= b.strictness());
        // Associativity of strictness level (the chosen representative may
        // differ among equal-strictness effects).
        prop_assert_eq!(
            a.stricter(b).stricter(c).strictness(),
            a.stricter(b.stricter(c)).strictness()
        );
    }

    /// The indexed conflict detector finds exactly the same conflicts as
    /// the naive pairwise scan (design decision D2).
    #[test]
    fn conflict_index_equals_naive(
        seed in any::<u64>(),
        n_policies in 1usize..20,
        n_prefs in 1usize..20,
    ) {
        let (ont, model, spaces) = env();
        let datas = data_concepts(&ont);
        let purposes = purpose_concepts(&ont);
        let mut rng_state = seed;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        let policies: Vec<BuildingPolicy> = (0..n_policies)
            .map(|i| {
                let mut p = BuildingPolicy::new(
                    PolicyId(i as u64),
                    format!("p{i}"),
                    spaces[next() % spaces.len()],
                    datas[next() % datas.len()],
                    purposes[next() % purposes.len()],
                );
                p.modality = match next() % 3 {
                    0 => Modality::Required,
                    1 => Modality::OptOut,
                    _ => Modality::OptIn,
                };
                if next() % 2 == 0 {
                    p.condition = Condition::during(if next() % 2 == 0 {
                        TimeWindow::business_hours()
                    } else {
                        TimeWindow::after_hours()
                    });
                }
                p
            })
            .collect();
        let prefs: Vec<UserPreference> = (0..n_prefs)
            .map(|i| {
                let effect = match next() % 4 {
                    0 => Effect::Allow,
                    1 => Effect::Deny,
                    2 => Effect::Degrade(Granularity::ALL[next() % 6]),
                    _ => Effect::Noise { sigma: 1.0 },
                };
                let scope = PreferenceScope {
                    data: if next() % 4 == 0 { None } else { Some(datas[next() % datas.len()]) },
                    purpose: if next() % 3 == 0 { Some(purposes[next() % purposes.len()]) } else { None },
                    space: if next() % 2 == 0 { Some(spaces[next() % spaces.len()]) } else { None },
                    ..Default::default()
                };
                UserPreference::new(PreferenceId(i as u64), UserId((next() % 5) as u64), scope, effect)
            })
            .collect();

        for strategy in [
            ResolutionStrategy::PolicyPrevails,
            ResolutionStrategy::PreferencePrevails,
            ResolutionStrategy::Strictest,
        ] {
            let mut naive =
                conflict::detect_conflicts_naive(&policies, &prefs, &ont, &model, strategy);
            naive.sort_by_key(|c| (c.policy, c.preference));
            let index = conflict::ConflictIndex::build(&policies, &ont);
            let fast = index.detect(&policies, &prefs, &ont, &model, strategy);
            prop_assert_eq!(&naive, &fast, "strategy {:?}", strategy);
        }
    }

    /// Conflicts only ever involve required policies and non-allow
    /// preferences.
    #[test]
    fn conflicts_require_mandatory_policy(seed in any::<u64>()) {
        let (ont, model, spaces) = env();
        let datas = data_concepts(&ont);
        let c = ont.concepts();
        let policy = BuildingPolicy::new(
            PolicyId(1),
            "p",
            spaces[(seed as usize) % spaces.len()],
            datas[(seed as usize >> 4) % datas.len()],
            c.logging,
        )
        .with_modality(if seed.is_multiple_of(2) { Modality::OptOut } else { Modality::OptIn });
        let pref = UserPreference::new(
            PreferenceId(1),
            UserId(1),
            PreferenceScope::default(),
            Effect::Deny,
        );
        let found = conflict::detect_conflicts_naive(
            &[policy],
            &[pref],
            &ont,
            &model,
            ResolutionStrategy::PolicyPrevails,
        );
        prop_assert!(found.is_empty());
    }
}
