//! Property: arbitrary normalized policies survive the wire-format round
//! trip (export → JSON → parse → import) with all wire-representable
//! fields intact.

use proptest::prelude::*;
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{BuildingPolicy, Modality, PolicyCodec, PolicyDocument, PolicyId};
use tippers_spatial::fixtures::dbh;

fn wire_representable_data(ont: &Ontology) -> Vec<ConceptId> {
    // Leaf-ish categories with unambiguous labels (the codec writes the
    // category key explicitly, so anything resolvable works).
    let c = ont.concepts();
    vec![
        c.wifi_association,
        c.bluetooth_sighting,
        c.occupancy,
        c.image,
        c.power_consumption,
        c.ambient_temperature,
        c.person_identity,
        c.location_room,
        c.event_details,
        c.meeting_details,
    ]
}

fn purposes(ont: &Ontology) -> Vec<ConceptId> {
    let c = ont.concepts();
    vec![
        c.emergency_response,
        c.surveillance,
        c.access_control,
        c.comfort,
        c.energy_management,
        c.logging,
        c.navigation,
        c.scheduling,
        c.delivery,
        c.analytics,
        c.marketing,
    ]
}

proptest! {
    #[test]
    fn export_json_import_fixpoint(
        data_idx in 0usize..10,
        purpose_idx in 0usize..11,
        space_sel in 0usize..100,
        modality_idx in 0usize..3,
        retention_months in proptest::option::of(1u32..24),
        with_setting in any::<bool>(),
        with_service in any::<bool>(),
        name in "[A-Za-z][A-Za-z0-9 ]{0,30}",
    ) {
        let ont = Ontology::standard();
        let building = dbh();
        let datas = wire_representable_data(&ont);
        let purp = purposes(&ont);
        let spaces: Vec<_> = std::iter::once(building.building)
            .chain(building.floors.iter().copied())
            .chain(building.offices.iter().copied())
            .collect();
        let mut policy = BuildingPolicy::new(
            PolicyId(1),
            name.trim().to_owned() + "x", // never empty
            spaces[space_sel % spaces.len()],
            datas[data_idx],
            purp[purpose_idx],
        );
        policy.modality = [Modality::Required, Modality::OptOut, Modality::OptIn][modality_idx];
        if let Some(m) = retention_months {
            policy = policy.with_retention(
                format!("P{m}M").parse().expect("valid duration"),
            );
        }
        if with_setting {
            policy = policy.with_setting(BuildingPolicy::location_setting());
        }
        if with_service {
            policy = policy.with_service(tippers_policy::catalog::services::concierge());
        }

        let codec = PolicyCodec::new(&ont, &building.model);
        let doc = codec.to_document(&policy);
        // Through actual JSON text, as an IRR/IoTA would see it.
        let text = serde_json::to_string(&doc).expect("serializable");
        let parsed: PolicyDocument = serde_json::from_str(&text).expect("parseable");
        prop_assert_eq!(&parsed, &doc, "JSON round trip must be exact");

        let imported = codec.from_document(&parsed, 1).expect("importable");
        prop_assert_eq!(imported.len(), 1);
        let back = &imported[0];
        prop_assert_eq!(&back.name, &policy.name);
        prop_assert_eq!(back.space, policy.space);
        prop_assert_eq!(back.data, policy.data);
        prop_assert_eq!(back.purpose, policy.purpose);
        prop_assert_eq!(back.modality, policy.modality);
        prop_assert_eq!(back.retention, policy.retention);
        prop_assert_eq!(&back.service, &policy.service);
        prop_assert_eq!(back.settings.len(), policy.settings.len());
        for (a, b) in back.settings.iter().zip(&policy.settings) {
            for (oa, ob) in a.options.iter().zip(&b.options) {
                prop_assert_eq!(&oa.description, &ob.description);
                prop_assert_eq!(oa.effect, ob.effect);
            }
        }
        // Every exported document is advertisable as-is.
        prop_assert!(tippers_policy::is_advertisable(&doc));
    }
}
