//! Conflict detection between building policies and user preferences.
//!
//! §III.B: "It is possible that user preferences conflict with the existing
//! building policies (e.g., Policy 2 and Preference 2). These conflicts
//! should be detected by the smart building management system (e.g., with
//! the help of a policy reasoner) which is in charge of enforcing the
//! policies by resolving these conflicts while informing users about it."
//!
//! Two detectors are provided (design decision **D2** in DESIGN.md):
//!
//! * [`detect_conflicts_naive`] — the obvious O(policies × preferences)
//!   pairwise scan.
//! * [`ConflictIndex`] — policies indexed by data-category family (own
//!   category, descendants, and inferable categories), so a preference only
//!   meets the policies it could possibly conflict with. Experiment E7
//!   benchmarks the two.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_spatial::SpatialModel;

use crate::ids::{PolicyId, PreferenceId};
use crate::policy::BuildingPolicy;
use crate::preference::{Effect, UserPreference};

/// Why a policy and a preference clash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictKind {
    /// The user denies a flow a mandatory policy requires (Policy 2 vs
    /// Preference 2).
    DenyOfRequired,
    /// The user degrades/noises a flow a mandatory policy requires in full
    /// fidelity.
    WeakeningOfRequired,
}

/// How a detected conflict is settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ResolutionStrategy {
    /// The building's mandatory policy prevails; the user is notified
    /// (the paper's default: required policies "have to be met completely").
    #[default]
    PolicyPrevails,
    /// The user's preference prevails (a privacy-first deployment).
    PreferencePrevails,
    /// The stricter of the two effects applies.
    Strictest,
}

/// A detected policy/preference conflict, plus its resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conflict {
    /// The building policy involved.
    pub policy: PolicyId,
    /// The user preference involved.
    pub preference: PreferenceId,
    /// The kind of clash.
    pub kind: ConflictKind,
    /// Effect that will actually be enforced after resolution.
    pub resolved_effect: Effect,
    /// Strategy used to resolve.
    pub strategy: ResolutionStrategy,
    /// Message for the user's IoTA.
    pub notice: String,
}

/// True if the policy's data practice touches the preference's data
/// category: the categories are compatible (comparable or sharing a
/// sub-category), **or** the preference's category is inferable from what
/// the policy collects (§IV.B.2: users care about "the abstract information
/// that can be inferred from an observation", so a location preference must
/// reach a WiFi-log policy).
pub fn data_overlaps(policy_data: ConceptId, pref_data: ConceptId, ontology: &Ontology) -> bool {
    ontology.data.compatible(policy_data, pref_data)
        || ontology.can_infer_from(policy_data, pref_data)
}

/// True if the policy and preference can apply to the same flow:
/// overlapping data (collected or inferable), purposes, subjects, spaces,
/// and conditions.
pub fn scopes_overlap(
    policy: &BuildingPolicy,
    pref: &UserPreference,
    ontology: &Ontology,
    model: &SpatialModel,
) -> bool {
    if let Some(d) = pref.scope.data {
        if !data_overlaps(policy.data, d, ontology) {
            return false;
        }
    }
    if let Some(p) = pref.scope.purpose {
        if !ontology.purposes.compatible(policy.purpose, p) {
            return false;
        }
    }
    if let (Some(svc), Some(pol_svc)) = (&pref.scope.service, &policy.service) {
        if svc != pol_svc {
            return false;
        }
    }
    // A service-scoped preference cannot conflict with a non-service policy
    // only through the service clause; the flow could still match if the
    // policy governs data the service consumes — stay conservative and
    // require overlap only when both sides name a service.
    if !policy.subjects.may_match_user(pref.user) {
        return false;
    }
    if let Some(s) = pref.scope.space {
        if !model.overlap(policy.space, s) {
            return false;
        }
    }
    policy.condition.may_overlap(&pref.scope.condition, model)
}

/// Classifies a single (policy, preference) pair, resolving per `strategy`.
///
/// Only *required* policies conflict: an opt-out/opt-in policy accommodates
/// any preference by design.
pub fn classify(
    policy: &BuildingPolicy,
    pref: &UserPreference,
    ontology: &Ontology,
    model: &SpatialModel,
    strategy: ResolutionStrategy,
) -> Option<Conflict> {
    if !policy.is_required() {
        return None;
    }
    let kind = match pref.effect {
        Effect::Allow => return None,
        Effect::Deny => ConflictKind::DenyOfRequired,
        Effect::Degrade(_) | Effect::Noise { .. } => ConflictKind::WeakeningOfRequired,
    };
    if !scopes_overlap(policy, pref, ontology, model) {
        return None;
    }
    let resolved_effect = match strategy {
        ResolutionStrategy::PolicyPrevails => Effect::Allow,
        ResolutionStrategy::PreferencePrevails => pref.effect,
        ResolutionStrategy::Strictest => pref.effect.stricter(Effect::Allow),
    };
    let notice = match strategy {
        ResolutionStrategy::PolicyPrevails => format!(
            "Your preference {} cannot be honored: building policy `{}` ({}) is mandatory.",
            pref.id, policy.name, policy.description
        ),
        _ => format!(
            "Your preference {} overrides mandatory building policy `{}`.",
            pref.id, policy.name
        ),
    };
    Some(Conflict {
        policy: policy.id,
        preference: pref.id,
        kind,
        resolved_effect,
        strategy,
        notice,
    })
}

/// Pairwise conflict detection — the naive baseline.
pub fn detect_conflicts_naive(
    policies: &[BuildingPolicy],
    prefs: &[UserPreference],
    ontology: &Ontology,
    model: &SpatialModel,
    strategy: ResolutionStrategy,
) -> Vec<Conflict> {
    let mut out = Vec::new();
    for policy in policies {
        for pref in prefs {
            if let Some(c) = classify(policy, pref, ontology, model, strategy) {
                out.push(c);
            }
        }
    }
    out
}

/// Data-category index over *required* policies, for fast conflict checks.
///
/// Each required policy is registered under (a) its own data category, (b)
/// every descendant of that category (so preferences over a shared
/// sub-category meet it), and (c) every category inferable from it (so a
/// `location` preference meets a WiFi-log policy). A preference over
/// category `c` probes `c`, its ancestors, and its descendants; set
/// intersection of those key families covers exactly the
/// [`data_overlaps`] relation, and the precise pairwise check runs only on
/// the surviving candidates. Preferences with no data clause fall back to
/// all required policies.
#[derive(Debug, Clone)]
pub struct ConflictIndex {
    by_category: HashMap<ConceptId, Vec<usize>>,
    all_required: Vec<usize>,
}

impl ConflictIndex {
    /// Builds the index over the *required* subset of `policies`.
    /// Indices stored refer to positions in the `policies` slice passed both
    /// here and to [`Self::detect`].
    pub fn build(policies: &[BuildingPolicy], ontology: &Ontology) -> ConflictIndex {
        let mut by_category: HashMap<ConceptId, Vec<usize>> = HashMap::new();
        let mut all_required = Vec::new();
        // Policies often share a data category; compute each category's key
        // family once.
        let mut family_cache: HashMap<ConceptId, Vec<ConceptId>> = HashMap::new();
        for (i, p) in policies.iter().enumerate() {
            if !p.is_required() {
                continue;
            }
            all_required.push(i);
            let keys = family_cache.entry(p.data).or_insert_with(|| {
                let mut keys = vec![p.data];
                keys.extend(ontology.data.descendants(p.data));
                for inf in ontology.inferable_from(p.data) {
                    keys.push(inf.concept);
                }
                keys.sort_unstable();
                keys.dedup();
                keys
            });
            for &k in keys.iter() {
                by_category.entry(k).or_default().push(i);
            }
        }
        ConflictIndex {
            by_category,
            all_required,
        }
    }

    /// Candidate policy indices for one preference.
    fn candidates(&self, pref: &UserPreference, ontology: &Ontology) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        match pref.scope.data {
            None => out.extend_from_slice(&self.all_required),
            Some(c) => {
                let mut probe = vec![c];
                probe.extend(ontology.data.ancestors(c));
                probe.extend(ontology.data.descendants(c));
                for key in probe {
                    if let Some(v) = self.by_category.get(&key) {
                        out.extend_from_slice(v);
                    }
                }
                out.sort_unstable();
                out.dedup();
            }
        }
        out
    }

    /// Indexed conflict detection; semantically identical to
    /// [`detect_conflicts_naive`] (property-tested).
    pub fn detect(
        &self,
        policies: &[BuildingPolicy],
        prefs: &[UserPreference],
        ontology: &Ontology,
        model: &SpatialModel,
        strategy: ResolutionStrategy,
    ) -> Vec<Conflict> {
        let mut out = Vec::new();
        for pref in prefs {
            if pref.effect == Effect::Allow {
                continue;
            }
            for i in self.candidates(pref, ontology) {
                if let Some(c) = classify(&policies[i], pref, ontology, model, strategy) {
                    out.push(c);
                }
            }
        }
        // Naive order is policy-major; normalize for comparability.
        out.sort_by_key(|c| (c.policy, c.preference));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PolicyId, PreferenceId, UserId};
    use crate::policy::Modality;
    use crate::preference::PreferenceScope;
    use tippers_spatial::Granularity;

    fn env() -> (Ontology, SpatialModel) {
        (Ontology::standard(), SpatialModel::new("campus"))
    }

    fn policy2(ont: &Ontology, model: &SpatialModel) -> BuildingPolicy {
        let c = ont.concepts();
        BuildingPolicy::new(
            PolicyId(2),
            "Location tracking in DBH",
            model.root(),
            c.location_room,
            c.emergency_response,
        )
        .with_description("Location is stored continuously for emergencies")
        .with_modality(Modality::Required)
    }

    fn preference2(ont: &Ontology) -> UserPreference {
        let c = ont.concepts();
        UserPreference::new(
            PreferenceId(2),
            UserId(1),
            PreferenceScope {
                data: Some(c.location),
                ..Default::default()
            },
            Effect::Deny,
        )
    }

    #[test]
    fn paper_example_policy2_vs_preference2() {
        let (ont, model) = env();
        let conflicts = detect_conflicts_naive(
            &[policy2(&ont, &model)],
            &[preference2(&ont)],
            &ont,
            &model,
            ResolutionStrategy::PolicyPrevails,
        );
        assert_eq!(conflicts.len(), 1);
        let c = &conflicts[0];
        assert_eq!(c.kind, ConflictKind::DenyOfRequired);
        assert_eq!(c.resolved_effect, Effect::Allow);
        assert!(c.notice.contains("mandatory"));
    }

    #[test]
    fn optional_policies_never_conflict() {
        let (ont, model) = env();
        let mut p = policy2(&ont, &model);
        p.modality = Modality::OptOut;
        assert!(detect_conflicts_naive(
            &[p],
            &[preference2(&ont)],
            &ont,
            &model,
            ResolutionStrategy::PolicyPrevails,
        )
        .is_empty());
    }

    #[test]
    fn allow_preferences_never_conflict() {
        let (ont, model) = env();
        let mut pref = preference2(&ont);
        pref.effect = Effect::Allow;
        assert!(detect_conflicts_naive(
            &[policy2(&ont, &model)],
            &[pref],
            &ont,
            &model,
            ResolutionStrategy::PolicyPrevails,
        )
        .is_empty());
    }

    #[test]
    fn unrelated_data_category_no_conflict() {
        let (ont, model) = env();
        let c = ont.concepts();
        let mut pref = preference2(&ont);
        pref.scope.data = Some(c.ambient_temperature);
        assert!(detect_conflicts_naive(
            &[policy2(&ont, &model)],
            &[pref],
            &ont,
            &model,
            ResolutionStrategy::PolicyPrevails,
        )
        .is_empty());
    }

    #[test]
    fn degrade_is_weakening() {
        let (ont, model) = env();
        let mut pref = preference2(&ont);
        pref.effect = Effect::Degrade(Granularity::Building);
        let conflicts = detect_conflicts_naive(
            &[policy2(&ont, &model)],
            &[pref],
            &ont,
            &model,
            ResolutionStrategy::Strictest,
        );
        assert_eq!(conflicts[0].kind, ConflictKind::WeakeningOfRequired);
        assert_eq!(
            conflicts[0].resolved_effect,
            Effect::Degrade(Granularity::Building)
        );
    }

    #[test]
    fn preference_prevails_strategy() {
        let (ont, model) = env();
        let conflicts = detect_conflicts_naive(
            &[policy2(&ont, &model)],
            &[preference2(&ont)],
            &ont,
            &model,
            ResolutionStrategy::PreferencePrevails,
        );
        assert_eq!(conflicts[0].resolved_effect, Effect::Deny);
    }

    #[test]
    fn indexed_matches_naive_on_example() {
        let (ont, model) = env();
        let c = ont.concepts();
        let policies = vec![
            policy2(&ont, &model),
            BuildingPolicy::new(PolicyId(3), "camera", model.root(), c.image, c.surveillance)
                .with_modality(Modality::Required),
        ];
        let prefs = vec![
            preference2(&ont),
            UserPreference::new(
                PreferenceId(3),
                UserId(2),
                PreferenceScope::default(), // any data
                Effect::Deny,
            ),
        ];
        let naive = {
            let mut v = detect_conflicts_naive(
                &policies,
                &prefs,
                &ont,
                &model,
                ResolutionStrategy::PolicyPrevails,
            );
            v.sort_by_key(|c| (c.policy, c.preference));
            v
        };
        let idx = ConflictIndex::build(&policies, &ont);
        let fast = idx.detect(
            &policies,
            &prefs,
            &ont,
            &model,
            ResolutionStrategy::PolicyPrevails,
        );
        assert_eq!(naive, fast);
        assert_eq!(naive.len(), 3); // pref3 (any) hits both, pref2 hits policy2
    }
}
