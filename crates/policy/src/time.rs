//! Simulation time: timestamps, time-of-day, weekday sets and windows.
//!
//! The framework runs against a simulated building, so time is a simple
//! seconds-since-epoch counter with calendar helpers. Day 0 is a Monday.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// A point in simulated time (seconds since the simulation epoch).
///
/// Day 0 of the simulation is a Monday; [`Timestamp::weekday`] and
/// [`Timestamp::time_of_day`] derive calendar facts from that convention.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The simulation epoch (midnight, Monday, day 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from day number and wall-clock time.
    ///
    /// # Examples
    ///
    /// ```
    /// use tippers_policy::time::Timestamp;
    /// let t = Timestamp::at(1, 9, 30); // Tuesday 09:30
    /// assert_eq!(t.day(), 1);
    /// assert_eq!(t.time_of_day().hour(), 9);
    /// ```
    pub fn at(day: i64, hour: u32, minute: u32) -> Timestamp {
        Timestamp(day * SECONDS_PER_DAY + (hour as i64) * 3600 + (minute as i64) * 60)
    }

    /// Seconds since the epoch.
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// Day number since the epoch (day 0 is a Monday).
    pub fn day(self) -> i64 {
        self.0.div_euclid(SECONDS_PER_DAY)
    }

    /// Weekday of this timestamp.
    pub fn weekday(self) -> Weekday {
        Weekday::ALL[(self.day().rem_euclid(7)) as usize]
    }

    /// Wall-clock time of day.
    pub fn time_of_day(self) -> TimeOfDay {
        TimeOfDay((self.0.rem_euclid(SECONDS_PER_DAY)) as u32)
    }

    /// True if the weekday is Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self.weekday(), Weekday::Sat | Weekday::Sun)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    fn add(self, seconds: i64) -> Timestamp {
        Timestamp(self.0 + seconds)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{} {} {}",
            self.day(),
            self.weekday(),
            self.time_of_day()
        )
    }
}

/// Wall-clock time of day in seconds since midnight.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TimeOfDay(pub u32);

impl TimeOfDay {
    /// Midnight.
    pub const MIDNIGHT: TimeOfDay = TimeOfDay(0);

    /// Builds a time of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour > 23` or `minute > 59`.
    pub fn new(hour: u32, minute: u32) -> TimeOfDay {
        assert!(hour < 24, "hour out of range");
        assert!(minute < 60, "minute out of range");
        TimeOfDay(hour * 3600 + minute * 60)
    }

    /// Hour component (0–23).
    pub fn hour(self) -> u32 {
        self.0 / 3600
    }

    /// Minute component (0–59).
    pub fn minute(self) -> u32 {
        (self.0 % 3600) / 60
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}", self.hour(), self.minute())
    }
}

/// Day of the week. The simulation epoch (day 0) is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Index in [`Weekday::ALL`].
    pub fn index(self) -> usize {
        Weekday::ALL
            .iter()
            .position(|&w| w == self)
            .expect("member")
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        };
        f.write_str(s)
    }
}

/// A set of weekdays, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeekdaySet(u8);

impl WeekdaySet {
    /// Every day of the week.
    pub const ALL: WeekdaySet = WeekdaySet(0b0111_1111);
    /// Monday through Friday.
    pub const WEEKDAYS: WeekdaySet = WeekdaySet(0b0001_1111);
    /// Saturday and Sunday.
    pub const WEEKEND: WeekdaySet = WeekdaySet(0b0110_0000);
    /// No days.
    pub const EMPTY: WeekdaySet = WeekdaySet(0);

    /// Builds a set from a list of days.
    pub fn of(days: &[Weekday]) -> WeekdaySet {
        let mut mask = 0u8;
        for d in days {
            mask |= 1 << d.index();
        }
        WeekdaySet(mask)
    }

    /// True if the set contains `day`.
    pub fn contains(self, day: Weekday) -> bool {
        self.0 & (1 << day.index()) != 0
    }

    /// Set union.
    pub fn union(self, other: WeekdaySet) -> WeekdaySet {
        WeekdaySet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: WeekdaySet) -> WeekdaySet {
        WeekdaySet(self.0 & other.0)
    }

    /// True if the intersection is non-empty.
    pub fn intersects(self, other: WeekdaySet) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no day is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for WeekdaySet {
    fn default() -> Self {
        WeekdaySet::ALL
    }
}

/// A recurring daily time window on a set of weekdays.
///
/// Windows may wrap past midnight (`start > end`), which is how
/// "after-hours" is expressed (Preference 1: "Do not share the occupancy
/// status of my office in after-hours").
///
/// # Examples
///
/// ```
/// use tippers_policy::{TimeWindow, Timestamp};
/// let after_hours = TimeWindow::after_hours();
/// assert!(after_hours.contains(Timestamp::at(0, 23, 0)));
/// assert!(after_hours.contains(Timestamp::at(1, 3, 0))); // wraps midnight
/// assert!(!after_hours.contains(Timestamp::at(1, 12, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Window start (inclusive).
    pub start: TimeOfDay,
    /// Window end (exclusive). If `end <= start`, the window wraps midnight.
    pub end: TimeOfDay,
    /// Days on which the window recurs (matched against the day the
    /// timestamp falls on).
    pub days: WeekdaySet,
}

impl TimeWindow {
    /// A window covering all of every day.
    pub fn always() -> TimeWindow {
        TimeWindow {
            start: TimeOfDay::MIDNIGHT,
            end: TimeOfDay::MIDNIGHT,
            days: WeekdaySet::ALL,
        }
    }

    /// Daily window between two wall-clock times (wraps if `start >= end`).
    pub fn daily(start: TimeOfDay, end: TimeOfDay) -> TimeWindow {
        TimeWindow {
            start,
            end,
            days: WeekdaySet::ALL,
        }
    }

    /// Business hours: 08:00–18:00 Monday–Friday.
    pub fn business_hours() -> TimeWindow {
        TimeWindow {
            start: TimeOfDay::new(8, 0),
            end: TimeOfDay::new(18, 0),
            days: WeekdaySet::WEEKDAYS,
        }
    }

    /// After-hours: 18:00–08:00 every day, plus all of the weekend is
    /// covered by the wrap-around window falling on those days too.
    pub fn after_hours() -> TimeWindow {
        TimeWindow {
            start: TimeOfDay::new(18, 0),
            end: TimeOfDay::new(8, 0),
            days: WeekdaySet::ALL,
        }
    }

    /// True if the timestamp falls inside the window.
    ///
    /// A window with `start == end` covers the whole day. A wrapping window
    /// covers `[start, midnight)` and `[midnight, end)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        if !self.days.contains(t.weekday()) {
            return false;
        }
        let tod = t.time_of_day();
        if self.start == self.end {
            true
        } else if self.start < self.end {
            self.start <= tod && tod < self.end
        } else {
            tod >= self.start || tod < self.end
        }
    }

    /// Conservative overlap test: true unless the windows provably never
    /// share an instant (disjoint day sets or disjoint daily intervals).
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        // Wrapping windows bleed into the next day, so only require either
        // day set to intersect the other's.
        if !self.days.intersects(other.days) && !self.wraps() && !other.wraps() {
            return false;
        }
        self.daily_intervals().iter().any(|a| {
            other
                .daily_intervals()
                .iter()
                .any(|b| a.0 < b.1 && b.0 < a.1)
        })
    }

    fn wraps(&self) -> bool {
        self.end <= self.start && (self.start != self.end)
    }

    /// The window as up to two non-wrapping `[start, end)` second intervals
    /// within a day.
    fn daily_intervals(&self) -> Vec<(u32, u32)> {
        const DAY: u32 = SECONDS_PER_DAY as u32;
        if self.start == self.end {
            vec![(0, DAY)]
        } else if self.start < self.end {
            vec![(self.start.0, self.end.0)]
        } else {
            vec![(self.start.0, DAY), (0, self.end.0)]
        }
    }
}

impl Default for TimeWindow {
    fn default() -> Self {
        TimeWindow::always()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_midnight() {
        assert_eq!(Timestamp::EPOCH.weekday(), Weekday::Mon);
        assert_eq!(Timestamp::EPOCH.time_of_day(), TimeOfDay::MIDNIGHT);
    }

    #[test]
    fn calendar_math() {
        let t = Timestamp::at(8, 14, 45); // day 8 = second Tuesday
        assert_eq!(t.weekday(), Weekday::Tue);
        assert_eq!(t.time_of_day().hour(), 14);
        assert_eq!(t.time_of_day().minute(), 45);
        assert!(Timestamp::at(5, 12, 0).is_weekend()); // Saturday
        assert!(!Timestamp::at(4, 12, 0).is_weekend()); // Friday
    }

    #[test]
    fn negative_timestamps_still_work() {
        let t = Timestamp(-1);
        assert_eq!(t.day(), -1);
        assert_eq!(t.time_of_day().0, (SECONDS_PER_DAY - 1) as u32);
        assert_eq!(t.weekday(), Weekday::Sun);
    }

    #[test]
    fn weekday_sets() {
        assert!(WeekdaySet::WEEKDAYS.contains(Weekday::Fri));
        assert!(!WeekdaySet::WEEKDAYS.contains(Weekday::Sat));
        assert!(WeekdaySet::WEEKDAYS.union(WeekdaySet::WEEKEND) == WeekdaySet::ALL);
        assert!(!WeekdaySet::WEEKDAYS.intersects(WeekdaySet::WEEKEND));
        assert!(WeekdaySet::of(&[Weekday::Sat]).intersects(WeekdaySet::WEEKEND));
    }

    #[test]
    fn business_hours_window() {
        let w = TimeWindow::business_hours();
        assert!(w.contains(Timestamp::at(0, 9, 0)));
        assert!(!w.contains(Timestamp::at(0, 7, 59)));
        assert!(!w.contains(Timestamp::at(0, 18, 0))); // end exclusive
        assert!(!w.contains(Timestamp::at(5, 9, 0))); // Saturday
    }

    #[test]
    fn after_hours_wraps_midnight() {
        let w = TimeWindow::after_hours();
        assert!(w.contains(Timestamp::at(0, 23, 0)));
        assert!(w.contains(Timestamp::at(1, 3, 0)));
        assert!(w.contains(Timestamp::at(1, 7, 59)));
        assert!(!w.contains(Timestamp::at(1, 8, 0)));
        assert!(!w.contains(Timestamp::at(1, 12, 0)));
    }

    #[test]
    fn full_day_window_contains_everything() {
        let w = TimeWindow::always();
        for h in 0..24 {
            assert!(w.contains(Timestamp::at(3, h, 30)));
        }
    }

    #[test]
    fn window_overlap() {
        let business = TimeWindow::business_hours();
        let after = TimeWindow::after_hours();
        let lunch = TimeWindow::daily(TimeOfDay::new(12, 0), TimeOfDay::new(13, 0));
        assert!(business.overlaps(&lunch));
        assert!(!business.overlaps(&after));
        assert!(after.overlaps(&TimeWindow::always()));
        // Same hours but disjoint days.
        let sat_only = TimeWindow {
            days: WeekdaySet::of(&[Weekday::Sat]),
            ..business
        };
        let sun_only = TimeWindow {
            days: WeekdaySet::of(&[Weekday::Sun]),
            ..business
        };
        assert!(!sat_only.overlaps(&sun_only));
    }

    #[test]
    fn overlap_is_symmetric_for_samples() {
        let windows = [
            TimeWindow::always(),
            TimeWindow::business_hours(),
            TimeWindow::after_hours(),
            TimeWindow::daily(TimeOfDay::new(6, 0), TimeOfDay::new(7, 0)),
        ];
        for a in &windows {
            for b in &windows {
                assert_eq!(a.overlaps(b), b.overlaps(a));
            }
        }
    }
}
