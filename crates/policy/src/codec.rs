//! Conversion between normalized [`BuildingPolicy`] values and the wire
//! [`PolicyDocument`] format of Figures 2–4.
//!
//! The wire format is what IRRs broadcast and IoTAs parse; the normalized
//! form is what the BMS reasons over and enforces. The paper's figures do
//! not carry machine-readable category keys, so importing them relies on a
//! small resolution table (sensor type → data category) plus label matching
//! for purposes; documents exported by this codec carry explicit `category`
//! keys and import losslessly.

use std::collections::HashMap;

use tippers_ontology::{ConceptId, Ontology, Taxonomy};
use tippers_spatial::{Granularity, SpaceId, SpatialModel};

use crate::document::{
    ContextBlock, HumanDescription, InfoBlock, LocationBlock, ObservationBlock, OwnerBlock,
    PolicyDocument, PurposeSection, ResourceBlock, RetentionBlock, SensorBlock, SettingBlock,
    SettingOptionBlock, SpatialRef,
};
use crate::error::PolicyError;
use crate::ids::{PolicyId, ServiceId};
use crate::policy::{BuildingPolicy, Modality, PolicySetting, SettingOption};
use crate::preference::Effect;

/// Converts policies to and from the wire format.
#[derive(Debug)]
pub struct PolicyCodec<'a> {
    ontology: &'a Ontology,
    model: &'a SpatialModel,
    space_aliases: HashMap<String, String>,
    owner_name: String,
    owner_url: String,
}

impl<'a> PolicyCodec<'a> {
    /// Creates a codec with the default DBH aliases and UCI ownership info.
    pub fn new(ontology: &'a Ontology, model: &'a SpatialModel) -> Self {
        let mut space_aliases = HashMap::new();
        space_aliases.insert("Donald Bren Hall".to_owned(), "DBH".to_owned());
        PolicyCodec {
            ontology,
            model,
            space_aliases,
            owner_name: "UCI".to_owned(),
            owner_url: "https://uci.edu".to_owned(),
        }
    }

    /// Registers an alias so documents naming `alias` resolve to the model
    /// space named `canonical`.
    pub fn add_space_alias(&mut self, alias: impl Into<String>, canonical: impl Into<String>) {
        self.space_aliases.insert(alias.into(), canonical.into());
    }

    /// Sets the `location_owner` fields used when exporting.
    pub fn set_owner(&mut self, name: impl Into<String>, url: impl Into<String>) {
        self.owner_name = name.into();
        self.owner_url = url.into();
    }

    // ---- export ------------------------------------------------------------

    /// Exports one normalized policy as a single-resource document.
    ///
    /// Subject scope and condition clauses have no counterpart in the
    /// paper's wire shapes and are not exported; the receiving BMS applies
    /// them server-side.
    pub fn to_document(&self, policy: &BuildingPolicy) -> PolicyDocument {
        PolicyDocument {
            resources: vec![self.to_resource(policy)],
            lint_allow: Vec::new(),
        }
    }

    /// Exports several policies as one document.
    pub fn to_document_many(&self, policies: &[BuildingPolicy]) -> PolicyDocument {
        PolicyDocument {
            resources: policies.iter().map(|p| self.to_resource(p)).collect(),
            lint_allow: Vec::new(),
        }
    }

    fn to_resource(&self, policy: &BuildingPolicy) -> ResourceBlock {
        let space = self.model.space(policy.space);
        let purpose_label = self
            .ontology
            .purposes
            .concept(policy.purpose)
            .label()
            .to_lowercase();
        let mut purpose = PurposeSection::single(
            purpose_label,
            if policy.description.is_empty() {
                policy.name.clone()
            } else {
                policy.description.clone()
            },
        );
        purpose.service_id = policy.service.as_ref().map(|s| s.as_str().to_owned());

        let data_concept = self.ontology.data.concept(policy.data);
        let observations = vec![ObservationBlock {
            name: data_concept.label().to_owned(),
            description: Some(policy.description.clone()).filter(|d| !d.is_empty()),
            category: Some(data_concept.key().to_owned()),
            granularity: None,
        }];

        ResourceBlock {
            info: InfoBlock {
                name: policy.name.clone(),
                description: Some(policy.description.clone()).filter(|d| !d.is_empty()),
            },
            context: Some(ContextBlock {
                location: Some(LocationBlock {
                    spatial: Some(SpatialRef {
                        name: space.name().to_owned(),
                        kind: Some(space.kind().to_string()),
                    }),
                    location_owner: Some(OwnerBlock {
                        name: self.owner_name.clone(),
                        human_description: Some(HumanDescription {
                            more_info: Some(self.owner_url.clone()),
                        }),
                    }),
                }),
            }),
            sensor: policy.sensor_class.map(|sc| SensorBlock {
                kind: self.ontology.sensors.concept(sc).label().to_owned(),
                description: None,
            }),
            purpose,
            observations,
            retention: policy.retention.map(|duration| RetentionBlock { duration }),
            settings: policy.settings.iter().map(setting_to_block).collect(),
            modality: Some(
                match policy.modality {
                    Modality::Required => "required",
                    Modality::OptOut => "opt-out",
                    Modality::OptIn => "opt-in",
                }
                .to_owned(),
            ),
        }
    }

    // ---- import ------------------------------------------------------------

    /// Imports every resource of a document as a normalized policy,
    /// assigning ids starting at `first_id`.
    ///
    /// # Errors
    ///
    /// Returns the first resolution failure ([`PolicyError::UnknownSpace`],
    /// [`PolicyError::UnknownConcept`], …).
    #[allow(clippy::wrong_self_convention)] // codec pair: to_document / from_document
    pub fn from_document(
        &self,
        doc: &PolicyDocument,
        first_id: u64,
    ) -> Result<Vec<BuildingPolicy>, PolicyError> {
        doc.resources
            .iter()
            .enumerate()
            .map(|(i, r)| self.from_resource(r, PolicyId(first_id + i as u64)))
            .collect()
    }

    #[allow(clippy::wrong_self_convention)] // codec pair: to_resource / from_resource
    fn from_resource(
        &self,
        resource: &ResourceBlock,
        id: PolicyId,
    ) -> Result<BuildingPolicy, PolicyError> {
        if resource.info.name.is_empty() {
            return Err(PolicyError::MissingField("info.name"));
        }
        let space = self.resolve_space(resource)?;
        let data = self.resolve_data(resource)?;
        let (purpose, service) = self.resolve_purpose(resource)?;
        let modality = match resource.modality.as_deref() {
            None => default_modality(self.ontology, purpose),
            Some("required") => Modality::Required,
            Some("opt-out") => Modality::OptOut,
            Some("opt-in") => Modality::OptIn,
            Some(other) => return Err(PolicyError::InvalidModality(other.to_owned())),
        };
        let mut policy = BuildingPolicy::new(id, resource.info.name.clone(), space, data, purpose)
            .with_modality(modality);
        if let Some(d) = resource.info.description.clone().or_else(|| {
            resource
                .observations
                .first()
                .and_then(|o| o.description.clone())
        }) {
            policy = policy.with_description(d);
        }
        if let Some(sensor) = &resource.sensor {
            if let Some(sc) = resolve_by_label(&self.ontology.sensors, &sensor.kind) {
                policy = policy.with_sensor_class(sc);
            }
        }
        if let Some(r) = resource.retention {
            policy = policy.with_retention(r.duration);
        }
        for block in &resource.settings {
            policy = policy.with_setting(setting_from_block(block));
        }
        if let Some(svc) = service {
            policy = policy.with_service(svc);
        }
        Ok(policy)
    }

    fn resolve_space(&self, resource: &ResourceBlock) -> Result<SpaceId, PolicyError> {
        let name = resource
            .context
            .as_ref()
            .and_then(|c| c.location.as_ref())
            .and_then(|l| l.spatial.as_ref())
            .map(|s| s.name.as_str())
            .ok_or(PolicyError::MissingField("context.location.spatial.name"))?;
        let canonical = self.space_aliases.get(name).map_or(name, String::as_str);
        self.model
            .by_name(canonical)
            .ok_or_else(|| PolicyError::UnknownSpace(name.to_owned()))
    }

    fn resolve_data(&self, resource: &ResourceBlock) -> Result<ConceptId, PolicyError> {
        // Prefer the machine-readable extension.
        for obs in &resource.observations {
            if let Some(key) = &obs.category {
                return self
                    .ontology
                    .data
                    .id(key)
                    .ok_or_else(|| PolicyError::UnknownConcept(key.clone()));
            }
        }
        // Fall back to the sensor type / observation name heuristics the
        // paper's figures require.
        if let Some(sensor) = &resource.sensor {
            if let Some(c) = data_from_sensor_kind(self.ontology, &sensor.kind) {
                return Ok(c);
            }
        }
        for obs in &resource.observations {
            if let Some(c) = data_from_observation_name(self.ontology, &obs.name) {
                return Ok(c);
            }
        }
        Err(PolicyError::MissingField("observations[].category"))
    }

    fn resolve_purpose(
        &self,
        resource: &ResourceBlock,
    ) -> Result<(ConceptId, Option<ServiceId>), PolicyError> {
        let service = resource
            .purpose
            .service_id
            .as_ref()
            .map(|s| ServiceId::new(s.clone()));
        let key = resource
            .purpose
            .purposes
            .keys()
            .next()
            .ok_or(PolicyError::MissingField("purpose"))?;
        let concept = resolve_concept(&self.ontology.purposes, key)
            .ok_or_else(|| PolicyError::UnknownConcept(key.clone()))?;
        Ok((concept, service))
    }
}

/// Required by default only for safety/security purposes; everything else
/// is opt-out, matching §III.A's "in most cases" hedge.
fn default_modality(ontology: &Ontology, purpose: ConceptId) -> Modality {
    let c = ontology.concepts();
    let p = &ontology.purposes;
    if p.is_a(purpose, c.emergency_response)
        || p.is_a(
            purpose,
            p.id("purpose/security").expect("standard vocabulary"),
        )
    {
        Modality::Required
    } else {
        Modality::OptOut
    }
}

/// Resolves a free-form purpose/sensor key: exact taxonomy key, then the
/// last key segment (`providing_service` → `providing-service`), then a
/// case-insensitive label match (`emergency response`).
fn resolve_concept(taxonomy: &Taxonomy, key: &str) -> Option<ConceptId> {
    if let Some(id) = taxonomy.id(key) {
        return Some(id);
    }
    let normalized = key.to_lowercase().replace(['_', ' '], "-");
    for concept in taxonomy.iter() {
        let last = concept.key().rsplit('/').next().unwrap_or_default();
        if last == normalized {
            return Some(concept.id());
        }
        if concept.label().to_lowercase() == key.to_lowercase() {
            return Some(concept.id());
        }
    }
    None
}

fn resolve_by_label(taxonomy: &Taxonomy, label: &str) -> Option<ConceptId> {
    let lower = label.to_lowercase();
    taxonomy
        .iter()
        .find(|c| c.label().to_lowercase() == lower)
        .map(tippers_ontology::Concept::id)
}

fn data_from_sensor_kind(ontology: &Ontology, kind: &str) -> Option<ConceptId> {
    let c = ontology.concepts();
    let k = kind.to_lowercase();
    if k.contains("wifi") {
        Some(c.wifi_association)
    } else if k.contains("bluetooth") || k.contains("beacon") {
        Some(c.bluetooth_sighting)
    } else if k.contains("camera") {
        Some(c.image)
    } else if k.contains("power") {
        Some(c.power_consumption)
    } else if k.contains("temperature") {
        Some(c.ambient_temperature)
    } else if k.contains("motion") {
        Some(c.occupancy)
    } else {
        None
    }
}

fn data_from_observation_name(ontology: &Ontology, name: &str) -> Option<ConceptId> {
    let c = ontology.concepts();
    let n = name.to_lowercase();
    if n.contains("wifi") || n.contains("mac address") {
        Some(c.wifi_association)
    } else if n.contains("bluetooth") || n.contains("beacon") {
        Some(c.bluetooth_sighting)
    } else if n.contains("location") {
        Some(c.location_room)
    } else if n.contains("occupancy") {
        Some(c.occupancy)
    } else {
        None
    }
}

fn setting_to_block(setting: &PolicySetting) -> SettingBlock {
    SettingBlock {
        select: setting
            .options
            .iter()
            .map(|o| SettingOptionBlock {
                description: o.description.clone(),
                on: o.on.clone(),
            })
            .collect(),
    }
}

/// Recovers enforcement effects from Figure 4-style option text: opt-out
/// URLs (or "no …" descriptions) deny, "coarse" degrades to floor level,
/// everything else allows.
pub fn setting_from_block(block: &SettingBlock) -> PolicySetting {
    let options: Vec<SettingOption> = block
        .select
        .iter()
        .map(|o| {
            let d = o.description.to_lowercase();
            let effect = if o.on.contains("opt-out") || d.starts_with("no ") {
                Effect::Deny
            } else if d.contains("coarse") {
                Effect::Degrade(Granularity::Floor)
            } else {
                Effect::Allow
            };
            SettingOption {
                description: o.description.clone(),
                on: o.on.clone(),
                effect,
            }
        })
        .collect();
    PolicySetting {
        key: "location-sensing".to_owned(),
        default_option: 0,
        options,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn figure_2_imports_as_policy_2() {
        let ont = Ontology::standard();
        let d = dbh();
        let codec = PolicyCodec::new(&ont, &d.model);
        let policies = codec.from_document(&figures::fig2_document(), 1).unwrap();
        assert_eq!(policies.len(), 1);
        let p = &policies[0];
        let c = ont.concepts();
        assert_eq!(p.name, "Location tracking in DBH");
        assert_eq!(p.space, d.building);
        assert_eq!(p.data, c.wifi_association);
        assert_eq!(p.purpose, c.emergency_response);
        assert_eq!(p.retention.unwrap().months, 6);
        // Emergency purpose defaults to Required — the Policy 2 vs
        // Preference 2 conflict depends on this.
        assert_eq!(p.modality, Modality::Required);
        assert_eq!(p.sensor_class, Some(c.wifi_ap));
    }

    #[test]
    fn export_import_round_trip() {
        let ont = Ontology::standard();
        let d = dbh();
        let codec = PolicyCodec::new(&ont, &d.model);
        let c = ont.concepts();
        let original = BuildingPolicy::new(
            PolicyId(7),
            "Occupancy sensing",
            d.floors[2],
            c.occupancy,
            c.comfort,
        )
        .with_description("Motion sensors detect room occupancy")
        .with_retention("P30D".parse().unwrap())
        .with_sensor_class(c.motion_sensor)
        .with_setting(BuildingPolicy::location_setting())
        .with_modality(Modality::OptOut);

        let doc = codec.to_document(&original);
        let back = codec.from_document(&doc, 7).unwrap();
        let p = &back[0];
        assert_eq!(p.name, original.name);
        assert_eq!(p.space, original.space);
        assert_eq!(p.data, original.data);
        assert_eq!(p.purpose, original.purpose);
        assert_eq!(p.retention, original.retention);
        assert_eq!(p.modality, original.modality);
        assert_eq!(p.sensor_class, original.sensor_class);
        assert_eq!(p.settings.len(), 1);
        assert_eq!(p.settings[0].options[2].effect, Effect::Deny);
    }

    #[test]
    fn unknown_space_is_reported() {
        let ont = Ontology::standard();
        let d = dbh();
        let codec = PolicyCodec::new(&ont, &d.model);
        let mut doc = figures::fig2_document();
        doc.resources[0]
            .context
            .as_mut()
            .unwrap()
            .location
            .as_mut()
            .unwrap()
            .spatial
            .as_mut()
            .unwrap()
            .name = "Elsewhere Hall".to_owned();
        let err = codec.from_document(&doc, 1).unwrap_err();
        assert_eq!(err, PolicyError::UnknownSpace("Elsewhere Hall".into()));
    }

    #[test]
    fn figure_4_settings_recover_effects() {
        let doc = figures::fig4_document();
        let setting = setting_from_block(&doc.settings[0]);
        assert_eq!(setting.options[0].effect, Effect::Allow);
        assert_eq!(
            setting.options[1].effect,
            Effect::Degrade(Granularity::Floor)
        );
        assert_eq!(setting.options[2].effect, Effect::Deny);
    }

    #[test]
    fn invalid_modality_rejected() {
        let ont = Ontology::standard();
        let d = dbh();
        let codec = PolicyCodec::new(&ont, &d.model);
        let mut doc = figures::fig2_document();
        doc.resources[0].modality = Some("sometimes".to_owned());
        assert_eq!(
            codec.from_document(&doc, 1).unwrap_err(),
            PolicyError::InvalidModality("sometimes".into())
        );
    }
}
