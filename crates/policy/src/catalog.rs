//! The paper's worked examples, pre-built: Policies 1–4 (§III.A) and
//! Preferences 1–4 (§III.B).
//!
//! Tests, examples and benchmarks all construct these through this module
//! so the whole repository agrees on their semantics.

use tippers_ontology::Ontology;
use tippers_spatial::{Granularity, SpaceId};

use crate::condition::Condition;
use crate::ids::{PolicyId, PreferenceId, UserId};
use crate::policy::{ActionSet, BuildingPolicy, DataAction, Modality};
use crate::preference::{Effect, PreferenceScope, UserPreference};
use crate::time::TimeWindow;

/// Well-known service ids used by the paper's examples.
pub mod services {
    use crate::ids::ServiceId;

    /// The Smart Concierge service ("helps users locate rooms, inhabitants
    /// and events").
    pub fn concierge() -> ServiceId {
        ServiceId::new("Concierge")
    }

    /// The Smart Meeting service ("can help organize meetings more
    /// efficiently").
    pub fn smart_meeting() -> ServiceId {
        ServiceId::new("SmartMeeting")
    }

    /// The third-party food-delivery service ("automatically locate and
    /// deliver food to building inhabitants during lunch time").
    pub fn food_delivery() -> ServiceId {
        ServiceId::new("FoodDelivery")
    }

    /// Emergency-response service backing Policy 2.
    pub fn emergency() -> ServiceId {
        ServiceId::new("EmergencyResponse")
    }
}

/// Policy 1: "A facility manager sets the thermostat temperature of
/// occupied rooms to 70 °F to match the average comfort level of users."
///
/// Normalized as: collect occupancy (via motion sensors) and actuate HVAC,
/// for the comfort purpose, in `building`, only when rooms are occupied.
pub fn policy1_thermostat(id: PolicyId, building: SpaceId, ontology: &Ontology) -> BuildingPolicy {
    let c = ontology.concepts();
    BuildingPolicy::new(
        id,
        "Thermostat automation",
        building,
        c.occupancy,
        c.comfort,
    )
    .with_description("Motion sensors detect occupied rooms; the HVAC system holds them at 70F")
    .with_sensor_class(c.motion_sensor)
    .with_actions(ActionSet::of(&[
        DataAction::Collect,
        DataAction::Store,
        DataAction::Actuate,
    ]))
    .with_condition(Condition::always().with_occupied())
    .with_retention("P7D".parse().expect("valid duration"))
    .with_modality(Modality::OptOut)
}

/// Policy 2: "The building management system stores your location to locate
/// you in case of emergency situations." (Figure 2's machine-readable form.)
pub fn policy2_emergency_location(
    id: PolicyId,
    building: SpaceId,
    ontology: &Ontology,
) -> BuildingPolicy {
    let c = ontology.concepts();
    BuildingPolicy::new(
        id,
        "Location tracking in DBH",
        building,
        c.wifi_association,
        c.emergency_response,
    )
    .with_description(
        "If your device is connected to a WiFi Access Point in DBH, its MAC address is stored",
    )
    .with_sensor_class(c.wifi_ap)
    .with_actions(ActionSet::of(&[
        DataAction::Collect,
        DataAction::Store,
        DataAction::Infer,
        DataAction::Share,
    ]))
    .with_retention("P6M".parse().expect("valid duration"))
    .with_modality(Modality::Required)
}

/// Policy 3: "A building administrator defines that either an ID card or
/// fingerprint verification is needed to access meeting rooms."
///
/// `scope` is the space the policy is attached to (typically the building);
/// the condition restricts it to the listed meeting rooms.
pub fn policy3_meeting_room_access(
    id: PolicyId,
    scope: SpaceId,
    meeting_rooms: Vec<SpaceId>,
    ontology: &Ontology,
) -> BuildingPolicy {
    let c = ontology.concepts();
    assert!(!meeting_rooms.is_empty(), "at least one meeting room");
    BuildingPolicy::new(
        id,
        "Meeting room access control",
        scope,
        c.person_identity,
        c.access_control,
    )
    .with_description("ID card or fingerprint verification is required to enter meeting rooms")
    .with_sensor_class(c.badge_reader)
    .with_actions(ActionSet::of(&[DataAction::Collect, DataAction::Store]))
    .with_condition(Condition::always().with_spaces(meeting_rooms))
    .with_retention("P90D".parse().expect("valid duration"))
    .with_modality(Modality::Required)
}

/// Policy 4: "An event coordinator requires that details regarding an event
/// are disclosed to registered participants only when they are nearby."
pub fn policy4_event_proximity(
    id: PolicyId,
    event_spaces: Vec<SpaceId>,
    ontology: &Ontology,
) -> BuildingPolicy {
    let c = ontology.concepts();
    let space = event_spaces.first().copied().expect("at least one space");
    BuildingPolicy::new(
        id,
        "Proximity-gated event disclosure",
        space,
        c.event_details,
        c.event_coordination,
    )
    .with_description("Event details are shared only with registered participants nearby")
    .with_actions(ActionSet::of(&[DataAction::Share]))
    .with_condition(
        Condition::always()
            .with_spaces(event_spaces)
            .with_requester_nearby(),
    )
    .with_modality(Modality::OptIn)
    .with_service(services::concierge())
}

/// Preference 1: "Do not share the occupancy status of my office in
/// after-hours."
pub fn preference1_afterhours_occupancy(
    id: PreferenceId,
    user: UserId,
    office: SpaceId,
    ontology: &Ontology,
) -> UserPreference {
    let c = ontology.concepts();
    UserPreference::new(
        id,
        user,
        PreferenceScope {
            data: Some(c.occupancy),
            space: Some(office),
            condition: Condition::during(TimeWindow::after_hours()),
            ..Default::default()
        },
        Effect::Deny,
    )
    .with_note("Do not share the occupancy status of my office in after-hours")
}

/// Preference 2: "Do not share my location with anyone."
pub fn preference2_no_location(
    id: PreferenceId,
    user: UserId,
    ontology: &Ontology,
) -> UserPreference {
    let c = ontology.concepts();
    UserPreference::new(
        id,
        user,
        PreferenceScope {
            data: Some(c.location),
            ..Default::default()
        },
        Effect::Deny,
    )
    .with_note("Do not share my location with anyone")
}

/// Preference 3: "Allow Concierge access to my fine grained location for
/// directions."
///
/// Carries a higher priority than the blanket preferences so it acts as a
/// per-service exception (the paper's mobile-app-permission analogy).
pub fn preference3_concierge_location(
    id: PreferenceId,
    user: UserId,
    ontology: &Ontology,
) -> UserPreference {
    let c = ontology.concepts();
    UserPreference::new(
        id,
        user,
        PreferenceScope {
            data: Some(c.location),
            purpose: Some(c.navigation),
            service: Some(services::concierge()),
            ..Default::default()
        },
        Effect::Allow,
    )
    .with_priority(10)
    .with_note("Allow Concierge access to my fine grained location for directions")
}

/// Preference 4: "Allow Smart Meeting access to the details of the meeting
/// and its participants."
pub fn preference4_smart_meeting(
    id: PreferenceId,
    user: UserId,
    ontology: &Ontology,
) -> UserPreference {
    let c = ontology.concepts();
    UserPreference::new(
        id,
        user,
        PreferenceScope {
            data: Some(c.meeting_details),
            purpose: Some(c.scheduling),
            service: Some(services::smart_meeting()),
            ..Default::default()
        },
        Effect::Allow,
    )
    .with_priority(10)
    .with_note("Allow Smart Meeting access to the details of the meeting and its participants")
}

/// A coarse-location variant of Preference 2 used in granularity
/// experiments: share location, but never finer than `granularity`.
pub fn preference_coarse_location(
    id: PreferenceId,
    user: UserId,
    granularity: Granularity,
    ontology: &Ontology,
) -> UserPreference {
    let c = ontology.concepts();
    UserPreference::new(
        id,
        user,
        PreferenceScope {
            data: Some(c.location),
            ..Default::default()
        },
        Effect::Degrade(granularity),
    )
    .with_note("Share my location only at coarse granularity")
}

/// Convenience handle naming each catalog entry, for parameterized tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogEntry {
    /// Policy 1 (thermostat).
    Policy1,
    /// Policy 2 (emergency location).
    Policy2,
    /// Policy 3 (meeting-room access).
    Policy3,
    /// Policy 4 (event proximity).
    Policy4,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::ConditionContext;
    use crate::preference::FlowRef;
    use crate::time::Timestamp;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn all_examples_construct() {
        let ont = Ontology::standard();
        let d = dbh();
        let p1 = policy1_thermostat(PolicyId(1), d.building, &ont);
        let p2 = policy2_emergency_location(PolicyId(2), d.building, &ont);
        let p3 =
            policy3_meeting_room_access(PolicyId(3), d.building, d.meeting_rooms.clone(), &ont);
        let p4 = policy4_event_proximity(PolicyId(4), vec![d.lobby], &ont);
        assert!(!p1.is_required());
        assert!(p2.is_required());
        assert!(p3.is_required());
        assert!(p4.condition.requester_nearby);
        assert_eq!(p4.service, Some(services::concierge()));
    }

    #[test]
    fn preference1_only_bites_after_hours() {
        let ont = Ontology::standard();
        let d = dbh();
        let c = ont.concepts();
        let office = d.offices[0];
        let pref = preference1_afterhours_occupancy(PreferenceId(1), UserId(1), office, &ont);
        let flow = FlowRef {
            data: c.occupancy,
            purpose: c.comfort,
            service: None,
            space: Some(office),
        };
        let noon = ConditionContext::at(&d.model, Timestamp::at(0, 12, 0));
        let night = ConditionContext::at(&d.model, Timestamp::at(0, 22, 0));
        assert!(!pref.scope.covers(&flow, &ont, &noon));
        assert!(pref.scope.covers(&flow, &ont, &night));
        // Someone else's office is out of scope.
        let other = FlowRef {
            space: Some(d.offices[1]),
            ..flow
        };
        assert!(other.space.is_some());
        assert!(!pref.scope.covers(&other, &ont, &night));
    }

    #[test]
    fn preference3_overrides_preference2_for_concierge() {
        use crate::preference::resolve_preferences;
        let ont = Ontology::standard();
        let d = dbh();
        let c = ont.concepts();
        let user = UserId(1);
        let prefs = vec![
            preference2_no_location(PreferenceId(2), user, &ont),
            preference3_concierge_location(PreferenceId(3), user, &ont),
        ];
        let ctx = ConditionContext::at(&d.model, Timestamp::at(0, 12, 0));
        let concierge = services::concierge();
        let via_concierge = FlowRef {
            data: c.location_fine,
            purpose: c.navigation,
            service: Some(&concierge),
            space: None,
        };
        assert_eq!(
            resolve_preferences(&prefs, user, &via_concierge, &ont, &d.model, &ctx),
            Some(Effect::Allow)
        );
        // Any other consumer still sees the blanket deny.
        let delivery = services::food_delivery();
        let via_other = FlowRef {
            service: Some(&delivery),
            purpose: c.delivery,
            ..via_concierge
        };
        assert_eq!(
            resolve_preferences(&prefs, user, &via_other, &ont, &d.model, &ctx),
            Some(Effect::Deny)
        );
    }
}
