use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a building occupant / framework user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// Identifier of a building policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PolicyId(pub u64);

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy#{}", self.0)
    }
}

/// Identifier of a user preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PreferenceId(pub u64);

impl fmt::Display for PreferenceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pref#{}", self.0)
    }
}

/// Identifier of a building service (e.g. `"Concierge"` in Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceId(String);

impl ServiceId {
    /// Creates a service id.
    pub fn new(id: impl Into<String>) -> ServiceId {
        ServiceId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceId {
    fn from(s: &str) -> Self {
        ServiceId(s.to_owned())
    }
}

impl From<String> for ServiceId {
    fn from(s: String) -> Self {
        ServiceId(s)
    }
}

impl AsRef<str> for ServiceId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_id_conversions() {
        let a = ServiceId::new("Concierge");
        let b: ServiceId = "Concierge".into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Concierge");
        assert_eq!(a.to_string(), "Concierge");
    }

    #[test]
    fn ids_display() {
        assert_eq!(UserId(3).to_string(), "user#3");
        assert_eq!(PolicyId(4).to_string(), "policy#4");
        assert_eq!(PreferenceId(5).to_string(), "pref#5");
    }
}
