use serde::{Deserialize, Serialize};
use tippers_spatial::{SpaceId, SpatialModel};

use crate::time::{TimeWindow, Timestamp};

/// Context a [`Condition`] is evaluated against.
///
/// Unknown fields (`None`) are treated *privacy-conservatively*: a condition
/// that restricts on an unknown fact is considered satisfied, so restrictive
/// preferences still apply and permissive exceptions do not silently widen.
#[derive(Debug, Clone, Copy)]
pub struct ConditionContext<'a> {
    /// The building's spatial model.
    pub model: &'a SpatialModel,
    /// Evaluation time.
    pub time: Timestamp,
    /// Where the data subject currently is, if known.
    pub subject_space: Option<SpaceId>,
    /// Where the requesting party currently is, if known.
    pub requester_space: Option<SpaceId>,
    /// Whether the room in question is occupied, if known.
    pub room_occupied: Option<bool>,
}

impl<'a> ConditionContext<'a> {
    /// A context with only model and time — everything else unknown.
    pub fn at(model: &'a SpatialModel, time: Timestamp) -> Self {
        ConditionContext {
            model,
            time,
            subject_space: None,
            requester_space: None,
            room_occupied: None,
        }
    }
}

/// A guard on when a policy or preference applies.
///
/// All present clauses must hold (conjunction). The paper's examples map as:
///
/// * Preference 1's "in after-hours" → [`Condition::time`].
/// * Policy 1's "of occupied rooms" → [`Condition::requires_occupied`].
/// * Policy 4's "only when they are nearby" → [`Condition::requester_nearby`].
///
/// # Examples
///
/// ```
/// use tippers_policy::{Condition, ConditionContext, TimeWindow, Timestamp};
/// use tippers_spatial::SpatialModel;
///
/// let model = SpatialModel::new("campus");
/// let condition = Condition::during(TimeWindow::business_hours());
/// let nine_am = ConditionContext::at(&model, Timestamp::at(0, 9, 0));
/// let midnight = ConditionContext::at(&model, Timestamp::at(0, 0, 0));
/// assert!(condition.is_satisfied(&nine_am));
/// assert!(!condition.is_satisfied(&midnight));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Condition {
    /// Recurring time window in which the rule is active.
    pub time: Option<TimeWindow>,
    /// Any-of space restriction: the subject must be inside one of these
    /// subtrees. Empty = anywhere.
    pub spaces: Vec<SpaceId>,
    /// The requester must be in (or adjacent to) one of `spaces` — Policy
    /// 4's proximity gate. Meaningless when `spaces` is empty.
    pub requester_nearby: bool,
    /// The room must be occupied (Policy 1's trigger).
    pub requires_occupied: bool,
}

impl Condition {
    /// The always-true condition.
    pub fn always() -> Condition {
        Condition::default()
    }

    /// Condition restricted to a time window.
    pub fn during(window: TimeWindow) -> Condition {
        Condition {
            time: Some(window),
            ..Condition::default()
        }
    }

    /// Restricts to a time window (builder-style).
    pub fn with_time(mut self, window: TimeWindow) -> Condition {
        self.time = Some(window);
        self
    }

    /// Restricts to a set of spaces (builder-style).
    pub fn with_spaces(mut self, spaces: Vec<SpaceId>) -> Condition {
        self.spaces = spaces;
        self
    }

    /// Requires the requester to be near the condition's spaces.
    pub fn with_requester_nearby(mut self) -> Condition {
        self.requester_nearby = true;
        self
    }

    /// Requires the room to be occupied.
    pub fn with_occupied(mut self) -> Condition {
        self.requires_occupied = true;
        self
    }

    /// True if the condition has no clauses.
    pub fn is_always(&self) -> bool {
        self == &Condition::default()
    }

    /// Evaluates the condition.
    ///
    /// Unknown context facts satisfy their clause (see
    /// [`ConditionContext`]), with one exception: `requester_nearby` with an
    /// unknown requester location fails, because proximity is an *enabling*
    /// clause (Policy 4 discloses only to provably nearby requesters).
    pub fn is_satisfied(&self, ctx: &ConditionContext<'_>) -> bool {
        if let Some(w) = &self.time {
            if !w.contains(ctx.time) {
                return false;
            }
        }
        if !self.spaces.is_empty() {
            if let Some(s) = ctx.subject_space {
                if !self.spaces.iter().any(|&sp| ctx.model.contains(sp, s)) {
                    return false;
                }
            }
        }
        if self.requester_nearby && !self.spaces.is_empty() {
            match ctx.requester_space {
                None => return false,
                Some(r) => {
                    let near = self.spaces.iter().any(|&sp| {
                        ctx.model.contains(sp, r)
                            || ctx.model.neighboring(sp, r)
                            || ctx
                                .model
                                .neighbors(r)
                                .iter()
                                .any(|&n| ctx.model.contains(sp, n))
                    });
                    if !near {
                        return false;
                    }
                }
            }
        }
        if self.requires_occupied {
            if let Some(false) = ctx.room_occupied {
                return false;
            }
        }
        true
    }

    /// Conservative satisfiability overlap: false only if the two
    /// conditions provably never hold together (disjoint time windows or
    /// provably disjoint space sets).
    pub fn may_overlap(&self, other: &Condition, model: &SpatialModel) -> bool {
        if let (Some(a), Some(b)) = (&self.time, &other.time) {
            if !a.overlaps(b) {
                return false;
            }
        }
        if !self.spaces.is_empty() && !other.spaces.is_empty() {
            let any = self
                .spaces
                .iter()
                .any(|&a| other.spaces.iter().any(|&b| model.overlap(a, b)));
            if !any {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeOfDay;
    use tippers_spatial::{RoomUse, SpaceKind};

    fn model() -> (SpatialModel, SpaceId, SpaceId, SpaceId) {
        let mut m = SpatialModel::new("c");
        let b = m.add_space("B", SpaceKind::Building, m.root());
        let f = m.add_space("B-1", SpaceKind::Floor, b);
        let r1 = m.add_space("B-101", SpaceKind::room(RoomUse::Office), f);
        let r2 = m.add_space("B-102", SpaceKind::room(RoomUse::MeetingRoom), f);
        m.add_adjacency(r1, r2);
        (m, b, r1, r2)
    }

    #[test]
    fn always_is_satisfied() {
        let (m, _, _, _) = model();
        let ctx = ConditionContext::at(&m, Timestamp::at(0, 12, 0));
        assert!(Condition::always().is_satisfied(&ctx));
        assert!(Condition::always().is_always());
    }

    #[test]
    fn time_clause() {
        let (m, _, _, _) = model();
        let c = Condition::during(TimeWindow::after_hours());
        let day = ConditionContext::at(&m, Timestamp::at(0, 12, 0));
        let night = ConditionContext::at(&m, Timestamp::at(0, 23, 0));
        assert!(!c.is_satisfied(&day));
        assert!(c.is_satisfied(&night));
    }

    #[test]
    fn space_clause_with_known_subject() {
        let (m, b, r1, r2) = model();
        let c = Condition::always().with_spaces(vec![r1]);
        let mut ctx = ConditionContext::at(&m, Timestamp::at(0, 12, 0));
        ctx.subject_space = Some(r1);
        assert!(c.is_satisfied(&ctx));
        ctx.subject_space = Some(r2);
        assert!(!c.is_satisfied(&ctx));
        // Unknown subject space: clause passes (conservative).
        ctx.subject_space = None;
        assert!(c.is_satisfied(&ctx));
        // Subtree containment counts.
        let c2 = Condition::always().with_spaces(vec![b]);
        ctx.subject_space = Some(r2);
        assert!(c2.is_satisfied(&ctx));
    }

    #[test]
    fn requester_nearby_needs_proof() {
        let (m, _, r1, r2) = model();
        let c = Condition::always()
            .with_spaces(vec![r1])
            .with_requester_nearby();
        let mut ctx = ConditionContext::at(&m, Timestamp::at(0, 12, 0));
        // Unknown requester location: proximity cannot be proven → fail.
        assert!(!c.is_satisfied(&ctx));
        ctx.requester_space = Some(r1);
        assert!(c.is_satisfied(&ctx));
        // Adjacent room counts as nearby.
        ctx.requester_space = Some(r2);
        assert!(c.is_satisfied(&ctx));
    }

    #[test]
    fn occupancy_clause() {
        let (m, _, _, _) = model();
        let c = Condition::always().with_occupied();
        let mut ctx = ConditionContext::at(&m, Timestamp::at(0, 12, 0));
        assert!(c.is_satisfied(&ctx)); // unknown → pass
        ctx.room_occupied = Some(true);
        assert!(c.is_satisfied(&ctx));
        ctx.room_occupied = Some(false);
        assert!(!c.is_satisfied(&ctx));
    }

    #[test]
    fn overlap_detects_disjoint_times() {
        let (m, _, _, _) = model();
        let business = Condition::during(TimeWindow::business_hours());
        let night = Condition::during(TimeWindow {
            start: TimeOfDay::new(19, 0),
            end: TimeOfDay::new(23, 0),
            days: Default::default(),
        });
        assert!(!business.may_overlap(&night, &m));
        assert!(business.may_overlap(&Condition::always(), &m));
    }

    #[test]
    fn overlap_detects_disjoint_spaces() {
        let (m, _, r1, r2) = model();
        let a = Condition::always().with_spaces(vec![r1]);
        let b = Condition::always().with_spaces(vec![r2]);
        assert!(!a.may_overlap(&b, &m));
        let parent = Condition::always().with_spaces(vec![m.root()]);
        assert!(a.may_overlap(&parent, &m));
    }
}
