//! The paper's Figures 2–4, embedded as JSON, with parsers.
//!
//! The ICDCS listings are typeset with minor truncations (an elided URL, a
//! missing comma before `"observations"`, unbalanced brackets in Figure 4);
//! the constants below are the obvious syntactic repairs — every key,
//! value and nesting level the paper shows is preserved. Experiments
//! E2–E4 assert that these parse into the wire types and round-trip at the
//! JSON-value level.

use crate::document::{PolicyDocument, ServicePolicyDocument, SettingsDocument};

/// Figure 2: "Policy related to data collection inside DBH" — Policy 2's
/// machine-readable form (WiFi-based location tracking for emergency
/// response, retained six months).
pub const FIG2_JSON: &str = r#"{
  "resources": [{
    "info": { "name": "Location tracking in DBH" },
    "context": {
      "location": {
        "spatial": { "name": "Donald Bren Hall", "type": "Building" },
        "location_owner": {
          "name": "UCI",
          "human_description": { "more_info": "https://uci.edu" }
        }
      }
    },
    "sensor": {
      "type": "WiFi Access Point",
      "description": "Installed inside the building and covers rooms and corridors"
    },
    "purpose": {
      "emergency response": { "description": "Location is stored continuously" }
    },
    "observations": [{
      "name": "MAC address of the device",
      "description": "If your device is connected to a WiFi Access Point in DBH, its MAC address is stored"
    }],
    "retention": { "duration": "P6M" }
  }]
}"#;

/// Figure 3: "Policy related to a service in the building" — the Smart
/// Concierge's data practices.
pub const FIG3_JSON: &str = r#"{
  "observations": [{
    "name": "wifi_access_point",
    "description": "Whenever one of your devices connects to the DBH WiFi its MAC address is stored"
  }, {
    "name": "bluetooth_beacon",
    "description": "When you have Concierge installed and your bluetooth senses a beacon, the room you are in is stored"
  }],
  "purpose": {
    "providing_service": {
      "description": "Your location data is used to give you directions around the Bren Hall."
    },
    "service_id": "Concierge"
  }
}"#;

/// Figure 4: "Privacy settings available" — the fine / coarse / opt-out
/// location choice.
pub const FIG4_JSON: &str = r#"{
  "settings": [{
    "select": [{
      "description": "fine grained location sensing",
      "on": "https://bms.local/settings?wifi=opt-in&granularity=fine"
    }, {
      "description": "coarse grained location sensing",
      "on": "https://bms.local/settings?wifi=opt-in&granularity=coarse"
    }, {
      "description": "No location sensing",
      "on": "https://bms.local/settings?wifi=opt-out"
    }]
  }]
}"#;

/// Parses Figure 2 into the wire format.
///
/// # Panics
///
/// Never panics: the constant is covered by tests.
pub fn fig2_document() -> PolicyDocument {
    serde_json::from_str(FIG2_JSON).expect("figure 2 JSON is valid")
}

/// Parses Figure 3 into the wire format.
pub fn fig3_document() -> ServicePolicyDocument {
    serde_json::from_str(FIG3_JSON).expect("figure 3 JSON is valid")
}

/// Parses Figure 4 into the wire format.
pub fn fig4_document() -> SettingsDocument {
    serde_json::from_str(FIG4_JSON).expect("figure 4 JSON is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    #[test]
    fn fig2_round_trips_at_value_level() {
        let doc = fig2_document();
        let reserialized: Value = serde_json::to_value(&doc).unwrap();
        let original: Value = serde_json::from_str(FIG2_JSON).unwrap();
        assert_eq!(reserialized, original);
    }

    #[test]
    fn fig2_semantics() {
        let doc = fig2_document();
        assert_eq!(doc.resources.len(), 1);
        let r = &doc.resources[0];
        assert_eq!(r.info.name, "Location tracking in DBH");
        let loc = r.context.as_ref().unwrap().location.as_ref().unwrap();
        assert_eq!(loc.spatial.as_ref().unwrap().name, "Donald Bren Hall");
        assert_eq!(
            loc.spatial.as_ref().unwrap().kind.as_deref(),
            Some("Building")
        );
        assert_eq!(loc.location_owner.as_ref().unwrap().name, "UCI");
        assert_eq!(r.sensor.as_ref().unwrap().kind, "WiFi Access Point");
        assert!(r.purpose.purposes.contains_key("emergency response"));
        assert_eq!(r.observations.len(), 1);
        assert_eq!(r.retention.unwrap().duration.months, 6);
    }

    #[test]
    fn fig3_round_trips_at_value_level() {
        let doc = fig3_document();
        let reserialized: Value = serde_json::to_value(&doc).unwrap();
        let original: Value = serde_json::from_str(FIG3_JSON).unwrap();
        assert_eq!(reserialized, original);
    }

    #[test]
    fn fig3_semantics() {
        let doc = fig3_document();
        assert_eq!(doc.observations.len(), 2);
        assert_eq!(doc.observations[0].name, "wifi_access_point");
        assert_eq!(doc.purpose.service_id.as_deref(), Some("Concierge"));
        assert!(doc.purpose.purposes.contains_key("providing_service"));
    }

    #[test]
    fn fig4_round_trips_at_value_level() {
        let doc = fig4_document();
        let reserialized: Value = serde_json::to_value(&doc).unwrap();
        let original: Value = serde_json::from_str(FIG4_JSON).unwrap();
        assert_eq!(reserialized, original);
    }

    #[test]
    fn fig4_semantics() {
        let doc = fig4_document();
        assert_eq!(doc.settings.len(), 1);
        let select = &doc.settings[0].select;
        assert_eq!(select.len(), 3);
        assert_eq!(select[0].description, "fine grained location sensing");
        assert!(select[0].on.contains("wifi=opt-in"));
        assert!(select[2].on.contains("wifi=opt-out"));
    }
}
