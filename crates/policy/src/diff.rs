//! Semantic diffing of policy documents.
//!
//! Buildings republish policies (registries bump the advertisement
//! version); an IoTA should tell its user *what changed* — "retention
//! extended from P6M to P1Y" is actionable, "policy updated" is noise
//! (§V.B's notification-relevance problem applied to updates).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::document::{PolicyDocument, ResourceBlock};
use crate::duration::IsoDuration;

/// One semantic change between two versions of a policy document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PolicyChange {
    /// A resource appeared.
    ResourceAdded {
        /// Its name.
        name: String,
    },
    /// A resource disappeared.
    ResourceRemoved {
        /// Its name.
        name: String,
    },
    /// Retention changed (`None` = kept indefinitely).
    RetentionChanged {
        /// The resource.
        resource: String,
        /// Previous duration.
        old: Option<IsoDuration>,
        /// New duration.
        new: Option<IsoDuration>,
    },
    /// A purpose was added to a resource.
    PurposeAdded {
        /// The resource.
        resource: String,
        /// The new purpose key.
        purpose: String,
    },
    /// A purpose was dropped from a resource.
    PurposeRemoved {
        /// The resource.
        resource: String,
        /// The removed purpose key.
        purpose: String,
    },
    /// A new observation (collected data item) was declared.
    ObservationAdded {
        /// The resource.
        resource: String,
        /// The observation name.
        observation: String,
    },
    /// An observation was withdrawn.
    ObservationRemoved {
        /// The resource.
        resource: String,
        /// The observation name.
        observation: String,
    },
    /// The available settings changed (options added/removed/reworded).
    SettingsChanged {
        /// The resource.
        resource: String,
    },
    /// The modality extension changed (e.g. opt-out became required).
    ModalityChanged {
        /// The resource.
        resource: String,
        /// Previous modality string.
        old: Option<String>,
        /// New modality string.
        new: Option<String>,
    },
}

impl PolicyChange {
    /// True for changes that widen data collection or weaken user control —
    /// the ones an IoTA should always surface.
    pub fn is_expansion(&self) -> bool {
        match self {
            PolicyChange::ResourceAdded { .. }
            | PolicyChange::PurposeAdded { .. }
            | PolicyChange::ObservationAdded { .. } => true,
            PolicyChange::RetentionChanged { old, new, .. } => match (old, new) {
                (_, None) => true, // became indefinite
                (None, Some(_)) => false,
                (Some(o), Some(n)) => n.as_seconds() > o.as_seconds(),
            },
            PolicyChange::ModalityChanged { new, .. } => new.as_deref() == Some("required"),
            _ => false,
        }
    }
}

impl fmt::Display for PolicyChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyChange::ResourceAdded { name } => {
                write!(f, "new data practice `{name}`")
            }
            PolicyChange::ResourceRemoved { name } => {
                write!(f, "data practice `{name}` withdrawn")
            }
            PolicyChange::RetentionChanged { resource, old, new } => {
                let show = |d: &Option<IsoDuration>| {
                    d.map_or_else(|| "indefinite".into(), |d| d.to_string())
                };
                write!(
                    f,
                    "`{resource}`: retention changed from {} to {}",
                    show(old),
                    show(new)
                )
            }
            PolicyChange::PurposeAdded { resource, purpose } => {
                write!(f, "`{resource}`: data is now also used for `{purpose}`")
            }
            PolicyChange::PurposeRemoved { resource, purpose } => {
                write!(f, "`{resource}`: no longer used for `{purpose}`")
            }
            PolicyChange::ObservationAdded {
                resource,
                observation,
            } => write!(f, "`{resource}`: now also collects `{observation}`"),
            PolicyChange::ObservationRemoved {
                resource,
                observation,
            } => write!(f, "`{resource}`: stopped collecting `{observation}`"),
            PolicyChange::SettingsChanged { resource } => {
                write!(f, "`{resource}`: available privacy settings changed")
            }
            PolicyChange::ModalityChanged { resource, old, new } => write!(
                f,
                "`{resource}`: modality changed from {} to {}",
                old.as_deref().unwrap_or("unspecified"),
                new.as_deref().unwrap_or("unspecified")
            ),
        }
    }
}

/// Computes the semantic changes from `old` to `new`, matching resources by
/// name.
pub fn diff_documents(old: &PolicyDocument, new: &PolicyDocument) -> Vec<PolicyChange> {
    let mut changes = Vec::new();
    let old_names: BTreeSet<&str> = old.resources.iter().map(|r| r.info.name.as_str()).collect();
    let new_names: BTreeSet<&str> = new.resources.iter().map(|r| r.info.name.as_str()).collect();

    for &name in new_names.difference(&old_names) {
        changes.push(PolicyChange::ResourceAdded { name: name.into() });
    }
    for &name in old_names.difference(&new_names) {
        changes.push(PolicyChange::ResourceRemoved { name: name.into() });
    }
    for &name in old_names.intersection(&new_names) {
        let a = old
            .resources
            .iter()
            .find(|r| r.info.name == name)
            .expect("present");
        let b = new
            .resources
            .iter()
            .find(|r| r.info.name == name)
            .expect("present");
        changes.extend(diff_resource(a, b));
    }
    changes
}

fn diff_resource(old: &ResourceBlock, new: &ResourceBlock) -> Vec<PolicyChange> {
    let mut changes = Vec::new();
    let resource = new.info.name.clone();

    let old_ret = old.retention.map(|r| r.duration);
    let new_ret = new.retention.map(|r| r.duration);
    if old_ret != new_ret {
        changes.push(PolicyChange::RetentionChanged {
            resource: resource.clone(),
            old: old_ret,
            new: new_ret,
        });
    }

    let old_purposes: BTreeSet<&String> = old.purpose.purposes.keys().collect();
    let new_purposes: BTreeSet<&String> = new.purpose.purposes.keys().collect();
    for &p in new_purposes.difference(&old_purposes) {
        changes.push(PolicyChange::PurposeAdded {
            resource: resource.clone(),
            purpose: p.clone(),
        });
    }
    for &p in old_purposes.difference(&new_purposes) {
        changes.push(PolicyChange::PurposeRemoved {
            resource: resource.clone(),
            purpose: p.clone(),
        });
    }

    let old_obs: BTreeSet<&String> = old.observations.iter().map(|o| &o.name).collect();
    let new_obs: BTreeSet<&String> = new.observations.iter().map(|o| &o.name).collect();
    for &o in new_obs.difference(&old_obs) {
        changes.push(PolicyChange::ObservationAdded {
            resource: resource.clone(),
            observation: o.clone(),
        });
    }
    for &o in old_obs.difference(&new_obs) {
        changes.push(PolicyChange::ObservationRemoved {
            resource: resource.clone(),
            observation: o.clone(),
        });
    }

    if old.settings != new.settings {
        changes.push(PolicyChange::SettingsChanged {
            resource: resource.clone(),
        });
    }
    if old.modality != new.modality {
        changes.push(PolicyChange::ModalityChanged {
            resource,
            old: old.modality.clone(),
            new: new.modality.clone(),
        });
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{ObservationBlock, RetentionBlock};
    use crate::figures;

    #[test]
    fn identical_documents_have_no_changes() {
        let doc = figures::fig2_document();
        assert!(diff_documents(&doc, &doc).is_empty());
    }

    #[test]
    fn retention_extension_is_an_expansion() {
        let old = figures::fig2_document();
        let mut new = old.clone();
        new.resources[0].retention = Some(RetentionBlock {
            duration: "P1Y".parse().unwrap(),
        });
        let changes = diff_documents(&old, &new);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].is_expansion());
        let text = changes[0].to_string();
        assert!(text.contains("P6M") && text.contains("P1Y"), "{text}");
    }

    #[test]
    fn retention_shortening_is_not_an_expansion() {
        let old = figures::fig2_document();
        let mut new = old.clone();
        new.resources[0].retention = Some(RetentionBlock {
            duration: "P1M".parse().unwrap(),
        });
        let changes = diff_documents(&old, &new);
        assert!(!changes[0].is_expansion());
    }

    #[test]
    fn dropping_retention_entirely_is_an_expansion() {
        let old = figures::fig2_document();
        let mut new = old.clone();
        new.resources[0].retention = None;
        let changes = diff_documents(&old, &new);
        assert!(changes[0].is_expansion());
        assert!(changes[0].to_string().contains("indefinite"));
    }

    #[test]
    fn new_purpose_and_observation_are_expansions() {
        let old = figures::fig2_document();
        let mut new = old.clone();
        new.resources[0].purpose.purposes.insert(
            "marketing".to_owned(),
            crate::document::PurposeBlock {
                description: Some("ads".into()),
            },
        );
        new.resources[0].observations.push(ObservationBlock {
            name: "bluetooth sightings".into(),
            ..Default::default()
        });
        let changes = diff_documents(&old, &new);
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().all(super::PolicyChange::is_expansion));
    }

    #[test]
    fn added_and_removed_resources() {
        let old = figures::fig2_document();
        let mut new = PolicyDocument::default();
        new.resources.push(old.resources[0].clone());
        new.resources[0].info.name = "Something else".into();
        let changes = diff_documents(&old, &new);
        assert!(changes.contains(&PolicyChange::ResourceAdded {
            name: "Something else".into()
        }));
        assert!(changes.contains(&PolicyChange::ResourceRemoved {
            name: "Location tracking in DBH".into()
        }));
    }

    #[test]
    fn modality_hardening_is_an_expansion() {
        let old = figures::fig2_document();
        let mut new = old.clone();
        new.resources[0].modality = Some("required".into());
        let changes = diff_documents(&old, &new);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].is_expansion());
    }
}
