use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_spatial::SpaceId;

use crate::condition::Condition;
use crate::duration::IsoDuration;
use crate::ids::{PolicyId, ServiceId};
use crate::preference::Effect;
use crate::subject::SubjectScope;

/// Lifecycle stages a policy's actions apply to — the paper's *when* of
/// enforcement: "during capture, storage, processing, or sharing" (§V.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataAction {
    /// Capturing data from sensors.
    Collect,
    /// Persisting captured data.
    Store,
    /// Deriving higher-level information.
    Infer,
    /// Sharing data with services or third parties.
    Share,
    /// Driving actuators from the data (Policy 1's HVAC control).
    Actuate,
}

impl DataAction {
    /// All actions.
    pub const ALL: [DataAction; 5] = [
        DataAction::Collect,
        DataAction::Store,
        DataAction::Infer,
        DataAction::Share,
        DataAction::Actuate,
    ];

    fn bit(self) -> u8 {
        match self {
            DataAction::Collect => 1,
            DataAction::Store => 2,
            DataAction::Infer => 4,
            DataAction::Share => 8,
            DataAction::Actuate => 16,
        }
    }
}

/// A set of [`DataAction`]s, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActionSet(u8);

impl ActionSet {
    /// The empty set.
    pub const EMPTY: ActionSet = ActionSet(0);
    /// Collect + Store.
    pub const COLLECT_STORE: ActionSet = ActionSet(1 | 2);
    /// Every action.
    pub const ALL: ActionSet = ActionSet(31);

    /// Builds a set from a list of actions.
    pub fn of(actions: &[DataAction]) -> ActionSet {
        ActionSet(actions.iter().fold(0, |m, a| m | a.bit()))
    }

    /// True if the set contains `action`.
    pub fn contains(self, action: DataAction) -> bool {
        self.0 & action.bit() != 0
    }

    /// Union of two sets.
    pub fn union(self, other: ActionSet) -> ActionSet {
        ActionSet(self.0 | other.0)
    }

    /// True if the sets share an action.
    pub fn intersects(self, other: ActionSet) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no action is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for ActionSet {
    fn default() -> Self {
        ActionSet::COLLECT_STORE
    }
}

impl FromIterator<DataAction> for ActionSet {
    fn from_iter<I: IntoIterator<Item = DataAction>>(iter: I) -> Self {
        ActionSet(iter.into_iter().fold(0, |m, a| m | a.bit()))
    }
}

/// Whether occupants can override a policy.
///
/// §III.A: building policies "(in most cases) have to be met completely by
/// the other actors", but services are opt-in; the conflict example
/// (Policy 2 vs Preference 2) arises exactly when a mandatory policy meets
/// a deny preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Modality {
    /// Cannot be overridden by user preferences (emergency/security).
    Required,
    /// Active by default; users may opt out or degrade.
    #[default]
    OptOut,
    /// Inactive until a user opts in (typical for services).
    OptIn,
}

/// A privacy setting a policy exposes to occupants — the normalized form of
/// Figure 4's `select` options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySetting {
    /// Stable key, e.g. `"location-sensing"`.
    pub key: String,
    /// The options a user may choose from, most permissive first.
    pub options: Vec<SettingOption>,
    /// Index into `options` applied when a user has chosen nothing.
    pub default_option: usize,
}

impl PolicySetting {
    /// The option a given choice index maps to, clamped to a valid index.
    pub fn option(&self, choice: Option<usize>) -> &SettingOption {
        let idx = choice.unwrap_or(self.default_option);
        &self.options[idx.min(self.options.len().saturating_sub(1))]
    }
}

/// One selectable option of a [`PolicySetting`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingOption {
    /// Human-readable description ("fine grained location sensing").
    pub description: String,
    /// Opaque activation token, the `on` URL in Figure 4.
    pub on: String,
    /// The enforcement effect choosing this option produces.
    pub effect: Effect,
}

/// A building policy in normalized form: "requirements for data collection
/// and management set by the temporary or permanent owner" (§III.A).
///
/// The wire form (the JSON of Figures 2–4) is [`crate::PolicyDocument`];
/// [`crate::PolicyCodec`] converts between the two.
///
/// # Examples
///
/// ```
/// use tippers_policy::{BuildingPolicy, Modality, PolicyId};
/// use tippers_ontology::Ontology;
/// use tippers_spatial::SpatialModel;
///
/// let ontology = Ontology::standard();
/// let c = ontology.concepts();
/// let model = SpatialModel::new("campus");
/// let policy = BuildingPolicy::new(
///     PolicyId(1),
///     "Camera surveillance",
///     model.root(),
///     c.image,
///     c.surveillance,
/// )
/// .with_retention("P90D".parse()?)
/// .with_modality(Modality::Required);
/// assert!(policy.is_required());
/// # Ok::<(), tippers_policy::ParseDurationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildingPolicy {
    /// Unique id.
    pub id: PolicyId,
    /// Short name ("Location tracking in DBH").
    pub name: String,
    /// Human-readable description for IoTA summaries.
    pub description: String,
    /// Space subtree the policy covers.
    pub space: SpaceId,
    /// Whose data it covers.
    pub subjects: SubjectScope,
    /// Sensor class involved, if tied to specific sensors.
    pub sensor_class: Option<ConceptId>,
    /// Data category collected/managed.
    pub data: ConceptId,
    /// Purpose of the collection.
    pub purpose: ConceptId,
    /// Lifecycle stages covered.
    pub actions: ActionSet,
    /// When the policy applies.
    pub condition: Condition,
    /// How long data is retained (`None` = indefinitely).
    pub retention: Option<IsoDuration>,
    /// Whether users can override it.
    pub modality: Modality,
    /// Privacy settings offered to occupants.
    pub settings: Vec<PolicySetting>,
    /// The service this policy belongs to, for service policies (Figure 3).
    pub service: Option<ServiceId>,
}

impl BuildingPolicy {
    /// Creates a policy with the mandatory fields; everything else defaults
    /// (everyone, collect+store, always, opt-out, no retention limit).
    pub fn new(
        id: PolicyId,
        name: impl Into<String>,
        space: SpaceId,
        data: ConceptId,
        purpose: ConceptId,
    ) -> Self {
        BuildingPolicy {
            id,
            name: name.into(),
            description: String::new(),
            space,
            subjects: SubjectScope::Everyone,
            sensor_class: None,
            data,
            purpose,
            actions: ActionSet::default(),
            condition: Condition::always(),
            retention: None,
            modality: Modality::default(),
            settings: Vec::new(),
            service: None,
        }
    }

    /// Sets the description (builder-style).
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Sets the subject scope (builder-style).
    pub fn with_subjects(mut self, s: SubjectScope) -> Self {
        self.subjects = s;
        self
    }

    /// Sets the sensor class (builder-style).
    pub fn with_sensor_class(mut self, c: ConceptId) -> Self {
        self.sensor_class = Some(c);
        self
    }

    /// Sets the action set (builder-style).
    pub fn with_actions(mut self, a: ActionSet) -> Self {
        self.actions = a;
        self
    }

    /// Sets the condition (builder-style).
    pub fn with_condition(mut self, c: Condition) -> Self {
        self.condition = c;
        self
    }

    /// Sets the retention duration (builder-style).
    pub fn with_retention(mut self, d: IsoDuration) -> Self {
        self.retention = Some(d);
        self
    }

    /// Sets the modality (builder-style).
    pub fn with_modality(mut self, m: Modality) -> Self {
        self.modality = m;
        self
    }

    /// Adds a privacy setting (builder-style).
    pub fn with_setting(mut self, s: PolicySetting) -> Self {
        self.settings.push(s);
        self
    }

    /// Marks this as a service policy (builder-style).
    pub fn with_service(mut self, s: ServiceId) -> Self {
        self.service = Some(s);
        self
    }

    /// True if occupants cannot override this policy.
    pub fn is_required(&self) -> bool {
        self.modality == Modality::Required
    }

    /// The standard three-way location setting of Figure 4
    /// (fine / coarse / none).
    pub fn location_setting() -> PolicySetting {
        PolicySetting {
            key: "location-sensing".to_owned(),
            options: vec![
                SettingOption {
                    description: "fine grained location sensing".to_owned(),
                    on: "https://bms.local/settings?wifi=opt-in&granularity=fine".to_owned(),
                    effect: Effect::Allow,
                },
                SettingOption {
                    description: "coarse grained location sensing".to_owned(),
                    on: "https://bms.local/settings?wifi=opt-in&granularity=coarse".to_owned(),
                    effect: Effect::Degrade(tippers_spatial::Granularity::Floor),
                },
                SettingOption {
                    description: "No location sensing".to_owned(),
                    on: "https://bms.local/settings?wifi=opt-out".to_owned(),
                    effect: Effect::Deny,
                },
            ],
            default_option: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_ontology::Ontology;
    use tippers_spatial::{Granularity, SpatialModel};

    #[test]
    fn action_set_ops() {
        let a = ActionSet::of(&[DataAction::Collect, DataAction::Share]);
        assert!(a.contains(DataAction::Collect));
        assert!(!a.contains(DataAction::Store));
        assert!(a.intersects(ActionSet::COLLECT_STORE));
        assert!(!ActionSet::EMPTY.intersects(a));
        assert!(ActionSet::EMPTY.is_empty());
        let b: ActionSet = DataAction::ALL.into_iter().collect();
        assert_eq!(b, ActionSet::ALL);
        assert_eq!(a.union(b), ActionSet::ALL);
    }

    #[test]
    fn builder_chain() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let m = SpatialModel::new("c");
        let p = BuildingPolicy::new(PolicyId(1), "test", m.root(), c.wifi_association, c.logging)
            .with_description("d")
            .with_modality(Modality::Required)
            .with_retention("P6M".parse().unwrap())
            .with_actions(ActionSet::ALL)
            .with_setting(BuildingPolicy::location_setting());
        assert!(p.is_required());
        assert_eq!(p.retention.unwrap().months, 6);
        assert_eq!(p.settings.len(), 1);
    }

    #[test]
    fn location_setting_matches_figure_4_shape() {
        let s = BuildingPolicy::location_setting();
        assert_eq!(s.options.len(), 3);
        assert_eq!(s.options[0].effect, Effect::Allow);
        assert_eq!(s.options[1].effect, Effect::Degrade(Granularity::Floor));
        assert_eq!(s.options[2].effect, Effect::Deny);
        // Default is the most permissive (opt-out world).
        assert_eq!(s.option(None).effect, Effect::Allow);
        // Out-of-range choices clamp instead of panicking.
        assert_eq!(s.option(Some(99)).effect, Effect::Deny);
    }
}
