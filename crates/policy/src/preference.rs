use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_spatial::{Granularity, SpaceId, SpatialModel};

use crate::condition::{Condition, ConditionContext};
use crate::ids::{PreferenceId, ServiceId, UserId};

/// What a user wants done with matching data flows.
///
/// Mirrors the paper's enforcement *hows*: "accept/deny data access or add
/// noise" (§V.C) plus granularity reduction (Figure 4's fine/coarse/none
/// choices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Effect {
    /// Permit the flow unchanged.
    Allow,
    /// Refuse the flow.
    Deny,
    /// Permit location data only at (or coarser than) this granularity.
    Degrade(Granularity),
    /// Permit numeric data with zero-mean Gaussian noise of this standard
    /// deviation added.
    Noise {
        /// Noise standard deviation, in the data's natural unit.
        sigma: f64,
    },
}

impl Effect {
    /// Strictness rank for resolution: higher = more privacy-protective.
    ///
    /// `Deny` > `Degrade(coarser)` > `Degrade(finer)` > `Noise` > `Allow`.
    pub fn strictness(&self) -> u8 {
        match self {
            Effect::Allow => 0,
            Effect::Noise { .. } => 1,
            Effect::Degrade(g) => 2 + (*g as u8),
            Effect::Deny => 10,
        }
    }

    /// The stricter of two effects.
    pub fn stricter(self, other: Effect) -> Effect {
        if self.strictness() >= other.strictness() {
            self
        } else {
            other
        }
    }

    /// True if the effect blocks the flow entirely.
    pub fn is_deny(&self) -> bool {
        matches!(self, Effect::Deny)
    }
}

/// What a [`UserPreference`] applies to. `None` fields mean *any*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PreferenceScope {
    /// Data category (matches any request category subsumed by it).
    pub data: Option<ConceptId>,
    /// Purpose (matches any request purpose subsumed by it).
    pub purpose: Option<ConceptId>,
    /// A specific service (Preference 3/4 are per-service permissions).
    pub service: Option<ServiceId>,
    /// A space subtree the subject must be in.
    pub space: Option<SpaceId>,
    /// Additional condition (time window etc.).
    pub condition: Condition,
}

/// A single flow this scope is tested against.
#[derive(Debug, Clone, Copy)]
pub struct FlowRef<'a> {
    /// Data category of the flow.
    pub data: ConceptId,
    /// Purpose of the flow.
    pub purpose: ConceptId,
    /// Requesting/consuming service, if any.
    pub service: Option<&'a ServiceId>,
    /// Where the subject is (or where the data was captured), if known.
    pub space: Option<SpaceId>,
}

impl PreferenceScope {
    /// True if the scope covers the flow under the given context.
    ///
    /// Category/purpose matching is subsumption-aware: a scope over
    /// `data/location` covers a flow of `data/location/fine`. Space matching
    /// with an *unknown* flow space is conservative (the scope applies), so
    /// restrictive preferences are not bypassed by dropping location info.
    pub fn covers(
        &self,
        flow: &FlowRef<'_>,
        ontology: &Ontology,
        ctx: &ConditionContext<'_>,
    ) -> bool {
        if let Some(d) = self.data {
            if !ontology.data.is_a(flow.data, d) {
                return false;
            }
        }
        if let Some(p) = self.purpose {
            if !ontology.purposes.is_a(flow.purpose, p) {
                return false;
            }
        }
        if let Some(svc) = &self.service {
            match flow.service {
                Some(s) if s == svc => {}
                _ => return false,
            }
        }
        if let Some(space) = self.space {
            if let Some(fs) = flow.space {
                if !ctx.model.contains(space, fs) {
                    return false;
                }
            }
        }
        self.condition.is_satisfied(ctx)
    }
}

/// A user preference: "a representation of the user's expectation of how
/// data pertaining to her should be managed by the pervasive space"
/// (§III.B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPreference {
    /// Unique id.
    pub id: PreferenceId,
    /// The user whose data this governs.
    pub user: UserId,
    /// What flows the preference covers.
    pub scope: PreferenceScope,
    /// What to do with covered flows.
    pub effect: Effect,
    /// Tie-breaker among one user's own preferences: higher wins; on equal
    /// priority the stricter effect wins.
    pub priority: u8,
    /// Free-text note shown in IoTA summaries.
    pub note: String,
}

impl UserPreference {
    /// Creates a preference with default (lowest) priority.
    pub fn new(id: PreferenceId, user: UserId, scope: PreferenceScope, effect: Effect) -> Self {
        UserPreference {
            id,
            user,
            scope,
            effect,
            priority: 0,
            note: String::new(),
        }
    }

    /// Sets the priority (builder-style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the note (builder-style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }
}

/// Picks the effective effect among a user's matching preferences:
/// highest priority wins; ties resolve to the strictest effect; no matching
/// preference yields `None` (caller applies the policy default).
pub fn effective_effect(matching: &[&UserPreference]) -> Option<Effect> {
    let top = matching.iter().map(|p| p.priority).max()?;
    matching
        .iter()
        .filter(|p| p.priority == top)
        .map(|p| p.effect)
        .reduce(Effect::stricter)
}

/// Convenience: evaluates all of `prefs` against one flow and resolves.
pub fn resolve_preferences(
    prefs: &[UserPreference],
    user: UserId,
    flow: &FlowRef<'_>,
    ontology: &Ontology,
    model: &SpatialModel,
    ctx: &ConditionContext<'_>,
) -> Option<Effect> {
    let _ = model;
    let matching: Vec<&UserPreference> = prefs
        .iter()
        .filter(|p| p.user == user)
        .filter(|p| p.scope.covers(flow, ontology, ctx))
        .collect();
    effective_effect(&matching)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn env() -> (Ontology, SpatialModel) {
        (Ontology::standard(), SpatialModel::new("c"))
    }

    #[test]
    fn strictness_ordering() {
        assert!(Effect::Deny.strictness() > Effect::Degrade(Granularity::Campus).strictness());
        assert!(
            Effect::Degrade(Granularity::Building).strictness()
                > Effect::Degrade(Granularity::Room).strictness()
        );
        assert!(Effect::Noise { sigma: 1.0 }.strictness() > Effect::Allow.strictness());
        assert_eq!(Effect::Allow.stricter(Effect::Deny), Effect::Deny);
    }

    #[test]
    fn scope_subsumption_matching() {
        let (ont, model) = env();
        let c = ont.concepts();
        let scope = PreferenceScope {
            data: Some(c.location),
            ..Default::default()
        };
        let ctx = ConditionContext::at(&model, Timestamp::at(0, 12, 0));
        let fine_flow = FlowRef {
            data: c.location_fine,
            purpose: c.navigation,
            service: None,
            space: None,
        };
        assert!(scope.covers(&fine_flow, &ont, &ctx));
        let temp_flow = FlowRef {
            data: c.ambient_temperature,
            ..fine_flow
        };
        assert!(!scope.covers(&temp_flow, &ont, &ctx));
    }

    #[test]
    fn service_scope_requires_exact_service() {
        let (ont, model) = env();
        let c = ont.concepts();
        let concierge = ServiceId::new("Concierge");
        let scope = PreferenceScope {
            service: Some(concierge.clone()),
            ..Default::default()
        };
        let ctx = ConditionContext::at(&model, Timestamp::at(0, 12, 0));
        let mut flow = FlowRef {
            data: c.location_fine,
            purpose: c.navigation,
            service: Some(&concierge),
            space: None,
        };
        assert!(scope.covers(&flow, &ont, &ctx));
        flow.service = None;
        assert!(!scope.covers(&flow, &ont, &ctx));
        let other = ServiceId::new("Other");
        flow.service = Some(&other);
        assert!(!scope.covers(&flow, &ont, &ctx));
    }

    #[test]
    fn priority_then_strictness() {
        let (ont, _) = env();
        let c = ont.concepts();
        let scope = PreferenceScope {
            data: Some(c.location),
            ..Default::default()
        };
        let deny = UserPreference::new(PreferenceId(1), UserId(1), scope.clone(), Effect::Deny);
        let allow = UserPreference::new(PreferenceId(2), UserId(1), scope.clone(), Effect::Allow)
            .with_priority(5);
        // Higher-priority Allow beats lower-priority Deny.
        assert_eq!(effective_effect(&[&deny, &allow]), Some(Effect::Allow));
        // Same priority: strictest wins.
        let allow0 = UserPreference::new(PreferenceId(3), UserId(1), scope, Effect::Allow);
        assert_eq!(effective_effect(&[&deny, &allow0]), Some(Effect::Deny));
        assert_eq!(effective_effect(&[]), None);
    }

    #[test]
    fn resolve_filters_by_user() {
        let (ont, model) = env();
        let c = ont.concepts();
        let scope = PreferenceScope {
            data: Some(c.location),
            ..Default::default()
        };
        let other_users = vec![UserPreference::new(
            PreferenceId(1),
            UserId(9),
            scope,
            Effect::Deny,
        )];
        let ctx = ConditionContext::at(&model, Timestamp::at(0, 12, 0));
        let flow = FlowRef {
            data: c.location_fine,
            purpose: c.navigation,
            service: None,
            space: None,
        };
        assert_eq!(
            resolve_preferences(&other_users, UserId(1), &flow, &ont, &model, &ctx),
            None
        );
    }
}
