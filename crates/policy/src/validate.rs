//! Structural validation of wire-format policy documents.
//!
//! IRRs should refuse to advertise documents that IoTAs cannot make sense
//! of; this module reports what is wrong and where.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::document::PolicyDocument;

/// Escapes one JSON-pointer reference token per RFC 6901 §3: `~` becomes
/// `~0` and `/` becomes `~1` (in that order, so `~1` in the input does not
/// decode as a slash).
///
/// Every dynamic segment interpolated into a diagnostic path — purpose
/// names, space names, service ids — must pass through here, otherwise a
/// name containing a slash would split into two bogus path segments.
///
/// # Examples
///
/// ```
/// use tippers_policy::validate::escape_pointer_segment;
/// assert_eq!(escape_pointer_segment("a/b"), "a~1b");
/// assert_eq!(escape_pointer_segment("x~y"), "x~0y");
/// assert_eq!(escape_pointer_segment("~1"), "~01");
/// ```
pub fn escape_pointer_segment(segment: &str) -> String {
    segment.replace('~', "~0").replace('/', "~1")
}

/// Severity of a [`ValidationIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory; the document is usable.
    Warning,
    /// The document (or one resource) cannot be interpreted.
    Error,
}

/// One problem found in a document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationIssue {
    /// How bad it is.
    pub severity: Severity,
    /// JSON-pointer-ish location, e.g. `/resources/0/info/name`.
    pub path: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev} at {}: {}", self.path, self.message)
    }
}

/// Validates a policy document, returning all issues found (empty = clean).
pub fn validate_document(doc: &PolicyDocument) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let mut push = |severity, path: String, message: &str| {
        issues.push(ValidationIssue {
            severity,
            path,
            message: message.to_owned(),
        });
    };

    if doc.resources.is_empty() {
        push(
            Severity::Error,
            "/resources".into(),
            "document advertises no resources",
        );
    }
    for (i, r) in doc.resources.iter().enumerate() {
        let base = format!("/resources/{i}");
        if r.info.name.trim().is_empty() {
            push(
                Severity::Error,
                format!("{base}/info/name"),
                "empty resource name",
            );
        }
        if r.purpose.is_empty() {
            push(
                Severity::Error,
                format!("{base}/purpose"),
                "no purpose declared; users cannot assess the practice",
            );
        }
        for (name, p) in &r.purpose.purposes {
            let seg = escape_pointer_segment(name);
            if name.trim().is_empty() {
                push(
                    Severity::Error,
                    format!("{base}/purpose/{seg}"),
                    "empty purpose name",
                );
            }
            if p.description
                .as_deref()
                .is_some_and(|d| d.trim().is_empty())
            {
                push(
                    Severity::Warning,
                    format!("{base}/purpose/{seg}/description"),
                    "purpose has a blank description",
                );
            }
        }
        if r.observations.is_empty() {
            push(
                Severity::Warning,
                format!("{base}/observations"),
                "no observations listed; nothing is disclosed about collected data",
            );
        }
        for (j, obs) in r.observations.iter().enumerate() {
            if obs.name.trim().is_empty() {
                push(
                    Severity::Error,
                    format!("{base}/observations/{j}/name"),
                    "empty observation name",
                );
            }
        }
        if r.retention.is_none() {
            push(
                Severity::Warning,
                format!("{base}/retention"),
                "no retention period; data is kept indefinitely",
            );
        } else if let Some(ret) = r.retention {
            if ret.duration.is_zero() {
                push(
                    Severity::Warning,
                    format!("{base}/retention/duration"),
                    "zero retention period",
                );
            }
        }
        if r.context
            .as_ref()
            .and_then(|c| c.location.as_ref())
            .and_then(|l| l.spatial.as_ref())
            .is_none()
        {
            push(
                Severity::Warning,
                format!("{base}/context/location/spatial"),
                "no spatial context; users cannot tell where the practice applies",
            );
        }
        for (j, s) in r.settings.iter().enumerate() {
            if s.select.is_empty() {
                push(
                    Severity::Error,
                    format!("{base}/settings/{j}/select"),
                    "setting with no options",
                );
            }
            let mut seen = std::collections::HashSet::new();
            for (k, o) in s.select.iter().enumerate() {
                if o.on.trim().is_empty() {
                    push(
                        Severity::Error,
                        format!("{base}/settings/{j}/select/{k}/on"),
                        "option without an activation URL",
                    );
                }
                if !seen.insert(o.description.as_str()) {
                    push(
                        Severity::Warning,
                        format!("{base}/settings/{j}/select/{k}/description"),
                        "duplicate option description",
                    );
                }
            }
        }
    }
    issues
}

/// True if the document has no [`Severity::Error`]-level issues.
pub fn is_advertisable(doc: &PolicyDocument) -> bool {
    validate_document(doc)
        .iter()
        .all(|i| i.severity < Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::*;
    use crate::figures;

    #[test]
    fn figure_2_is_clean_enough_to_advertise() {
        let doc = figures::fig2_document();
        assert!(is_advertisable(&doc));
        // It has no settings, which is fine; no error-level issues.
        let errors: Vec<_> = validate_document(&doc)
            .into_iter()
            .filter(|i| i.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn empty_document_is_an_error() {
        let doc = PolicyDocument::default();
        let issues = validate_document(&doc);
        assert!(issues.iter().any(|i| i.severity == Severity::Error));
        assert!(!is_advertisable(&doc));
    }

    #[test]
    fn missing_purpose_is_an_error() {
        let doc = PolicyDocument {
            resources: vec![ResourceBlock {
                info: InfoBlock {
                    name: "x".into(),
                    description: None,
                },
                ..Default::default()
            }],
            lint_allow: Vec::new(),
        };
        let issues = validate_document(&doc);
        assert!(issues
            .iter()
            .any(|i| i.path.ends_with("/purpose") && i.severity == Severity::Error));
    }

    #[test]
    fn missing_retention_is_a_warning() {
        let mut doc = figures::fig2_document();
        doc.resources[0].retention = None;
        assert!(is_advertisable(&doc));
        assert!(validate_document(&doc)
            .iter()
            .any(|i| i.path.ends_with("/retention") && i.severity == Severity::Warning));
    }

    #[test]
    fn broken_settings_are_errors() {
        let mut doc = figures::fig2_document();
        doc.resources[0]
            .settings
            .push(SettingBlock { select: vec![] });
        assert!(!is_advertisable(&doc));
    }

    #[test]
    fn duplicate_option_descriptions_warn() {
        let mut doc = figures::fig2_document();
        let opt = SettingOptionBlock {
            description: "same".into(),
            on: "https://x".into(),
        };
        doc.resources[0].settings.push(SettingBlock {
            select: vec![opt.clone(), opt],
        });
        let issues = validate_document(&doc);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("duplicate") && i.severity == Severity::Warning));
        assert!(is_advertisable(&doc));
    }

    #[test]
    fn pointer_segments_escape_rfc6901() {
        assert_eq!(escape_pointer_segment("plain"), "plain");
        assert_eq!(escape_pointer_segment("a/b/c"), "a~1b~1c");
        assert_eq!(escape_pointer_segment("m~n"), "m~0n");
        // `~` escapes first so a literal `~1` survives decoding.
        assert_eq!(escape_pointer_segment("~1"), "~01");
        assert_eq!(escape_pointer_segment("~/"), "~0~1");
    }

    #[test]
    fn purpose_names_with_slashes_escape_in_paths() {
        let mut doc = figures::fig2_document();
        let block = doc.resources[0]
            .purpose
            .purposes
            .remove("emergency response")
            .unwrap();
        doc.resources[0]
            .purpose
            .purposes
            .insert("a/b ~ c".into(), block);
        let issues = validate_document(&doc);
        // The blank-description warning is absent (description is set), and
        // no path splits on the raw slash.
        assert!(issues.iter().all(|i| !i.path.contains("a/b")));
        let mut blank = doc.clone();
        blank.resources[0]
            .purpose
            .purposes
            .get_mut("a/b ~ c")
            .unwrap()
            .description = Some("  ".into());
        let issues = validate_document(&blank);
        assert!(issues
            .iter()
            .any(|i| i.path.ends_with("/purpose/a~1b ~0 c/description")));
    }

    #[test]
    fn issues_display_nicely() {
        let doc = PolicyDocument::default();
        let text = validate_document(&doc)[0].to_string();
        assert!(text.contains("error at /resources"));
    }
}
