//! The wire format of the policy language — the JSON shapes of the paper's
//! Figures 2, 3 and 4.
//!
//! These types round-trip the paper's listings byte-for-byte at the JSON
//! value level (see [`crate::figures`]). Fields the paper leaves implicit
//! (machine-readable category/effect keys) are optional extensions that
//! serialize only when present, so documents produced by this crate remain
//! readable by a parser expecting exactly the paper's shapes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::duration::IsoDuration;

/// A full policy document: `{"resources": [...]}` (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PolicyDocument {
    /// The resources whose data practices are being disclosed.
    pub resources: Vec<ResourceBlock>,
    /// Static-analysis suppressions (extension): lint codes such as
    /// `"TA004"` that the document's author has reviewed and accepted.
    /// Diagnostics with a listed code are suppressed for this document.
    #[serde(rename = "lint-allow", default, skip_serializing_if = "Vec::is_empty")]
    pub lint_allow: Vec<String>,
}

/// One advertised resource and its data practices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceBlock {
    /// General information (`info.name`).
    pub info: InfoBlock,
    /// Deployment context: where, who owns it, which sensors.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub context: Option<ContextBlock>,
    /// Sensor description. The paper's Figure 2 renders this alongside the
    /// context block.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sensor: Option<SensorBlock>,
    /// Purposes of collection, keyed by purpose name
    /// (`"emergency response"` in Figure 2).
    #[serde(default, skip_serializing_if = "PurposeSection::is_empty")]
    pub purpose: PurposeSection,
    /// What is observed/recorded about users.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub observations: Vec<ObservationBlock>,
    /// Retention of the recorded data.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retention: Option<RetentionBlock>,
    /// Available privacy settings (Figure 4's shape, inlined).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub settings: Vec<SettingBlock>,
    /// Whether users can override the policy (extension; one of
    /// `"required"`, `"opt-out"`, `"opt-in"`). The paper's figures omit
    /// this, so it is optional and absent by default.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub modality: Option<String>,
}

/// `{"name": ...}` with an optional description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct InfoBlock {
    /// Resource name ("Location tracking in DBH").
    pub name: String,
    /// Longer description.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
}

/// Deployment context (`context` in Figure 2): points users to "general
/// information (e.g., who is responsible for data collection in a building,
/// where are sensors located…)" (§IV.B.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ContextBlock {
    /// Where the resource operates and who owns that location.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub location: Option<LocationBlock>,
}

/// `context.location` of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LocationBlock {
    /// Spatial reference (`{"name": "Donald Bren Hall", "type": "Building"}`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spatial: Option<SpatialRef>,
    /// The owner of the location.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub location_owner: Option<OwnerBlock>,
}

/// A named space plus its kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SpatialRef {
    /// Space name, resolvable against the spatial model.
    pub name: String,
    /// Space kind as free text ("Building").
    #[serde(rename = "type", default, skip_serializing_if = "Option::is_none")]
    pub kind: Option<String>,
}

/// `location_owner` of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct OwnerBlock {
    /// Owner name ("UCI").
    pub name: String,
    /// Pointer to more information.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub human_description: Option<HumanDescription>,
}

/// Free-text pointers for humans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HumanDescription {
    /// URL with more information.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub more_info: Option<String>,
}

/// The sensor block of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SensorBlock {
    /// Sensor type as free text ("WiFi Access Point").
    #[serde(rename = "type")]
    pub kind: String,
    /// Deployment description.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
}

/// The purpose section: a map from purpose name to details, with an
/// optional sibling `service_id` (Figure 3 nests `"service_id":
/// "Concierge"` next to the purposes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PurposeSection {
    /// Purpose entries keyed by name.
    #[serde(flatten)]
    pub purposes: BTreeMap<String, PurposeBlock>,
    /// The service the purposes belong to.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service_id: Option<String>,
}

impl PurposeSection {
    /// True if no purposes and no service id are present.
    pub fn is_empty(&self) -> bool {
        self.purposes.is_empty() && self.service_id.is_none()
    }

    /// A section with a single named purpose.
    pub fn single(name: impl Into<String>, description: impl Into<String>) -> PurposeSection {
        let mut purposes = BTreeMap::new();
        purposes.insert(
            name.into(),
            PurposeBlock {
                description: Some(description.into()),
            },
        );
        PurposeSection {
            purposes,
            service_id: None,
        }
    }
}

/// Details of one purpose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PurposeBlock {
    /// Human-readable description.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
}

/// One observation: what the resource records about users (§IV.A.5), with
/// the data-collection description §IV.B.2 asks for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ObservationBlock {
    /// Observation name ("MAC address of the device").
    pub name: String,
    /// What exactly is recorded and when.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Machine-readable data-category key (extension; e.g.
    /// `"data/network/wifi-association"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub category: Option<String>,
    /// Granularity of collection (extension; §IV.B.2 says granularity
    /// "directly impact\[s] the capability of inference").
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub granularity: Option<String>,
}

/// `{"duration": "P6M"}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionBlock {
    /// How long observations are kept.
    pub duration: IsoDuration,
}

/// One settings group of Figure 4: a `select` among mutually exclusive
/// options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SettingBlock {
    /// The selectable options.
    pub select: Vec<SettingOptionBlock>,
}

/// One option of a [`SettingBlock`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SettingOptionBlock {
    /// Option description ("fine grained location sensing").
    pub description: String,
    /// Activation URL — selecting the option means calling it.
    pub on: String,
}

/// A service policy document — Figure 3's shape: observations consumed by
/// the service plus the purpose section carrying `service_id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ServicePolicyDocument {
    /// Observations the service consumes.
    pub observations: Vec<ObservationBlock>,
    /// Why, and for which service.
    pub purpose: PurposeSection,
}

/// A standalone settings document — Figure 4's shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SettingsDocument {
    /// The settings groups.
    pub settings: Vec<SettingBlock>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sections_are_omitted() {
        let doc = PolicyDocument {
            resources: vec![ResourceBlock {
                info: InfoBlock {
                    name: "x".into(),
                    description: None,
                },
                ..Default::default()
            }],
            lint_allow: Vec::new(),
        };
        let json = serde_json::to_string(&doc).unwrap();
        assert!(!json.contains("retention"));
        assert!(!json.contains("settings"));
        assert!(!json.contains("purpose"));
        let back: PolicyDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn purpose_section_flattens_names() {
        let mut section = PurposeSection::single("emergency response", "stored continuously");
        section.service_id = Some("Concierge".into());
        let json = serde_json::to_value(&section).unwrap();
        assert!(json.get("emergency response").is_some());
        assert_eq!(json["service_id"], "Concierge");
        let back: PurposeSection = serde_json::from_value(json).unwrap();
        assert_eq!(back, section);
    }

    #[test]
    fn observation_extensions_are_optional() {
        let json = r#"{"name": "MAC address of the device"}"#;
        let obs: ObservationBlock = serde_json::from_str(json).unwrap();
        assert_eq!(obs.category, None);
        let with_cat = ObservationBlock {
            name: "x".into(),
            category: Some("data/network/wifi-association".into()),
            ..Default::default()
        };
        let text = serde_json::to_string(&with_cat).unwrap();
        assert!(text.contains("category"));
    }

    #[test]
    fn retention_parses_iso_duration() {
        let r: RetentionBlock = serde_json::from_str(r#"{"duration": "P6M"}"#).unwrap();
        assert_eq!(r.duration.months, 6);
        assert!(serde_json::from_str::<RetentionBlock>(r#"{"duration": "6 months"}"#).is_err());
    }
}
