//! The machine-readable privacy policy and preference language for smart
//! buildings — the paper's central artifact (§IV).
//!
//! Two representations coexist:
//!
//! * The **wire format** ([`PolicyDocument`] and friends) — the JSON shapes
//!   of the paper's Figures 2–4, which IRRs broadcast and IoTAs parse.
//!   [`figures`] embeds the paper's exact listings; [`validate`] checks
//!   documents before they are advertised.
//! * The **normalized form** ([`BuildingPolicy`], [`UserPreference`]) —
//!   what the BMS indexes, reasons over ([`conflict`]) and enforces.
//!   [`PolicyCodec`] converts between the two.
//!
//! Supporting vocabulary: [`Condition`]s (time windows, space scopes,
//! occupancy and proximity clauses), [`Effect`]s (allow / deny / degrade /
//! noise — the paper's enforcement *hows*), subjects ([`UserGroup`],
//! [`SubjectScope`]), [`IsoDuration`] retention periods, and the paper's
//! eight worked examples in [`catalog`].
//!
//! # Examples
//!
//! The Policy 2 vs Preference 2 conflict from §III.B:
//!
//! ```
//! use tippers_policy::{catalog, conflict, PolicyId, PreferenceId, UserId};
//! use tippers_ontology::Ontology;
//! use tippers_spatial::fixtures::dbh;
//!
//! let ontology = Ontology::standard();
//! let building = dbh();
//! let policy = catalog::policy2_emergency_location(PolicyId(2), building.building, &ontology);
//! let pref = catalog::preference2_no_location(PreferenceId(2), UserId(1), &ontology);
//! let conflicts = conflict::detect_conflicts_naive(
//!     &[policy],
//!     &[pref],
//!     &ontology,
//!     &building.model,
//!     conflict::ResolutionStrategy::PolicyPrevails,
//! );
//! assert_eq!(conflicts.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod codec;
mod condition;
pub mod conflict;
pub mod diff;
pub mod document;
mod duration;
mod error;
pub mod figures;
mod ids;
mod policy;
mod preference;
mod subject;
pub mod time;
pub mod validate;

pub use codec::{setting_from_block, PolicyCodec};
pub use condition::{Condition, ConditionContext};
pub use conflict::{Conflict, ConflictIndex, ConflictKind, ResolutionStrategy};
pub use diff::{diff_documents, PolicyChange};
pub use document::{PolicyDocument, ResourceBlock, ServicePolicyDocument, SettingsDocument};
pub use duration::{IsoDuration, ParseDurationError};
pub use error::PolicyError;
pub use ids::{PolicyId, PreferenceId, ServiceId, UserId};
pub use policy::{ActionSet, BuildingPolicy, DataAction, Modality, PolicySetting, SettingOption};
pub use preference::{
    effective_effect, resolve_preferences, Effect, FlowRef, PreferenceScope, UserPreference,
};
pub use subject::{SubjectScope, UserGroup};
pub use time::{TimeOfDay, TimeWindow, Timestamp, Weekday, WeekdaySet};
pub use validate::{is_advertisable, validate_document, Severity, ValidationIssue};
