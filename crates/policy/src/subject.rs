use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::UserId;

/// Occupant groups, the paper's user-profile groups ("students, faculty,
/// staff etc.") that "share common properties (e.g., access permissions)"
/// (§IV.A.2). Groups also drive the simulator's mobility schedules and the
/// §II.A role-inference heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserGroup {
    /// Faculty members.
    Faculty,
    /// Non-faculty staff ("arrive at 7 am and leave before 5 pm").
    Staff,
    /// Graduate students ("generally leave the building late").
    GradStudent,
    /// Undergraduates ("spend most of the time in classrooms").
    Undergrad,
    /// Visitors with no standing affiliation.
    Visitor,
}

impl UserGroup {
    /// All groups.
    pub const ALL: [UserGroup; 5] = [
        UserGroup::Faculty,
        UserGroup::Staff,
        UserGroup::GradStudent,
        UserGroup::Undergrad,
        UserGroup::Visitor,
    ];
}

impl fmt::Display for UserGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UserGroup::Faculty => "faculty",
            UserGroup::Staff => "staff",
            UserGroup::GradStudent => "grad student",
            UserGroup::Undergrad => "undergrad",
            UserGroup::Visitor => "visitor",
        };
        f.write_str(s)
    }
}

/// Whose data a building policy applies to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SubjectScope {
    /// Every occupant.
    #[default]
    Everyone,
    /// Only members of the listed groups.
    Groups(Vec<UserGroup>),
    /// Only the listed users.
    Users(Vec<UserId>),
}

impl SubjectScope {
    /// True if a user with the given group falls in scope.
    pub fn matches(&self, user: UserId, group: UserGroup) -> bool {
        match self {
            SubjectScope::Everyone => true,
            SubjectScope::Groups(gs) => gs.contains(&group),
            SubjectScope::Users(us) => us.contains(&user),
        }
    }

    /// Conservative overlap: could any user fall in both scopes?
    pub fn may_overlap(&self, other: &SubjectScope) -> bool {
        match (self, other) {
            (SubjectScope::Everyone, _) | (_, SubjectScope::Everyone) => true,
            (SubjectScope::Groups(a), SubjectScope::Groups(b)) => a.iter().any(|g| b.contains(g)),
            (SubjectScope::Users(a), SubjectScope::Users(b)) => a.iter().any(|u| b.contains(u)),
            // Group scope vs user scope: users' groups are unknown here, so
            // assume overlap (privacy-conservative).
            (SubjectScope::Groups(_), SubjectScope::Users(_))
            | (SubjectScope::Users(_), SubjectScope::Groups(_)) => true,
        }
    }

    /// True if a specific user could fall in scope, without knowing their
    /// group.
    pub fn may_match_user(&self, user: UserId) -> bool {
        match self {
            SubjectScope::Everyone | SubjectScope::Groups(_) => true,
            SubjectScope::Users(us) => us.contains(&user),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_matches_all() {
        assert!(SubjectScope::Everyone.matches(UserId(1), UserGroup::Visitor));
    }

    #[test]
    fn group_scope() {
        let s = SubjectScope::Groups(vec![UserGroup::Faculty, UserGroup::Staff]);
        assert!(s.matches(UserId(1), UserGroup::Staff));
        assert!(!s.matches(UserId(1), UserGroup::Undergrad));
    }

    #[test]
    fn user_scope() {
        let s = SubjectScope::Users(vec![UserId(1), UserId(2)]);
        assert!(s.matches(UserId(2), UserGroup::Faculty));
        assert!(!s.matches(UserId(3), UserGroup::Faculty));
        assert!(s.may_match_user(UserId(1)));
        assert!(!s.may_match_user(UserId(9)));
    }

    #[test]
    fn overlap_rules() {
        let everyone = SubjectScope::Everyone;
        let faculty = SubjectScope::Groups(vec![UserGroup::Faculty]);
        let staff = SubjectScope::Groups(vec![UserGroup::Staff]);
        let u1 = SubjectScope::Users(vec![UserId(1)]);
        let u2 = SubjectScope::Users(vec![UserId(2)]);
        assert!(everyone.may_overlap(&faculty));
        assert!(!faculty.may_overlap(&staff));
        assert!(faculty.may_overlap(&u1)); // conservative
        assert!(!u1.may_overlap(&u2));
    }
}
