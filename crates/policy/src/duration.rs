//! ISO-8601 durations, as used by the paper's retention element
//! (`"retention": { "duration": "P6M" }` in Figure 2).

use std::fmt;
use std::str::FromStr;

use serde::{de, Deserialize, Serialize};

/// An ISO-8601 duration (`PnYnMnDTnHnMnS`).
///
/// Components are kept separately so the textual form round-trips;
/// [`IsoDuration::as_seconds`] converts using the usual civil approximations
/// (1 year = 365 days, 1 month = 30 days), which is how retention windows
/// are enforced.
///
/// # Examples
///
/// ```
/// use tippers_policy::IsoDuration;
/// let six_months: IsoDuration = "P6M".parse()?;
/// assert_eq!(six_months.as_seconds(), 6 * 30 * 86_400);
/// assert_eq!(six_months.to_string(), "P6M");
/// # Ok::<(), tippers_policy::ParseDurationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IsoDuration {
    /// Years.
    pub years: u32,
    /// Months.
    pub months: u32,
    /// Days.
    pub days: u32,
    /// Hours.
    pub hours: u32,
    /// Minutes.
    pub minutes: u32,
    /// Seconds.
    pub seconds: u32,
}

impl IsoDuration {
    /// A zero-length duration (`PT0S`).
    pub const ZERO: IsoDuration = IsoDuration {
        years: 0,
        months: 0,
        days: 0,
        hours: 0,
        minutes: 0,
        seconds: 0,
    };

    /// Duration of `n` days.
    pub fn days(n: u32) -> IsoDuration {
        IsoDuration {
            days: n,
            ..IsoDuration::ZERO
        }
    }

    /// Duration of `n` months.
    pub fn months(n: u32) -> IsoDuration {
        IsoDuration {
            months: n,
            ..IsoDuration::ZERO
        }
    }

    /// Duration of `n` hours.
    pub fn hours(n: u32) -> IsoDuration {
        IsoDuration {
            hours: n,
            ..IsoDuration::ZERO
        }
    }

    /// Total length in seconds (1 year = 365 days, 1 month = 30 days).
    pub fn as_seconds(&self) -> i64 {
        let days = self.years as i64 * 365 + self.months as i64 * 30 + self.days as i64;
        days * 86_400 + self.hours as i64 * 3600 + self.minutes as i64 * 60 + self.seconds as i64
    }

    /// True if the duration is zero.
    pub fn is_zero(&self) -> bool {
        self.as_seconds() == 0
    }
}

/// Error returned when parsing an ISO-8601 duration fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDurationError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParseDurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid ISO-8601 duration `{}`: {}",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseDurationError {}

impl FromStr for IsoDuration {
    type Err = ParseDurationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &'static str| ParseDurationError {
            input: s.to_owned(),
            reason,
        };
        let rest = s
            .strip_prefix('P')
            .ok_or_else(|| err("must start with `P`"))?;
        if rest.is_empty() {
            return Err(err("empty duration"));
        }
        let (date_part, time_part) = match rest.split_once('T') {
            Some((d, t)) => {
                if t.is_empty() {
                    return Err(err("`T` with no time components"));
                }
                (d, Some(t))
            }
            None => (rest, None),
        };

        let mut out = IsoDuration::ZERO;
        let mut any = false;

        type Designators<'a> = &'a [(char, fn(&mut IsoDuration, u32))];
        let mut parse_fields =
            |part: &str, designators: Designators<'_>| -> Result<(), ParseDurationError> {
                let mut num = String::new();
                let mut next_allowed = 0usize;
                for ch in part.chars() {
                    if ch.is_ascii_digit() {
                        num.push(ch);
                        continue;
                    }
                    let pos = designators[next_allowed..]
                        .iter()
                        .position(|(d, _)| *d == ch)
                        .map(|p| p + next_allowed)
                        .ok_or_else(|| err("unexpected or out-of-order designator"))?;
                    if num.is_empty() {
                        return Err(err("designator without a number"));
                    }
                    let value: u32 = num.parse().map_err(|_| err("component overflows u32"))?;
                    designators[pos].1(&mut out, value);
                    any = true;
                    num.clear();
                    next_allowed = pos + 1;
                }
                if !num.is_empty() {
                    return Err(err("trailing digits without a designator"));
                }
                Ok(())
            };

        parse_fields(
            date_part,
            &[
                ('Y', |d, v| d.years = v),
                ('M', |d, v| d.months = v),
                ('W', |d, v| {
                    d.days = d.days.saturating_add(v.saturating_mul(7));
                }),
                ('D', |d, v| d.days = d.days.saturating_add(v)),
            ],
        )?;
        if let Some(t) = time_part {
            parse_fields(
                t,
                &[
                    ('H', |d, v| d.hours = v),
                    ('M', |d, v| d.minutes = v),
                    ('S', |d, v| d.seconds = v),
                ],
            )?;
        }
        if !any {
            return Err(err("no components"));
        }
        Ok(out)
    }
}

impl fmt::Display for IsoDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("PT0S");
        }
        f.write_str("P")?;
        if self.years > 0 {
            write!(f, "{}Y", self.years)?;
        }
        if self.months > 0 {
            write!(f, "{}M", self.months)?;
        }
        if self.days > 0 {
            write!(f, "{}D", self.days)?;
        }
        if self.hours > 0 || self.minutes > 0 || self.seconds > 0 {
            f.write_str("T")?;
            if self.hours > 0 {
                write!(f, "{}H", self.hours)?;
            }
            if self.minutes > 0 {
                write!(f, "{}M", self.minutes)?;
            }
            if self.seconds > 0 {
                write!(f, "{}S", self.seconds)?;
            }
        }
        Ok(())
    }
}

impl Serialize for IsoDuration {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for IsoDuration {
    fn deserialize_value(v: serde::Value) -> Result<Self, de::Error> {
        let s = String::deserialize_value(v)?;
        s.parse().map_err(de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_2_retention() {
        let d: IsoDuration = "P6M".parse().unwrap();
        assert_eq!(d.months, 6);
        assert_eq!(d.as_seconds(), 6 * 30 * 86_400);
    }

    #[test]
    fn parses_full_form() {
        let d: IsoDuration = "P1Y2M3DT4H5M6S".parse().unwrap();
        assert_eq!((d.years, d.months, d.days), (1, 2, 3));
        assert_eq!((d.hours, d.minutes, d.seconds), (4, 5, 6));
    }

    #[test]
    fn parses_weeks_as_days() {
        let d: IsoDuration = "P2W".parse().unwrap();
        assert_eq!(d.days, 14);
    }

    #[test]
    fn time_only_needs_t() {
        let d: IsoDuration = "PT30M".parse().unwrap();
        assert_eq!(d.minutes, 30);
        // M before T means months:
        let d2: IsoDuration = "P30M".parse().unwrap();
        assert_eq!(d2.months, 30);
        assert_eq!(d2.minutes, 0);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "6M", "P", "PT", "PX", "P6", "P6M3Y", "P-6M", "P6.5M"] {
            assert!(bad.parse::<IsoDuration>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        for s in ["P6M", "P1Y", "P3DT12H", "PT45S", "P1Y2M3DT4H5M6S", "PT0S"] {
            let d: IsoDuration = s.parse().unwrap();
            let back: IsoDuration = d.to_string().parse().unwrap();
            assert_eq!(d, back, "{s}");
        }
        assert_eq!("P6M".parse::<IsoDuration>().unwrap().to_string(), "P6M");
    }

    #[test]
    fn serde_uses_iso_text() {
        let d: IsoDuration = "P6M".parse().unwrap();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, "\"P6M\"");
        let back: IsoDuration = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        assert!(serde_json::from_str::<IsoDuration>("\"junk\"").is_err());
    }

    #[test]
    fn ordering_by_seconds() {
        let short: IsoDuration = "P1D".parse().unwrap();
        let long: IsoDuration = "P1M".parse().unwrap();
        assert!(short.as_seconds() < long.as_seconds());
    }
}
