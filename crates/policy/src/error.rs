use std::fmt;

/// Errors produced by policy parsing, resolution and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// A space name in a document could not be resolved against the
    /// spatial model.
    UnknownSpace(String),
    /// A concept key/label could not be resolved against the ontology.
    UnknownConcept(String),
    /// A required document field is missing or empty.
    MissingField(&'static str),
    /// A modality string is not one of `required`/`opt-out`/`opt-in`.
    InvalidModality(String),
    /// JSON (de)serialization failed.
    Json(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownSpace(s) => write!(f, "unknown space `{s}`"),
            PolicyError::UnknownConcept(s) => write!(f, "unknown concept `{s}`"),
            PolicyError::MissingField(s) => write!(f, "missing field `{s}`"),
            PolicyError::InvalidModality(s) => write!(f, "invalid modality `{s}`"),
            PolicyError::Json(s) => write!(f, "json error: {s}"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<serde_json::Error> for PolicyError {
    fn from(e: serde_json::Error) -> Self {
        PolicyError::Json(e.to_string())
    }
}
