//! The intentionally-broken fixture demonstrates every pass firing, and the
//! `tippers-lint` binary gates on it the same way CI does.

use std::process::Command;

use tippers_analyzer::{analyze, AnalysisReport, DeploymentCorpus, LintCode, Severity};
use tippers_ontology::Ontology;
use tippers_spatial::fixtures;

const BROKEN: &str = include_str!("../fixtures/broken.json");

fn broken_corpus() -> DeploymentCorpus {
    DeploymentCorpus::from_spec_str(BROKEN, Ontology::standard(), fixtures::dbh().model)
        .expect("fixture parses")
}

fn worst(report: &AnalysisReport, code: LintCode) -> Option<Severity> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .map(|d| d.severity)
        .max()
}

#[test]
fn every_pass_fires_on_the_broken_fixture() {
    let report = analyze(&broken_corpus());
    for code in LintCode::ALL {
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "{code} never fired:\n{report:#?}"
        );
    }
    // Severities: structural breakage is an error, advisory findings warn.
    assert_eq!(
        worst(&report, LintCode::DanglingReference),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::UnsatisfiableCondition),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::DeadPreference),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::RetentionContradiction),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::InferenceLeak),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::ConflictPreflight),
        Some(Severity::Warning)
    );
    assert_eq!(worst(&report, LintCode::WireFormat), Some(Severity::Error));
    assert_eq!(
        worst(&report, LintCode::MissingPriorityMapping),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::ReplicationMisconfigured),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::AccountabilityGap),
        Some(Severity::Warning)
    );
    assert_eq!(worst(&report, LintCode::CaptureGap), Some(Severity::Error));
    assert_eq!(
        worst(&report, LintCode::CrossDocumentShadow),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::UndeclaredPurposeFlow),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::Uncompilable),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::UnusedAllow),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::ShardTopology),
        Some(Severity::Error)
    );
}

/// Meta-check on the fixture itself: the loop above can only stay
/// exhaustive if `LintCode::ALL` is, so pin the count — adding a
/// seventeenth code without teaching the broken fixture (and this gate)
/// about it should fail loudly here, not pass silently.
#[test]
fn the_broken_fixture_exercises_every_registered_code() {
    assert_eq!(LintCode::ALL.len(), 16);
    let report = analyze(&broken_corpus());
    let exercised: std::collections::BTreeSet<&str> =
        report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    let registered: std::collections::BTreeSet<&str> =
        LintCode::ALL.iter().map(|c| c.as_str()).collect();
    assert_eq!(exercised, registered);
}

#[test]
fn inference_leak_error_carries_the_rule_chain() {
    let report = analyze(&broken_corpus());
    let leak = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::InferenceLeak && d.severity == Severity::Error)
        .expect("sensitive leak");
    assert!(leak.message.contains("data/identity/person"), "{leak}");
    assert_eq!(leak.evidence, vec!["camera-identity".to_string()]);
}

#[test]
fn specific_findings_land_on_stable_paths() {
    let report = analyze(&broken_corpus());
    let has = |code: LintCode, path: &str| {
        report
            .diagnostics
            .iter()
            .any(|d| d.code == code && d.path == path)
    };
    assert!(has(LintCode::DanglingReference, "/policies/5/space"));
    assert!(has(
        LintCode::DanglingReference,
        "/policies/6/service/Butler"
    ));
    assert!(has(
        LintCode::DanglingReference,
        "/documents/0/resources/0/observations/0/category"
    ));
    assert!(has(
        LintCode::RetentionContradiction,
        "/policies/2/retention"
    ));
    assert!(has(
        LintCode::UnsatisfiableCondition,
        "/policies/3/condition/time/days"
    ));
    assert!(has(LintCode::DeadPreference, "/preferences/2"));
    assert!(has(LintCode::MissingPriorityMapping, "/policies/6/service"));
    assert!(has(
        LintCode::WireFormat,
        "/documents/1/resources/0/info/name"
    ));
    // The fixture declares a quorum of 2 over an empty replica set with a
    // staleness bound: unreachable quorum (error) + dead bound (warning).
    assert!(has(
        LintCode::ReplicationMisconfigured,
        "/replication/replicas"
    ));
    assert!(has(
        LintCode::ReplicationMisconfigured,
        "/replication/staleness_bound_secs"
    ));
    // Policy 3 stores occupancy with no retention element: the sweeper can
    // never certify its deletion. Policy 6 shares under comfort, which the
    // fixture's quota table never budgets (the quota'd emergency-response
    // purpose of policy 1 stays silent).
    assert!(has(LintCode::AccountabilityGap, "/policies/3/retention"));
    assert!(has(
        LintCode::AccountabilityGap,
        "/quotas/purpose~1operations~1comfort"
    ));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::AccountabilityGap && d.path.contains("emergency-response")));
    // The fixture declares a capture pipeline scoped to the lobby with no
    // mailbox bound: the bound is an error, and policy 1's building-wide
    // WiFi collection escapes the lobby-only capture zone. Policy 2
    // collects inside the lobby and stays silent.
    assert!(has(LintCode::CaptureGap, "/ingest/mailbox_capacity"));
    assert!(has(LintCode::CaptureGap, "/policies/1/space"));
    assert!(!has(LintCode::CaptureGap, "/policies/2/space"));
    // Policy 7 duplicates the lobby camera policy 4 with a strict subset
    // of its actions: removing it changes no decision.
    assert!(has(LintCode::CrossDocumentShadow, "/policies/7"));
    // Policies 1 and 6 share under purposes no advertised document
    // declares (the only declared purpose is surveillance); policy 6's
    // witness threads through the wifi→occupancy inference chain.
    assert!(has(LintCode::UndeclaredPurposeFlow, "/policies/1/purpose"));
    assert!(has(LintCode::UndeclaredPurposeFlow, "/policies/6/purpose"));
    // The deployment-declared power/temperature rules form a cycle, and
    // preference 4 guards on a continuous requester position.
    assert!(has(LintCode::Uncompilable, "/ontology/rules"));
    assert!(has(
        LintCode::Uncompilable,
        "/preferences/4/scope/condition/requester_nearby"
    ));
    // Document 0 allows TA009, but replication findings never land under
    // its subtree: the suppression is dead weight.
    assert!(has(LintCode::UnusedAllow, "/documents/0/lint-allow/TA009"));
    // The shard topology pins DBH to shard 7 of a 2-shard deployment
    // (out of range), then claims it again for shard 1 (split
    // ownership); the lobby capture zone is covered by neither pin.
    assert!(has(LintCode::ShardTopology, "/sharding/zones/0/shard"));
    assert!(has(LintCode::ShardTopology, "/sharding/zones/1"));
    assert!(has(LintCode::ShardTopology, "/ingest/capture_zones/0"));
}

#[test]
fn the_taint_witness_threads_through_the_inference_chain() {
    let report = analyze(&broken_corpus());
    let taint = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::UndeclaredPurposeFlow && d.path == "/policies/6/purpose")
        .expect("policy 6 taint finding");
    let witness = taint.evidence.join(" -> ");
    assert!(witness.starts_with("policy#1 collects"), "{witness}");
    assert!(witness.contains("rule `ap-location`"), "{witness}");
    assert!(
        witness.ends_with("purpose/operations/comfort`"),
        "{witness}"
    );
}

/// The golden snapshot pins the established passes' exact output on the
/// paper corpus (value-level, including messages and evidence), so
/// engine refactors cannot silently drift TA001–TA011 while new codes
/// land. Regenerate with
/// `tippers-lint --figures --json > crates/analyzer/fixtures/golden_figures.json`
/// *only* for an intentional output change.
#[test]
fn figures_matches_the_golden_snapshot_for_established_codes() {
    const GOLDEN: &str = include_str!("../fixtures/golden_figures.json");
    let golden: serde_json::Value = serde_json::from_str(GOLDEN).expect("golden parses");
    let serde_json::Value::Array(want) = &golden["diagnostics"] else {
        panic!("golden diagnostics is not an array");
    };
    let report = analyze(&DeploymentCorpus::figures());
    let got: Vec<serde_json::Value> = report
        .diagnostics
        .iter()
        .filter(|d| d.code <= LintCode::CaptureGap)
        .map(serde::Serialize::serialize_value)
        .collect();
    assert_eq!(&got, want, "TA001–TA011 drifted from the golden snapshot");
}

#[test]
fn corpus_allow_can_silence_whole_passes() {
    let mut corpus = broken_corpus();
    corpus.allow.insert("TA005".into());
    corpus.allow.insert("TA007".into());
    let report = analyze(&corpus);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.code != LintCode::InferenceLeak && d.code != LintCode::WireFormat));
    assert!(report.suppressed > 0);
    // Other errors remain: suppression is per-code, not a global mute.
    assert!(report.has_errors());
}

// ---- binary-level checks (the same invocations the CI gate runs) -----------

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tippers-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn cli_passes_the_figures_corpus() {
    let out = lint(&["--figures"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s)"));
    assert!(text.contains("warning[TA005]"));
}

#[test]
fn cli_fails_the_broken_fixture_with_machine_readable_output() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/broken.json");
    let out = lint(&["--deployment", fixture, "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let diags = match &v["diagnostics"] {
        serde_json::Value::Array(items) => items,
        other => panic!("diagnostics is {}", other.kind()),
    };
    for code in LintCode::ALL {
        assert!(
            diags.iter().any(|d| d["code"] == code.as_str()),
            "{code} missing from JSON output"
        );
    }
}

#[test]
fn cli_emits_sarif() {
    let out = lint(&["--figures", "--format", "sarif"]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(v["version"], serde_json::Value::String("2.1.0".into()));
    let serde_json::Value::Array(results) = &v["runs"][0]["results"] else {
        panic!("results is not an array");
    };
    assert!(results
        .iter()
        .any(|r| r["ruleId"] == serde_json::Value::String("TA005".into())));
}

#[test]
fn cli_rejects_unknown_codes_and_conflicting_modes() {
    assert_eq!(lint(&["--allow", "TA999"]).status.code(), Some(2));
    assert_eq!(
        lint(&["--figures", "--deployment", "x.json"]).status.code(),
        Some(2)
    );
    // --changed without --cache, --cache without --deployment.
    assert_eq!(
        lint(&["--figures", "--changed", "policy:1"]).status.code(),
        Some(2)
    );
    assert_eq!(
        lint(&["--figures", "--cache", "/tmp/nope.json"])
            .status
            .code(),
        Some(2)
    );
}
