//! The intentionally-broken fixture demonstrates every pass firing, and the
//! `tippers-lint` binary gates on it the same way CI does.

use std::process::Command;

use tippers_analyzer::{analyze, AnalysisReport, DeploymentCorpus, LintCode, Severity};
use tippers_ontology::Ontology;
use tippers_spatial::fixtures;

const BROKEN: &str = include_str!("../fixtures/broken.json");

fn broken_corpus() -> DeploymentCorpus {
    DeploymentCorpus::from_spec_str(BROKEN, Ontology::standard(), fixtures::dbh().model)
        .expect("fixture parses")
}

fn worst(report: &AnalysisReport, code: LintCode) -> Option<Severity> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .map(|d| d.severity)
        .max()
}

#[test]
fn every_pass_fires_on_the_broken_fixture() {
    let report = analyze(&broken_corpus());
    for code in LintCode::ALL {
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "{code} never fired:\n{report:#?}"
        );
    }
    // Severities: structural breakage is an error, advisory findings warn.
    assert_eq!(
        worst(&report, LintCode::DanglingReference),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::UnsatisfiableCondition),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::DeadPreference),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::RetentionContradiction),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::InferenceLeak),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::ConflictPreflight),
        Some(Severity::Warning)
    );
    assert_eq!(worst(&report, LintCode::WireFormat), Some(Severity::Error));
    assert_eq!(
        worst(&report, LintCode::MissingPriorityMapping),
        Some(Severity::Warning)
    );
    assert_eq!(
        worst(&report, LintCode::ReplicationMisconfigured),
        Some(Severity::Error)
    );
    assert_eq!(
        worst(&report, LintCode::AccountabilityGap),
        Some(Severity::Warning)
    );
    assert_eq!(worst(&report, LintCode::CaptureGap), Some(Severity::Error));
}

#[test]
fn inference_leak_error_carries_the_rule_chain() {
    let report = analyze(&broken_corpus());
    let leak = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::InferenceLeak && d.severity == Severity::Error)
        .expect("sensitive leak");
    assert!(leak.message.contains("data/identity/person"), "{leak}");
    assert_eq!(leak.evidence, vec!["camera-identity".to_string()]);
}

#[test]
fn specific_findings_land_on_stable_paths() {
    let report = analyze(&broken_corpus());
    let has = |code: LintCode, path: &str| {
        report
            .diagnostics
            .iter()
            .any(|d| d.code == code && d.path == path)
    };
    assert!(has(LintCode::DanglingReference, "/policies/5/space"));
    assert!(has(
        LintCode::DanglingReference,
        "/policies/6/service/Butler"
    ));
    assert!(has(
        LintCode::DanglingReference,
        "/documents/0/resources/0/observations/0/category"
    ));
    assert!(has(
        LintCode::RetentionContradiction,
        "/policies/2/retention"
    ));
    assert!(has(
        LintCode::UnsatisfiableCondition,
        "/policies/3/condition/time/days"
    ));
    assert!(has(LintCode::DeadPreference, "/preferences/2"));
    assert!(has(LintCode::MissingPriorityMapping, "/policies/6/service"));
    assert!(has(
        LintCode::WireFormat,
        "/documents/1/resources/0/info/name"
    ));
    // The fixture declares a quorum of 2 over an empty replica set with a
    // staleness bound: unreachable quorum (error) + dead bound (warning).
    assert!(has(
        LintCode::ReplicationMisconfigured,
        "/replication/replicas"
    ));
    assert!(has(
        LintCode::ReplicationMisconfigured,
        "/replication/staleness_bound_secs"
    ));
    // Policy 3 stores occupancy with no retention element: the sweeper can
    // never certify its deletion. Policy 6 shares under comfort, which the
    // fixture's quota table never budgets (the quota'd emergency-response
    // purpose of policy 1 stays silent).
    assert!(has(LintCode::AccountabilityGap, "/policies/3/retention"));
    assert!(has(
        LintCode::AccountabilityGap,
        "/quotas/purpose~1operations~1comfort"
    ));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::AccountabilityGap && d.path.contains("emergency-response")));
    // The fixture declares a capture pipeline scoped to the lobby with no
    // mailbox bound: the bound is an error, and policy 1's building-wide
    // WiFi collection escapes the lobby-only capture zone. Policy 2
    // collects inside the lobby and stays silent.
    assert!(has(LintCode::CaptureGap, "/ingest/mailbox_capacity"));
    assert!(has(LintCode::CaptureGap, "/policies/1/space"));
    assert!(!has(LintCode::CaptureGap, "/policies/2/space"));
}

#[test]
fn corpus_allow_can_silence_whole_passes() {
    let mut corpus = broken_corpus();
    corpus.allow.insert("TA005".into());
    corpus.allow.insert("TA007".into());
    let report = analyze(&corpus);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.code != LintCode::InferenceLeak && d.code != LintCode::WireFormat));
    assert!(report.suppressed > 0);
    // Other errors remain: suppression is per-code, not a global mute.
    assert!(report.has_errors());
}

// ---- binary-level checks (the same invocations the CI gate runs) -----------

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tippers-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn cli_passes_the_figures_corpus() {
    let out = lint(&["--figures"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s)"));
    assert!(text.contains("warning[TA005]"));
}

#[test]
fn cli_fails_the_broken_fixture_with_machine_readable_output() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/broken.json");
    let out = lint(&["--deployment", fixture, "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let v: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let diags = match &v["diagnostics"] {
        serde_json::Value::Array(items) => items,
        other => panic!("diagnostics is {}", other.kind()),
    };
    for code in LintCode::ALL {
        assert!(
            diags.iter().any(|d| d["code"] == code.as_str()),
            "{code} missing from JSON output"
        );
    }
}

#[test]
fn cli_rejects_unknown_codes_and_conflicting_modes() {
    assert_eq!(lint(&["--allow", "TA999"]).status.code(), Some(2));
    assert_eq!(
        lint(&["--figures", "--deployment", "x.json"]).status.code(),
        Some(2)
    );
}
