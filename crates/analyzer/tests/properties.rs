//! Analyzer determinism: the report is a pure function of the corpus *set*,
//! not of the order its pieces were supplied in.

use proptest::prelude::*;
use tippers_analyzer::{analyze, report, DeploymentCorpus};
use tippers_ontology::InferenceRule;
use tippers_policy::{
    BuildingPolicy, Effect, Modality, PolicyId, PreferenceId, PreferenceScope, UserId,
    UserPreference,
};

/// Renders a report to its canonical bytes (text + pretty JSON).
fn bytes(corpus: &DeploymentCorpus) -> String {
    let r = analyze(corpus);
    let mut out = report::render_text(&r);
    out.push_str(&serde_json::to_string_pretty(&report::render_json(&r)).unwrap());
    out
}

/// Deterministic Fisher–Yates driven by an LCG, so a single `u64` seed
/// names a permutation.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        items.swap(i, j);
    }
}

/// A corpus with enough moving parts that every pass has something to do:
/// the figures corpus plus `extra` seeded policies and preferences.
fn corpus_with_extras(seed: u64, extra: usize) -> DeploymentCorpus {
    let mut corpus = DeploymentCorpus::figures();
    let datas: Vec<_> = corpus
        .ontology
        .data
        .iter()
        .map(tippers_ontology::Concept::id)
        .collect();
    let purposes: Vec<_> = corpus
        .ontology
        .purposes
        .iter()
        .map(tippers_ontology::Concept::id)
        .collect();
    let spaces: Vec<_> = corpus
        .model
        .iter()
        .map(tippers_spatial::Space::id)
        .collect();
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 0..extra {
        let mut p = BuildingPolicy::new(
            PolicyId(100 + i as u64),
            format!("extra policy {i}"),
            spaces[next() % spaces.len()],
            datas[next() % datas.len()],
            purposes[next() % purposes.len()],
        );
        p.modality = match next() % 3 {
            0 => Modality::Required,
            1 => Modality::OptOut,
            _ => Modality::OptIn,
        };
        corpus.policies.push(p);
        let scope = PreferenceScope {
            data: if next() % 3 == 0 {
                None
            } else {
                Some(datas[next() % datas.len()])
            },
            space: if next() % 2 == 0 {
                Some(spaces[next() % spaces.len()])
            } else {
                None
            },
            ..Default::default()
        };
        let effect = if next() % 2 == 0 {
            Effect::Deny
        } else {
            Effect::Allow
        };
        corpus.preferences.push(
            UserPreference::new(
                PreferenceId(100 + i as u64),
                UserId((next() % 4) as u64),
                scope,
                effect,
            )
            .with_priority((next() % 8) as u8),
        );
    }
    corpus
}

proptest! {
    /// Shuffling policies and preferences yields a byte-identical report.
    #[test]
    fn report_is_order_independent(
        seed in any::<u64>(),
        perm in any::<u64>(),
        extra in 0usize..12,
    ) {
        let reference = corpus_with_extras(seed, extra);
        let expected = bytes(&reference);

        let mut shuffled = reference.clone();
        shuffle(&mut shuffled.policies, perm);
        shuffle(&mut shuffled.preferences, perm.rotate_left(17));
        prop_assert_eq!(bytes(&shuffled), expected);
    }

    /// Repeated analysis of the same corpus is a fixpoint (no hidden state).
    #[test]
    fn analysis_is_deterministic(seed in any::<u64>(), extra in 0usize..8) {
        let corpus = corpus_with_extras(seed, extra);
        prop_assert_eq!(bytes(&corpus), bytes(&corpus));
    }

    /// The order custom inference rules are appended in does not matter, as
    /// long as confidences are distinct (the closure keeps the best chain).
    #[test]
    fn rule_append_order_does_not_matter(swap in any::<bool>()) {
        let base = DeploymentCorpus::figures();
        let c = base.ontology.concepts().clone();
        let rule_a = InferenceRule::new(
            "custom-occupancy-health",
            vec![c.occupancy],
            c.health,
            0.31,
        );
        let rule_b = InferenceRule::new(
            "custom-wifi-health",
            vec![c.wifi_association],
            c.health,
            0.57,
        );

        let mut one = base.clone();
        let mut two = base;
        for r in if swap { [&rule_a, &rule_b] } else { [&rule_b, &rule_a] } {
            one.ontology.add_rule(r.clone());
        }
        for r in [&rule_b, &rule_a] {
            two.ontology.add_rule(r.clone());
        }
        prop_assert_eq!(bytes(&one), bytes(&two));
    }
}
