//! Analyzer determinism: the report is a pure function of the corpus *set*,
//! not of the order its pieces were supplied in.

use proptest::prelude::*;
use tippers_analyzer::engine::solver;
use tippers_analyzer::{analyze, analyze_parallel, report, Analyzer, DeploymentCorpus, UnitId};
use tippers_ontology::{InferenceRule, Ontology};
use tippers_policy::{
    BuildingPolicy, Effect, Modality, PolicyId, PreferenceId, PreferenceScope, UserId,
    UserPreference,
};

/// Renders a report to its canonical bytes (text + pretty JSON).
fn bytes(corpus: &DeploymentCorpus) -> String {
    let r = analyze(corpus);
    let mut out = report::render_text(&r);
    out.push_str(&serde_json::to_string_pretty(&report::render_json(&r)).unwrap());
    out
}

/// Deterministic Fisher–Yates driven by an LCG, so a single `u64` seed
/// names a permutation.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        items.swap(i, j);
    }
}

/// A corpus with enough moving parts that every pass has something to do:
/// the figures corpus plus `extra` seeded policies and preferences.
fn corpus_with_extras(seed: u64, extra: usize) -> DeploymentCorpus {
    let mut corpus = DeploymentCorpus::figures();
    let datas: Vec<_> = corpus
        .ontology
        .data
        .iter()
        .map(tippers_ontology::Concept::id)
        .collect();
    let purposes: Vec<_> = corpus
        .ontology
        .purposes
        .iter()
        .map(tippers_ontology::Concept::id)
        .collect();
    let spaces: Vec<_> = corpus
        .model
        .iter()
        .map(tippers_spatial::Space::id)
        .collect();
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 0..extra {
        let mut p = BuildingPolicy::new(
            PolicyId(100 + i as u64),
            format!("extra policy {i}"),
            spaces[next() % spaces.len()],
            datas[next() % datas.len()],
            purposes[next() % purposes.len()],
        );
        p.modality = match next() % 3 {
            0 => Modality::Required,
            1 => Modality::OptOut,
            _ => Modality::OptIn,
        };
        corpus.policies.push(p);
        let scope = PreferenceScope {
            data: if next() % 3 == 0 {
                None
            } else {
                Some(datas[next() % datas.len()])
            },
            space: if next() % 2 == 0 {
                Some(spaces[next() % spaces.len()])
            } else {
                None
            },
            ..Default::default()
        };
        let effect = if next() % 2 == 0 {
            Effect::Deny
        } else {
            Effect::Allow
        };
        corpus.preferences.push(
            UserPreference::new(
                PreferenceId(100 + i as u64),
                UserId((next() % 4) as u64),
                scope,
                effect,
            )
            .with_priority((next() % 8) as u8),
        );
    }
    corpus
}

/// Mutates one unit of the corpus in place and names what changed, the
/// way a WAL tail or `--changed` flag would.
fn apply_edit(corpus: &mut DeploymentCorpus, pick: u64, kind: u8) -> UnitId {
    if corpus.policies.is_empty() || corpus.preferences.is_empty() {
        return UnitId::Global;
    }
    match kind % 5 {
        0 => {
            let i = pick as usize % corpus.policies.len();
            let p = &mut corpus.policies[i];
            p.name.push_str(" (edited)");
            UnitId::Policy(p.id.0)
        }
        1 => {
            let i = pick as usize % corpus.policies.len();
            let p = &mut corpus.policies[i];
            p.modality = match p.modality {
                Modality::Required => Modality::OptOut,
                Modality::OptOut => Modality::OptIn,
                Modality::OptIn => Modality::Required,
            };
            UnitId::Policy(p.id.0)
        }
        2 => {
            let i = pick as usize % corpus.policies.len();
            let p = &mut corpus.policies[i];
            p.retention = match p.retention {
                Some(_) => None,
                None => Some("P30D".parse().unwrap()),
            };
            UnitId::Policy(p.id.0)
        }
        3 => {
            let i = pick as usize % corpus.preferences.len();
            let a = &mut corpus.preferences[i];
            a.priority = a.priority.wrapping_add(1);
            UnitId::Preference(a.id.0)
        }
        _ => {
            let i = pick as usize % corpus.preferences.len();
            let a = &mut corpus.preferences[i];
            a.effect = match a.effect {
                Effect::Deny => Effect::Allow,
                _ => Effect::Deny,
            };
            UnitId::Preference(a.id.0)
        }
    }
}

/// Suppression config disables the fast report-splice inside
/// [`Analyzer::update`]; the fallback must still match a full run,
/// including TA015 hygiene and the suppressed count.
#[test]
fn incremental_update_respects_suppressions() {
    let mut corpus = corpus_with_extras(11, 6);
    corpus.allow.insert("TA005".into()); // used by the figures documents
    corpus.allow.insert("TA009".into()); // unused → TA015 hygiene finding
    let mut analyzer = Analyzer::new(corpus.clone());
    for (pick, kind) in [(0u64, 0u8), (1, 1), (2, 3)] {
        let changed = [apply_edit(&mut corpus, pick, kind)];
        analyzer.update(corpus.clone(), &changed);
        assert_eq!(analyzer.report(), &analyze(&corpus), "edit kind {kind}");
    }
}

proptest! {
    /// Shuffling policies and preferences yields a byte-identical report.
    #[test]
    fn report_is_order_independent(
        seed in any::<u64>(),
        perm in any::<u64>(),
        extra in 0usize..12,
    ) {
        let reference = corpus_with_extras(seed, extra);
        let expected = bytes(&reference);

        let mut shuffled = reference.clone();
        shuffle(&mut shuffled.policies, perm);
        shuffle(&mut shuffled.preferences, perm.rotate_left(17));
        prop_assert_eq!(bytes(&shuffled), expected);
    }

    /// Repeated analysis of the same corpus is a fixpoint (no hidden state).
    #[test]
    fn analysis_is_deterministic(seed in any::<u64>(), extra in 0usize..8) {
        let corpus = corpus_with_extras(seed, extra);
        prop_assert_eq!(bytes(&corpus), bytes(&corpus));
    }

    /// The order custom inference rules are appended in does not matter, as
    /// long as confidences are distinct (the closure keeps the best chain).
    #[test]
    fn rule_append_order_does_not_matter(swap in any::<bool>()) {
        let base = DeploymentCorpus::figures();
        let c = base.ontology.concepts().clone();
        let rule_a = InferenceRule::new(
            "custom-occupancy-health",
            vec![c.occupancy],
            c.health,
            0.31,
        );
        let rule_b = InferenceRule::new(
            "custom-wifi-health",
            vec![c.wifi_association],
            c.health,
            0.57,
        );

        let mut one = base.clone();
        let mut two = base;
        for r in if swap { [&rule_a, &rule_b] } else { [&rule_b, &rule_a] } {
            one.ontology.add_rule(r.clone());
        }
        for r in [&rule_b, &rule_a] {
            two.ontology.add_rule(r.clone());
        }
        prop_assert_eq!(bytes(&one), bytes(&two));
    }

    /// An incremental update scoped to the edited unit matches a full
    /// re-analysis, and a second stacked edit still matches — the cached
    /// per-unit diagnostics splice back in without drift.
    #[test]
    fn incremental_update_matches_full_reanalysis(
        seed in any::<u64>(),
        extra in 1usize..8,
        pick in any::<u64>(),
        kind in any::<u8>(),
        pick2 in any::<u64>(),
        kind2 in any::<u8>(),
    ) {
        let corpus = corpus_with_extras(seed, extra);
        let mut analyzer = Analyzer::new(corpus.clone());

        let mut edited = corpus.clone();
        let changed = apply_edit(&mut edited, pick, kind);
        analyzer.update(edited.clone(), &[changed]);
        prop_assert_eq!(analyzer.report(), &analyze(&edited));

        let mut twice = edited.clone();
        let changed = apply_edit(&mut twice, pick2, kind2);
        analyzer.update(twice.clone(), &[changed]);
        prop_assert_eq!(analyzer.report(), &analyze(&twice));
    }

    /// Thread count never changes the report: 2- and 8-way runs are
    /// identical to the sequential one, value-for-value.
    #[test]
    fn parallel_report_is_thread_count_invariant(
        seed in any::<u64>(),
        extra in 0usize..10,
    ) {
        let corpus = corpus_with_extras(seed, extra);
        let sequential = analyze_parallel(&corpus, 1);
        for threads in [2, 8] {
            prop_assert_eq!(&analyze_parallel(&corpus, threads), &sequential);
        }
    }

    /// The deterministic worklist solver agrees with the ontology's
    /// chaotic-iteration engine on random rule bases (including cyclic
    /// and self-referential ones) and random source sets.
    #[test]
    fn worklist_solver_matches_the_chaotic_engine(
        seed in any::<u64>(),
        nrules in 0usize..5,
        nsources in 1usize..4,
    ) {
        let mut ontology = Ontology::standard();
        let ids: Vec<_> = ontology
            .data
            .iter()
            .map(tippers_ontology::Concept::id)
            .collect();
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let confidences = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0];
        for r in 0..nrules {
            let premises = vec![ids[next() % ids.len()]];
            let conclusion = ids[next() % ids.len()];
            let confidence = confidences[next() % confidences.len()];
            ontology.add_rule(InferenceRule::new(
                format!("random-{r}"),
                premises,
                conclusion,
                confidence,
            ));
        }
        let sources: Vec<_> = (0..nsources).map(|_| ids[next() % ids.len()]).collect();
        let engine = ontology.inference();
        prop_assert_eq!(
            solver::closure(&ontology.data, ontology.rules(), &sources),
            engine.closure(&sources)
        );
    }
}
