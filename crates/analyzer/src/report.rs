//! Reporters: text for humans, JSON for machines, SARIF for code-review
//! tooling.

use std::fmt::Write as _;

use serde::Serialize as _;
use serde_json::{Map, Value};

use crate::diag::{LintCode, Severity};
use crate::AnalysisReport;

/// Renders the report as human-readable text, one diagnostic per line with
/// evidence indented beneath it, followed by a summary line.
pub fn render_text(report: &AnalysisReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
        for e in &d.evidence {
            let _ = writeln!(out, "    = {e}");
        }
    }
    let _ = writeln!(
        out,
        "{} error(s), {} warning(s), {} suppressed",
        report.error_count(),
        report.warning_count(),
        report.suppressed
    );
    out
}

/// Renders the report as a machine-readable JSON value.
pub fn render_json(report: &AnalysisReport) -> Value {
    let mut out = Map::new();
    out.insert("diagnostics".into(), report.diagnostics.serialize_value());
    out.insert("errors".into(), report.error_count().serialize_value());
    out.insert("warnings".into(), report.warning_count().serialize_value());
    out.insert("suppressed".into(), report.suppressed.serialize_value());
    Value::Object(out)
}

/// Renders the report as a SARIF 2.1.0 log: one run, one rule per
/// `TA0xx` code, and one result per diagnostic. Deployments are JSON
/// values rather than source files, so each result's location is a
/// *logical* location carrying the diagnostic's RFC 6901 pointer as its
/// fully-qualified name; evidence rides along in the result's property
/// bag.
pub fn render_sarif(report: &AnalysisReport) -> Value {
    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }
    let rules: Vec<Value> = LintCode::ALL
        .iter()
        .map(|code| {
            obj(vec![
                ("id", code.as_str().serialize_value()),
                ("name", code.name().serialize_value()),
                (
                    "shortDescription",
                    obj(vec![("text", code.name().serialize_value())]),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            obj(vec![
                ("ruleId", d.code.as_str().serialize_value()),
                (
                    "ruleIndex",
                    LintCode::ALL
                        .iter()
                        .position(|c| *c == d.code)
                        .expect("every code is registered")
                        .serialize_value(),
                ),
                ("level", level.serialize_value()),
                ("message", obj(vec![("text", d.message.serialize_value())])),
                (
                    "locations",
                    Value::Array(vec![obj(vec![(
                        "logicalLocations",
                        Value::Array(vec![obj(vec![
                            ("fullyQualifiedName", d.path.serialize_value()),
                            ("kind", "member".serialize_value()),
                        ])]),
                    )])]),
                ),
                (
                    "properties",
                    obj(vec![("evidence", d.evidence.serialize_value())]),
                ),
            ])
        })
        .collect();
    obj(vec![
        (
            "$schema",
            "https://json.schemastore.org/sarif-2.1.0.json".serialize_value(),
        ),
        ("version", "2.1.0".serialize_value()),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", "tippers-lint".serialize_value()),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ])
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True if any error-severity diagnostic survived suppression.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }
}

#[cfg(test)]
mod tests {
    use serde::Deserialize as _;

    use super::*;
    use crate::diag::{Diagnostic, LintCode};

    fn report() -> AnalysisReport {
        AnalysisReport {
            diagnostics: vec![
                Diagnostic::new(
                    LintCode::InferenceLeak,
                    Severity::Error,
                    "/documents/0/resources/0/observations",
                    "leaks identity",
                )
                .with_evidence(vec!["camera-identity".into()]),
                Diagnostic::new(
                    LintCode::WireFormat,
                    Severity::Warning,
                    "/documents/0/resources/0/retention",
                    "no retention period",
                ),
            ],
            suppressed: 1,
        }
    }

    #[test]
    fn text_report_shape() {
        let text = render_text(&report());
        assert!(text.contains("error[TA005]"));
        assert!(text.contains("    = camera-identity"));
        assert!(text.contains("1 error(s), 1 warning(s), 1 suppressed"));
    }

    #[test]
    fn sarif_report_shape() {
        let v = render_sarif(&report());
        assert_eq!(v["version"], "2.1.0".serialize_value());
        let driver = &v["runs"][0]["tool"]["driver"];
        assert_eq!(driver["name"], "tippers-lint".serialize_value());
        let Value::Array(rules) = &driver["rules"] else {
            panic!("rules is not an array")
        };
        assert_eq!(rules.len(), LintCode::ALL.len());
        let Value::Array(results) = &v["runs"][0]["results"] else {
            panic!("results is not an array")
        };
        assert_eq!(results.len(), 2);
        assert_eq!(results[0]["ruleId"], "TA005".serialize_value());
        assert_eq!(results[0]["level"], "error".serialize_value());
        assert_eq!(
            results[0]["locations"][0]["logicalLocations"][0]["fullyQualifiedName"],
            "/documents/0/resources/0/observations".serialize_value()
        );
        assert_eq!(
            results[0]["properties"]["evidence"][0],
            "camera-identity".serialize_value()
        );
        // Every result's ruleIndex points back at its rule.
        for r in results {
            let idx = usize::deserialize_value(r["ruleIndex"].clone()).unwrap();
            assert_eq!(rules[idx]["id"], r["ruleId"]);
        }
    }

    #[test]
    fn json_report_shape() {
        let v = render_json(&report());
        assert_eq!(v["errors"], 1usize.serialize_value());
        assert_eq!(v["warnings"], 1usize.serialize_value());
        assert_eq!(v["suppressed"], 1usize.serialize_value());
        assert_eq!(v["diagnostics"][0]["code"], "TA005");
        assert_eq!(v["diagnostics"][0]["evidence"][0], "camera-identity");
    }
}
