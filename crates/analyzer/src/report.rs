//! Reporters: text for humans, JSON for machines.

use std::fmt::Write as _;

use serde::Serialize as _;
use serde_json::{Map, Value};

use crate::diag::Severity;
use crate::AnalysisReport;

/// Renders the report as human-readable text, one diagnostic per line with
/// evidence indented beneath it, followed by a summary line.
pub fn render_text(report: &AnalysisReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
        for e in &d.evidence {
            let _ = writeln!(out, "    = {e}");
        }
    }
    let _ = writeln!(
        out,
        "{} error(s), {} warning(s), {} suppressed",
        report.error_count(),
        report.warning_count(),
        report.suppressed
    );
    out
}

/// Renders the report as a machine-readable JSON value.
pub fn render_json(report: &AnalysisReport) -> Value {
    let mut out = Map::new();
    out.insert("diagnostics".into(), report.diagnostics.serialize_value());
    out.insert("errors".into(), report.error_count().serialize_value());
    out.insert("warnings".into(), report.warning_count().serialize_value());
    out.insert("suppressed".into(), report.suppressed.serialize_value());
    Value::Object(out)
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True if any error-severity diagnostic survived suppression.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, LintCode};

    fn report() -> AnalysisReport {
        AnalysisReport {
            diagnostics: vec![
                Diagnostic::new(
                    LintCode::InferenceLeak,
                    Severity::Error,
                    "/documents/0/resources/0/observations",
                    "leaks identity",
                )
                .with_evidence(vec!["camera-identity".into()]),
                Diagnostic::new(
                    LintCode::WireFormat,
                    Severity::Warning,
                    "/documents/0/resources/0/retention",
                    "no retention period",
                ),
            ],
            suppressed: 1,
        }
    }

    #[test]
    fn text_report_shape() {
        let text = render_text(&report());
        assert!(text.contains("error[TA005]"));
        assert!(text.contains("    = camera-identity"));
        assert!(text.contains("1 error(s), 1 warning(s), 1 suppressed"));
    }

    #[test]
    fn json_report_shape() {
        let v = render_json(&report());
        assert_eq!(v["errors"], 1usize.serialize_value());
        assert_eq!(v["warnings"], 1usize.serialize_value());
        assert_eq!(v["suppressed"], 1usize.serialize_value());
        assert_eq!(v["diagnostics"][0]["code"], "TA005");
        assert_eq!(v["diagnostics"][0]["evidence"][0], "camera-identity");
    }
}
